//! Struct-of-arrays fleet of reduced-order Gen2 tags.
//!
//! The full [`Device`](crate::Device) integrates one instruction at a
//! time — roughly 4 × 10⁶ steps per simulated second. That is exactly
//! right for debugging *one* tag, and exactly wrong for a warehouse: a
//! 10⁴-tag fleet over 30 s would cost ~10¹² CPU steps. The fleet path
//! therefore models each tag as what it electrically is between RF
//! events — a first-order RC node (Thévenin harvester into the 47 µF
//! storage cap) with a piecewise-constant load — and advances *every*
//! tag from one Gen2 slot boundary to the next with one closed-form
//! evaluation ([`rc_advance`]/[`rc_time_to`]), handling the `v_on`
//! turn-on and `v_off` brown-out crossings analytically inside the
//! span.
//!
//! State is laid out struct-of-arrays: one `Vec` per field (`v_cap`,
//! `mode`, `slot`, `rng`, …), so the hot span-advance loop streams
//! through contiguous memory instead of hopping across 10⁴ boxed
//! devices. Each tag owns a SplitMix64 stream seeded from the trial
//! seed and its *global* tag index, which is what makes a fleet
//! bit-reproducible regardless of how tags are sharded across threads.
//!
//! Work the tag "computes" while powered is accounted as
//! `active-seconds × clock-rate` in [`Fleet::tag_cycles`] — the
//! numerator of the benchmark's tag·cycles/sec throughput metric.

use edb_energy::{rc_advance, rc_time_to, SimTime};
use edb_energy::{WISP5_CAPACITANCE, WISP5_V_OFF, WISP5_V_ON};
use serde::{Deserialize, Serialize};

/// SplitMix64 step — the per-tag deterministic stream generator.
///
/// Chosen over a shared PCG for two reasons: each tag's stream depends
/// only on `(trial seed, global tag index)`, never on how many other
/// tags drew before it (shard-order invariance), and the generator is
/// four integer ops, which matters at 10⁴ streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Electrical and timing parameters shared by every tag in a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagParams {
    /// Storage capacitance (F).
    pub capacitance: f64,
    /// Harvester source resistance (Ω) — Thévenin equivalent.
    pub r_src: f64,
    /// Open-circuit harvested voltage at the reference distance (V).
    pub v_oc_ref: f64,
    /// Reference distance for `v_oc_ref` (m); harvested `v_oc` scales
    /// as `d_ref / d`.
    pub d_ref: f64,
    /// Supervisor turn-on threshold (V).
    pub v_on: f64,
    /// Supervisor brown-out threshold (V).
    pub v_off: f64,
    /// Load current while powered and listening (A).
    pub i_listen: f64,
    /// Extra drain while backscattering a reply (A).
    pub i_tx: f64,
    /// Effective MCU clock while powered (Hz) — converts powered time
    /// into tag cycles for the throughput metric.
    pub clock_hz: f64,
}

impl TagParams {
    /// WISP5-flavored defaults, matching the single-tag device's
    /// electrical constants where they overlap.
    pub fn wisp5() -> Self {
        TagParams {
            capacitance: WISP5_CAPACITANCE,
            r_src: 1500.0,
            v_oc_ref: 3.2,
            d_ref: 1.0,
            v_on: WISP5_V_ON,
            v_off: WISP5_V_OFF,
            i_listen: 0.4e-3,
            i_tx: 2.0e-3,
            clock_hz: 4.0e6,
        }
    }

    /// Loaded asymptote `v_oc − i·R` for a tag with open-circuit
    /// voltage `v_oc` drawing `i` amps.
    fn v_inf(&self, v_oc: f64, i: f64) -> f64 {
        v_oc - i * self.r_src
    }

    /// RC time constant.
    fn tau(&self) -> f64 {
        self.r_src * self.capacitance
    }
}

/// Power state of one tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum TagMode {
    /// Below turn-on: charging, deaf to commands.
    Off = 0,
    /// Powered and participating in inventory.
    On = 1,
}

/// A struct-of-arrays population of reduced-order tags.
///
/// All per-tag state lives in parallel vectors indexed by the tag's
/// position *within this fleet*; `global_base + i` recovers the fleet-
/// wide index used for seeding, so a cell of a sharded fleet behaves
/// identically wherever it executes.
#[derive(Debug, Clone)]
pub struct Fleet {
    params: TagParams,
    global_base: usize,
    /// Capacitor voltage (V).
    v_cap: Vec<f64>,
    /// Power mode.
    mode: Vec<TagMode>,
    /// Harvested open-circuit voltage, distance-scaled (V).
    v_oc: Vec<f64>,
    /// Gen2 slot counter for the round in progress.
    slot: Vec<u32>,
    /// Per-tag SplitMix64 stream state.
    rng: Vec<u64>,
    /// Inventoried flag (session flag A→B); cleared by brown-out.
    inventoried: Vec<bool>,
    /// Cumulative powered time (s).
    active_s: Vec<f64>,
    /// Brown-out → turn-on cycles survived.
    power_cycles: Vec<u32>,
}

impl Fleet {
    /// Builds `n` tags with global indices `global_base..global_base+n`.
    ///
    /// `distance_of(global_index)` gives each tag its reader distance in
    /// meters; `seed` is the trial seed every tag stream derives from.
    /// Tags start discharged (`v_off`) and off — the carrier has to
    /// charge them up before they hear anything.
    pub fn new(
        params: TagParams,
        global_base: usize,
        n: usize,
        seed: u64,
        distance_of: impl Fn(usize) -> f64,
    ) -> Self {
        let mut v_oc = Vec::with_capacity(n);
        let mut rng = Vec::with_capacity(n);
        for i in 0..n {
            let g = global_base + i;
            let d = distance_of(g);
            assert!(d > 0.0, "tag {g}: distance must be positive");
            v_oc.push(params.v_oc_ref * params.d_ref / d);
            // Decorrelate the stream from the raw index with one
            // splitmix scramble of (seed, global index).
            let mut s = seed ^ (g as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s);
            rng.push(s);
        }
        Fleet {
            params,
            global_base,
            v_cap: vec![params.v_off; n],
            mode: vec![TagMode::Off; n],
            v_oc,
            slot: vec![u32::MAX; n],
            rng,
            inventoried: vec![false; n],
            active_s: vec![0.0; n],
            power_cycles: vec![0; n],
        }
    }

    /// Number of tags in this fleet (or cell).
    pub fn len(&self) -> usize {
        self.v_cap.len()
    }

    /// True when the fleet holds no tags.
    pub fn is_empty(&self) -> bool {
        self.v_cap.is_empty()
    }

    /// The shared tag parameters.
    pub fn params(&self) -> &TagParams {
        &self.params
    }

    /// Global index of local tag `i`.
    pub fn global_index(&self, i: usize) -> usize {
        self.global_base + i
    }

    /// Capacitor voltage of local tag `i`.
    pub fn v_cap(&self, i: usize) -> f64 {
        self.v_cap[i]
    }

    /// Power mode of local tag `i`.
    pub fn mode(&self, i: usize) -> TagMode {
        self.mode[i]
    }

    /// Whether local tag `i` has been inventoried this session.
    pub fn inventoried(&self, i: usize) -> bool {
        self.inventoried[i]
    }

    /// Brown-out → turn-on cycles local tag `i` has survived.
    pub fn power_cycles(&self, i: usize) -> u32 {
        self.power_cycles[i]
    }

    /// Cumulative powered seconds of local tag `i`.
    pub fn active_secs(&self, i: usize) -> f64 {
        self.active_s[i]
    }

    /// Total tag cycles executed across the fleet: Σ active·clock.
    ///
    /// Deterministic (derived from simulated time, not wall time) — the
    /// numerator of tag·cycles/sec.
    pub fn tag_cycles(&self) -> f64 {
        let hz = self.params.clock_hz;
        self.active_s.iter().map(|s| s * hz).sum()
    }

    /// Number of currently powered tags.
    pub fn powered_count(&self) -> usize {
        self.mode.iter().filter(|m| **m == TagMode::On).count()
    }

    /// Advances every tag `span` of carrier time with closed-form RC
    /// arithmetic, handling turn-on and brown-out crossings inside the
    /// span (piecewise, at most a few segments per tag per slot).
    ///
    /// Powered tags draw `i_listen`; unpowered tags charge unloaded.
    pub fn advance_span(&mut self, span: SimTime) {
        let dt_total = span.as_secs_f64();
        if dt_total <= 0.0 {
            return;
        }
        let tau = self.params.tau();
        for i in 0..self.v_cap.len() {
            let mut remaining = dt_total;
            // A tag can cross at most a handful of thresholds per
            // millisecond-scale span; the loop converges because every
            // iteration either consumes the whole remainder or moves
            // strictly past a crossing.
            while remaining > 0.0 {
                let v = self.v_cap[i];
                match self.mode[i] {
                    TagMode::Off => {
                        let v_inf = self.params.v_inf(self.v_oc[i], 0.0);
                        match rc_time_to(v, v_inf, tau, self.params.v_on) {
                            Some(t) if t <= remaining => {
                                // Turn-on mid-span: power up, lose
                                // volatile slot state, keep charging
                                // under load for the rest.
                                self.v_cap[i] = self.params.v_on;
                                self.mode[i] = TagMode::On;
                                self.slot[i] = u32::MAX;
                                remaining -= t;
                            }
                            _ => {
                                self.v_cap[i] = rc_advance(v, v_inf, tau, remaining);
                                remaining = 0.0;
                            }
                        }
                    }
                    TagMode::On => {
                        let v_inf = self.params.v_inf(self.v_oc[i], self.params.i_listen);
                        match rc_time_to(v, v_inf, tau, self.params.v_off) {
                            Some(t) if t <= remaining => {
                                // Brown-out mid-span: all volatile
                                // state dies — slot counter, session
                                // inventoried flag.
                                self.v_cap[i] = self.params.v_off;
                                self.mode[i] = TagMode::Off;
                                self.slot[i] = u32::MAX;
                                self.inventoried[i] = false;
                                self.power_cycles[i] += 1;
                                self.active_s[i] += t;
                                remaining -= t;
                            }
                            _ => {
                                self.v_cap[i] = rc_advance(v, v_inf, tau, remaining);
                                self.active_s[i] += remaining;
                                remaining = 0.0;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Starts an inventory round of `2^q` slots: every powered,
    /// un-inventoried tag draws a fresh slot counter from its own
    /// stream. Unpowered tags miss the Query entirely.
    pub fn begin_round(&mut self, q: u8) {
        let mask = (1u64 << q) - 1;
        for i in 0..self.v_cap.len() {
            if self.mode[i] == TagMode::On && !self.inventoried[i] {
                self.slot[i] = (splitmix64(&mut self.rng[i]) & mask) as u32;
            } else {
                self.slot[i] = u32::MAX;
            }
        }
    }

    /// Local indices of tags replying in the current slot (counter 0).
    pub fn slot_responders(&self) -> Vec<usize> {
        (0..self.slot.len())
            .filter(|&i| self.slot[i] == 0)
            .collect()
    }

    /// Ends the current slot: decrement live counters (QueryRep).
    /// Tags holding 0 that were not resolved fall out of the round
    /// (their reply went unanswered), matching a real tag arbitrating
    /// to the `arbitrate` state only on a future draw.
    pub fn advance_slot(&mut self) {
        for s in self.slot.iter_mut() {
            *s = match *s {
                u32::MAX => u32::MAX,
                0 => u32::MAX,
                n => n - 1,
            };
        }
    }

    /// Redraws tag `i`'s counter after a collision (the Gen2 spec lets
    /// collided tags re-arbitrate within the round): uniform in
    /// `1..=2^q` so it contends on a strictly later slot.
    pub fn redraw_after_collision(&mut self, i: usize, q: u8) {
        let mask = (1u64 << q) - 1;
        self.slot[i] = (splitmix64(&mut self.rng[i]) & mask) as u32 + 1;
    }

    /// Marks tag `i` inventoried and charges its reply: the EPC
    /// backscatter burns `i_tx` for `air` seconds out of the cap.
    /// The voltage droop is linearized (`ΔV = i·t/C`) — reply air times
    /// are ~1 ms, far below τ = 70 ms, so the RC correction is < 1%.
    pub fn complete_reply(&mut self, i: usize, air: SimTime, inventoried: bool) {
        let dv = self.params.i_tx * air.as_secs_f64() / self.params.capacitance;
        self.v_cap[i] = (self.v_cap[i] - dv).max(0.0);
        if inventoried {
            self.inventoried[i] = true;
        }
        self.slot[i] = u32::MAX;
        if self.v_cap[i] < self.params.v_off {
            self.mode[i] = TagMode::Off;
            self.slot[i] = u32::MAX;
            self.inventoried[i] = false;
            self.power_cycles[i] += 1;
        }
    }

    /// Count of tags currently holding the inventoried flag.
    pub fn inventoried_count(&self) -> usize {
        self.inventoried.iter().filter(|b| **b).count()
    }

    /// Draws a uniform value in `[0, 1)` from tag `i`'s own stream —
    /// used for per-reply corruption so the draw order, like the slot
    /// draws, depends only on the tag's own history (shard-invariant).
    pub fn draw_unit(&mut self, i: usize) -> f64 {
        (splitmix64(&mut self.rng[i]) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TagParams {
        TagParams::wisp5()
    }

    fn one_tag(seed: u64, d: f64) -> Fleet {
        Fleet::new(params(), 0, 1, seed, |_| d)
    }

    #[test]
    fn tags_start_off_and_charge_to_turn_on() {
        let mut f = one_tag(1, 0.5);
        assert_eq!(f.mode(0), TagMode::Off);
        // At 0.5 m, v_oc = 6.4 V ≫ v_on: the tag must power up within
        // a few time constants (τ = 70.5 ms).
        f.advance_span(SimTime::from_ms(500));
        assert_eq!(f.mode(0), TagMode::On);
        assert!(f.v_cap(0) >= params().v_on - 1e-9);
        assert!(f.active_secs(0) > 0.0, "powered time accrues after turn-on");
    }

    #[test]
    fn distant_tag_never_powers_on() {
        // At 2 m, v_oc = 1.6 V < v_on = 2.4 V: can never turn on.
        let mut f = one_tag(1, 2.0);
        f.advance_span(SimTime::from_secs(10));
        assert_eq!(f.mode(0), TagMode::Off);
        assert!(f.v_cap(0) < 1.6 + 1e-9);
        assert_eq!(f.active_secs(0), 0.0);
    }

    #[test]
    fn heavy_load_browns_out_and_clears_volatile_state() {
        let p = TagParams {
            // Listening load pulls the asymptote below v_off:
            // v_inf = 2.0 − 1.2e-3·1500 = 0.2 V.
            i_listen: 1.2e-3,
            v_oc_ref: 2.0,
            ..params()
        };
        let mut f = Fleet::new(p, 0, 1, 7, |_| 1.0);
        // Force it on with a full cap, mid-round.
        f.mode[0] = TagMode::On;
        f.v_cap[0] = 2.6;
        f.inventoried[0] = true;
        f.slot[0] = 3;
        f.advance_span(SimTime::from_secs(1));
        assert_eq!(f.mode(0), TagMode::Off);
        assert!(!f.inventoried(0), "brown-out clears the session flag");
        assert_eq!(f.slot[0], u32::MAX, "brown-out clears the slot counter");
        assert_eq!(f.power_cycles(0), 1);
    }

    #[test]
    fn span_advance_is_piecewise_consistent() {
        // Advancing 10 ms in one span must equal 10 × 1 ms spans
        // bit-for-bit when no threshold is crossed... not guaranteed
        // bitwise for chained exponentials, so assert tight closeness.
        let mut a = one_tag(3, 1.0);
        let mut b = one_tag(3, 1.0);
        a.advance_span(SimTime::from_ms(10));
        for _ in 0..10 {
            b.advance_span(SimTime::from_ms(1));
        }
        assert!((a.v_cap(0) - b.v_cap(0)).abs() < 1e-9);
    }

    #[test]
    fn round_draws_and_slot_flow() {
        let mut f = Fleet::new(params(), 0, 8, 42, |_| 0.5);
        f.advance_span(SimTime::from_secs(1));
        assert_eq!(f.powered_count(), 8);
        f.begin_round(2);
        for i in 0..8 {
            assert!(f.slot[i] < 4, "drawn within 2^q");
        }
        let responders = f.slot_responders();
        for &i in &responders {
            assert_eq!(f.slot[i], 0);
        }
        f.advance_slot();
        for &i in &responders {
            assert_eq!(f.slot[i], u32::MAX, "unresolved 0-holders drop out");
        }
    }

    #[test]
    fn unpowered_tags_do_not_draw() {
        let mut f = Fleet::new(params(), 0, 2, 9, |g| if g == 0 { 0.5 } else { 2.0 });
        f.advance_span(SimTime::from_secs(2));
        f.begin_round(4);
        assert_ne!(f.slot[0], u32::MAX);
        assert_eq!(f.slot[1], u32::MAX, "a dead tag cannot hear the Query");
    }

    #[test]
    fn streams_depend_on_global_index_not_local_position() {
        // Tag with global index 5 must produce the same draws whether
        // it lives in a fleet alone or among others — the property that
        // makes sharding invisible.
        let mut alone = Fleet::new(params(), 5, 1, 77, |_| 0.5);
        let mut among = Fleet::new(params(), 0, 10, 77, |_| 0.5);
        alone.advance_span(SimTime::from_secs(1));
        among.advance_span(SimTime::from_secs(1));
        for _ in 0..5 {
            alone.begin_round(8);
            among.begin_round(8);
            assert_eq!(alone.slot[0], among.slot[5]);
        }
    }

    #[test]
    fn reply_droop_and_inventory_flag() {
        let mut f = one_tag(11, 0.5);
        f.advance_span(SimTime::from_secs(1));
        let v_before = f.v_cap(0);
        f.complete_reply(0, SimTime::from_ms(1), true);
        let droop = v_before - f.v_cap(0);
        let expect = 2.0e-3 * 1e-3 / WISP5_CAPACITANCE;
        assert!((droop - expect).abs() < 1e-12);
        assert!(f.inventoried(0));
        assert_eq!(f.inventoried_count(), 1);
    }

    #[test]
    fn tag_cycles_track_active_time() {
        let mut f = one_tag(13, 0.5);
        f.advance_span(SimTime::from_secs(1));
        let cycles = f.tag_cycles();
        assert!((cycles - f.active_secs(0) * 4.0e6).abs() < 1e-6, "{cycles}");
        assert!(cycles > 0.0);
    }
}
