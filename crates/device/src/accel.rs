//! The accelerometer peripheral and its synthetic motion source.
//!
//! The paper's activity-recognition case study (§5.3.3, from the DINO
//! work) samples a 3-axis accelerometer over I²C and classifies windows
//! as "stationary" or "moving". We cannot strap a simulator to a wrist,
//! so [`SyntheticMotion`] generates the closest useful equivalent: a
//! regime-switching signal whose variance separates the two classes
//! cleanly, with regime changes on a seeded random schedule. The
//! peripheral models the I²C transaction cost (time + current) and emits
//! observable bus activity for EDB's I/O monitor.

use edb_energy::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One 3-axis sample in milli-g.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelSample {
    /// X axis, milli-g.
    pub x: i16,
    /// Y axis, milli-g.
    pub y: i16,
    /// Z axis, milli-g (gravity shows up here when stationary).
    pub z: i16,
}

/// The ground-truth activity regime of the synthetic wearer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// Low-variance signal around gravity.
    Stationary,
    /// High-variance shaking.
    Moving,
}

/// A deterministic regime-switching motion generator.
///
/// Stationary regimes produce samples `N(0, σ_s)` per axis plus gravity on
/// Z; moving regimes use a much larger σ. Regimes hold for a random
/// 0.5–2 s. Ground truth is queryable so experiments can score the
/// target's classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticMotion {
    rng: StdRng,
    regime: Regime,
    regime_until: SimTime,
    sigma_stationary: f64,
    sigma_moving: f64,
}

impl SyntheticMotion {
    /// Creates a generator with the default class separations
    /// (σ = 30 mg stationary, 300 mg moving).
    pub fn new(seed: u64) -> Self {
        SyntheticMotion {
            rng: StdRng::seed_from_u64(seed),
            regime: Regime::Stationary,
            regime_until: SimTime::ZERO,
            sigma_stationary: 30.0,
            sigma_moving: 300.0,
        }
    }

    /// The regime in effect at `now` (advancing the schedule as needed).
    pub fn regime_at(&mut self, now: SimTime) -> Regime {
        if now >= self.regime_until {
            self.regime = if self.rng.gen_bool(0.5) {
                Regime::Stationary
            } else {
                Regime::Moving
            };
            let hold_ms = self.rng.gen_range(500u64..2000);
            self.regime_until = now.advance_ns(hold_ms * 1_000_000);
        }
        self.regime
    }

    /// Draws one sample at `now`.
    pub fn sample(&mut self, now: SimTime) -> AccelSample {
        let regime = self.regime_at(now);
        let sigma = match regime {
            Regime::Stationary => self.sigma_stationary,
            Regime::Moving => self.sigma_moving,
        };
        let mut gauss = |mu: f64| -> i16 {
            // Box-Muller; clamp to i16 range.
            let u1: f64 = self.rng.gen_range(1e-9..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (mu + z * sigma).clamp(i16::MIN as f64, i16::MAX as f64) as i16
        };
        AccelSample {
            x: gauss(0.0),
            y: gauss(0.0),
            z: gauss(1000.0), // 1 g
        }
    }
}

/// A completed I²C transaction on the accelerometer bus, observable by
/// EDB's I/O monitor ("Our prototype can monitor GPIO, UART, I2C...").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I2cTransaction {
    /// When the transaction started.
    pub start: SimTime,
    /// When it completed.
    pub end: SimTime,
    /// The sample transferred.
    pub sample: AccelSample,
}

/// The accelerometer peripheral: a command/status/data port interface in
/// front of a [`SyntheticMotion`] source, with I²C transaction timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Accelerometer {
    motion: SyntheticMotion,
    busy_until: Option<SimTime>,
    started_at: SimTime,
    latest: Option<AccelSample>,
    ready: bool,
    /// I²C transaction duration (6 data bytes at 400 kHz ≈ 180 µs).
    pub transaction_time: SimTime,
    /// Extra supply current while the transaction is in flight, amps.
    pub active_current: f64,
}

impl Accelerometer {
    /// Creates the peripheral around a seeded motion source.
    pub fn new(seed: u64) -> Self {
        Accelerometer {
            motion: SyntheticMotion::new(seed),
            busy_until: None,
            started_at: SimTime::ZERO,
            latest: None,
            ready: false,
            transaction_time: SimTime::from_us(180),
            active_current: 0.2e-3,
        }
    }

    /// Firmware wrote 1 to `ACCEL_CTRL`: begin a transaction (ignored if
    /// one is already in flight).
    pub fn start_transaction(&mut self, now: SimTime) {
        if self.busy_until.is_none() {
            self.busy_until = Some(now + self.transaction_time);
            self.started_at = now;
            self.ready = false;
        }
    }

    /// Advances the peripheral clock; returns the completed transaction
    /// when one finishes inside this slice.
    pub fn tick(&mut self, now: SimTime) -> Option<I2cTransaction> {
        if let Some(done_at) = self.busy_until {
            if now >= done_at {
                self.busy_until = None;
                let sample = self.motion.sample(done_at);
                self.latest = Some(sample);
                self.ready = true;
                return Some(I2cTransaction {
                    start: self.started_at,
                    end: done_at,
                    sample,
                });
            }
        }
        None
    }

    /// `ACCEL_STATUS` port value: bit 0 = ready, bit 1 = busy.
    pub fn status(&self) -> u16 {
        (self.ready as u16) | ((self.busy_until.is_some() as u16) << 1)
    }

    /// The latest sample's value for the given axis port offset
    /// (0 = X, 1 = Y, 2 = Z); 0 before any sample.
    pub fn axis(&self, axis: u8) -> u16 {
        let s = match self.latest {
            Some(s) => s,
            None => return 0,
        };
        (match axis {
            0 => s.x,
            1 => s.y,
            _ => s.z,
        }) as u16
    }

    /// Supply current drawn right now, amps.
    pub fn current(&self) -> f64 {
        if self.busy_until.is_some() {
            self.active_current
        } else {
            0.0
        }
    }

    /// Whether a transaction is in flight.
    pub fn busy(&self) -> bool {
        self.busy_until.is_some()
    }

    /// Ground truth regime at `now`, for scoring classifiers.
    pub fn true_regime(&mut self, now: SimTime) -> Regime {
        self.motion.regime_at(now)
    }

    /// Power-loss reset: in-flight transaction and latched sample vanish.
    pub fn reset(&mut self) {
        self.busy_until = None;
        self.ready = false;
        self.latest = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_have_separable_variance() {
        let mut m = SyntheticMotion::new(11);
        let mut stationary = Vec::new();
        let mut moving = Vec::new();
        for k in 0..20_000u64 {
            let t = SimTime::from_us(k * 500);
            let regime = m.regime_at(t);
            let s = m.sample(t);
            let mag = (s.x as f64).abs() + (s.y as f64).abs();
            match regime {
                Regime::Stationary => stationary.push(mag),
                Regime::Moving => moving.push(mag),
            }
        }
        assert!(!stationary.is_empty() && !moving.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&moving) > 4.0 * mean(&stationary),
            "classes must separate: moving {} vs stationary {}",
            mean(&moving),
            mean(&stationary)
        );
    }

    #[test]
    fn transaction_lifecycle() {
        let mut a = Accelerometer::new(5);
        assert_eq!(a.status(), 0);
        a.start_transaction(SimTime::ZERO);
        assert_eq!(a.status() & 2, 2, "busy");
        assert!(a.current() > 0.0);
        assert!(a.tick(SimTime::from_us(100)).is_none(), "not done yet");
        let txn = a.tick(SimTime::from_us(200)).expect("completes");
        assert_eq!(txn.start, SimTime::ZERO);
        assert_eq!(a.status() & 1, 1, "ready");
        assert_eq!(a.current(), 0.0);
        assert_eq!(a.axis(2), txn.sample.z as u16);
    }

    #[test]
    fn start_while_busy_is_ignored() {
        let mut a = Accelerometer::new(5);
        a.start_transaction(SimTime::ZERO);
        a.start_transaction(SimTime::from_us(10));
        let txn = a.tick(SimTime::from_us(200)).expect("first completes");
        assert_eq!(txn.start, SimTime::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut a = Accelerometer::new(5);
        a.start_transaction(SimTime::ZERO);
        let _ = a.tick(SimTime::from_us(200));
        a.reset();
        assert_eq!(a.status(), 0);
        assert_eq!(a.axis(0), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SyntheticMotion::new(9);
        let mut b = SyntheticMotion::new(9);
        for k in 0..100u64 {
            let t = SimTime::from_ms(k * 3);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn gravity_shows_on_z_when_stationary() {
        let mut m = SyntheticMotion::new(2);
        let mut z_sum = 0f64;
        let mut n = 0u32;
        for k in 0..10_000u64 {
            let t = SimTime::from_us(k * 200);
            if m.regime_at(t) == Regime::Stationary {
                z_sum += m.sample(t).z as f64;
                n += 1;
            }
        }
        assert!(n > 100);
        let z_mean = z_sum / n as f64;
        assert!((z_mean - 1000.0).abs() < 50.0, "z mean {z_mean}");
    }
}
