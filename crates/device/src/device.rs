//! The intermittent device: CPU + memory + power system + peripherals,
//! stepped with per-instruction energy integration.
//!
//! [`Device::step`] is the heart of the reproduction. Each call executes
//! at most one instruction, integrates exactly that instruction's worth
//! of charge out of the storage capacitor, and then lets the supervisor
//! decide whether the device browns out — so a power failure interrupts
//! software *between* any two instructions, the defining property of the
//! intermittent execution model the paper debugs.

use crate::accel::Accelerometer;
use crate::peripherals::{DebugLink, Gpio, SelfAdc, Timer, Uart};
use crate::ports;
use crate::rf_frontend::RfFrontend;
use edb_energy::{Capacitor, Harvester, Ldo, PowerEdge, SimTime, Supervisor};
use edb_mcu::{Cpu, CpuState, Fault, Image, Memory, PortBus};
use serde::{Deserialize, Serialize};

/// Electrical and timing parameters of the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// CPU clock, hertz.
    pub clock_hz: f64,
    /// Storage capacitance, farads.
    pub capacitance: f64,
    /// Turn-on threshold, volts.
    pub v_on: f64,
    /// Brown-out threshold, volts.
    pub v_off: f64,
    /// Supply current with the CPU executing, amps. Calibrated so the
    /// 2.4 → 1.8 V discharge takes ~20 ms on 47 µF, matching the
    /// charge-discharge cadence of the paper's scope traces.
    pub i_active: f64,
    /// Supply current with the CPU halted but the rail up, amps.
    pub i_halted: f64,
    /// Leakage while the device is off, amps.
    pub i_off_leak: f64,
    /// Integration quantum while off or halted.
    pub idle_step: SimTime,
    /// Seed for the synthetic accelerometer.
    pub accel_seed: u64,
    /// GPIO lines allocated to the code-marker function; EDB can
    /// distinguish `2^n - 1` watchpoint IDs (§4.1.3).
    pub marker_lines: u8,
}

impl DeviceConfig {
    /// The WISP5-like defaults used throughout the reproduction.
    pub fn wisp5() -> Self {
        DeviceConfig {
            clock_hz: 4e6,
            capacitance: edb_energy::budget::WISP5_CAPACITANCE,
            v_on: edb_energy::budget::WISP5_V_ON,
            v_off: edb_energy::budget::WISP5_V_OFF,
            i_active: 2.2e-3,
            i_halted: 0.1e-3,
            i_off_leak: 1e-6,
            idle_step: SimTime::from_us(2),
            accel_seed: 0xACCE1,
            marker_lines: 2,
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::wisp5()
    }
}

/// The full peripheral complement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Peripherals {
    /// GPIO latch (LED + progress pins).
    pub gpio: Gpio,
    /// Target-powered user console UART.
    pub uart: Uart,
    /// Debug wiring to EDB.
    pub debug: DebugLink,
    /// Self-measurement ADC.
    pub adc: SelfAdc,
    /// Cycle timer.
    pub timer: Timer,
    /// Accelerometer.
    pub accel: Accelerometer,
    /// RFID front-end.
    pub rf: RfFrontend,
}

impl Peripherals {
    fn new(accel_seed: u64) -> Self {
        Peripherals {
            gpio: Gpio::new(),
            uart: Uart::new(),
            debug: DebugLink::new(),
            adc: SelfAdc::new(),
            timer: Timer::new(),
            accel: Accelerometer::new(accel_seed),
            rf: RfFrontend::new(),
        }
    }

    fn reset(&mut self) {
        self.gpio.reset();
        self.uart.reset();
        self.debug.reset();
        self.adc.reset();
        self.timer.reset();
        self.accel.reset();
        self.rf.reset();
    }
}

/// Something externally observable that happened during a step — these
/// are the "wires" EDB watches.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceEvent {
    /// The GPIO latch changed.
    GpioChange {
        /// Previous latch value.
        old: u16,
        /// New latch value.
        new: u16,
    },
    /// A code-marker pulse (watchpoint) with its ID.
    CodeMarker {
        /// Watchpoint identifier (1 ..= 2ⁿ−1 for n marker lines).
        id: u8,
    },
    /// The target raised a debug request on the signal port.
    DebugSignal {
        /// Raw signal word (see `edb-core`'s protocol encoding).
        value: u16,
    },
    /// A byte went out on the user UART.
    UartByte {
        /// The byte.
        byte: u8,
    },
    /// The target queued a byte to EDB on the debug UART.
    DbgUartByte {
        /// The byte.
        byte: u8,
    },
    /// An I²C accelerometer transaction completed.
    I2c(crate::accel::I2cTransaction),
    /// The tag backscattered a reply frame.
    RfTx(crate::rf_frontend::Backscatter),
    /// Firmware sampled its own supply voltage.
    AdcSelfSample {
        /// 12-bit conversion result.
        code: u16,
    },
    /// The CPU faulted (illegal instruction — e.g. vectored into garbage
    /// after non-volatile corruption).
    CpuFault(Fault),
}

/// The result of one [`Device::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStep {
    /// Simulated time consumed by this step.
    pub elapsed: SimTime,
    /// Wire-observable events, in order.
    pub events: Vec<DeviceEvent>,
    /// A power edge, if the supervisor tripped.
    pub power_edge: Option<PowerEdge>,
    /// The instruction that retired, if one did.
    pub retired: Option<edb_mcu::Instr>,
}

/// The WISP-like intermittent target device.
///
/// # Example
///
/// Run a program on harvested power and observe intermittent reboots:
///
/// ```
/// use edb_device::{Device, DeviceConfig};
/// use edb_energy::TheveninSource;
/// use edb_mcu::asm::assemble;
///
/// let image = assemble(r#"
///     .org 0x4400
/// start:
///     add r0, 1
///     jmp start
///     .org 0xFFFE
///     .word start
/// "#)?;
/// let mut dev = Device::new(DeviceConfig::wisp5());
/// dev.flash(&image);
/// let mut rf = TheveninSource::new(3.2, 1500.0);
/// for _ in 0..4_000_000 {
///     dev.step(&mut rf, 0.0);
/// }
/// assert!(dev.reboots() >= 1, "the device must power-cycle");
/// # Ok::<(), edb_mcu::asm::AsmError>(())
/// ```
///
/// `Device` is `Clone`: exhaustive analyses snapshot a device and replay
/// it from every possible power-failure point (see `edb-apps`'s oracle).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    config: DeviceConfig,
    cpu: Cpu,
    mem: Memory,
    cap: Capacitor,
    supervisor: Supervisor,
    ldo: Ldo,
    /// The peripheral complement (public so the debugger can reach its
    /// ends of the wires).
    pub peripherals: Peripherals,
    now: SimTime,
    reboots: u64,
    turn_ons: u64,
    total_instructions: u64,
    i_load_last: f64,
    /// Nanoseconds per CPU cycle, hoisted out of the step loop
    /// (`config` is immutable after construction).
    cycle_ns: u64,
    /// Code-marker ID mask, likewise hoisted.
    marker_mask: u16,
}

impl Device {
    /// Creates an unpowered device with an empty flash.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            cpu: Cpu::new(),
            mem: Memory::new(),
            cap: Capacitor::new(config.capacitance),
            supervisor: Supervisor::new(config.v_on, config.v_off),
            ldo: Ldo::wisp5(),
            peripherals: Peripherals::new(config.accel_seed),
            now: SimTime::ZERO,
            reboots: 0,
            turn_ons: 0,
            total_instructions: 0,
            i_load_last: 0.0,
            cycle_ns: (1e9 / config.clock_hz).round() as u64,
            marker_mask: (1u16 << config.marker_lines.min(8)) - 1,
            config,
        }
    }

    /// "Reflash": writes the image into FRAM. Usable any time (the paper's
    /// recovery from bricking is exactly a reflash).
    pub fn flash(&mut self, image: &Image) {
        image.load_into(&mut self.mem);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Storage-capacitor voltage (ground truth — EDB must go through its
    /// ADC).
    pub fn v_cap(&self) -> f64 {
        self.cap.voltage()
    }

    /// Regulated logic-supply voltage (sags in dropout).
    pub fn v_reg(&self) -> f64 {
        self.ldo.output(self.cap.voltage())
    }

    /// Whether the supervisor says the device is powered.
    pub fn powered(&self) -> bool {
        self.supervisor.powered()
    }

    /// Count of brown-outs so far.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Count of turn-ons so far.
    pub fn turn_ons(&self) -> u64 {
        self.turn_ons
    }

    /// Instructions retired across all power cycles.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// The load current drawn during the most recent step, amps.
    pub fn load_current(&self) -> f64 {
        self.i_load_last
    }

    /// The device configuration.
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Read-only CPU view.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU access — the host-side checkpoint engine restores
    /// architectural state through here (the paper's EDB writes a target's
    /// context back over the debug link; we reach into the simulated core
    /// directly, with the same zero energy cost to the target).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Read-only memory view (ground truth / debugger back-channel).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access — the debug protocol's `write` command and
    /// test fixtures go through here.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Enables or disables the predecode cache on the device's memory.
    ///
    /// The flag is sticky across power cycles (it is bench/test
    /// plumbing, not target state), which is what lets a differential
    /// harness run a cold-decode twin of an intermittent execution.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.mem.set_decode_cache_enabled(enabled);
    }

    /// Forces the capacitor voltage (test initial conditions; EDB's
    /// charge circuit uses currents through [`Device::step`]).
    pub fn set_v_cap(&mut self, volts: f64) {
        self.cap.set_voltage(volts);
    }

    /// Latches the external interrupt (EDB's energy-breakpoint line).
    pub fn raise_irq(&mut self) {
        self.cpu.raise_irq();
    }

    /// The storage capacitor (for energy arithmetic).
    pub fn capacitor(&self) -> &Capacitor {
        &self.cap
    }

    /// Advances the device by one instruction (or one idle quantum),
    /// integrating `i_external` amps (positive charges the capacitor —
    /// this is EDB's only electrical influence) along with harvest and
    /// load currents.
    pub fn step(&mut self, harvester: &mut dyn Harvester, i_external: f64) -> DeviceStep {
        let powered = self.supervisor.powered();
        let mut events = Vec::new();
        let mut retired = None;

        let dt_ns = if powered && self.cpu.is_running() {
            let outcome = {
                let mut bus = BusCtx {
                    peripherals: &mut self.peripherals,
                    events: &mut events,
                    now: self.now,
                    v_cap: self.cap.voltage(),
                    cycles: self.cpu.cycles,
                    marker_mask: self.marker_mask,
                    touched: false,
                };
                self.cpu.step(&mut self.mem, &mut bus)
            };
            retired = outcome.retired;
            if outcome.retired.is_some() {
                self.total_instructions += 1;
            }
            if let CpuState::Faulted(f) = self.cpu.state() {
                events.push(DeviceEvent::CpuFault(f));
            }
            (outcome.cycles.max(1) as u64) * self.cycle_ns
        } else {
            self.config.idle_step.as_ns()
        };
        let dt = dt_ns as f64 * 1e-9;

        let i_load = self.i_load_now(powered);
        self.i_load_last = i_load;
        edb_energy::integrate_quantum(&mut self.cap, harvester, i_external, i_load, self.now, dt);
        self.now = self.now.advance_ns(dt_ns);

        // Peripheral clocks that complete asynchronously.
        if powered {
            if let Some(txn) = self.peripherals.accel.tick(self.now) {
                events.push(DeviceEvent::I2c(txn));
            }
        }

        // Supervisor last: a brown-out lands *between* instructions.
        let power_edge = self.supervisor.update(self.cap.voltage());
        self.apply_power_edge(power_edge);

        DeviceStep {
            elapsed: SimTime::from_ns(dt_ns),
            events,
            power_edge,
            retired,
        }
    }

    /// Advances the device until `deadline` (or the first span-breaking
    /// occurrence), integrating each quantum with exactly the arithmetic
    /// of [`Device::step`] but skipping redundant load-model
    /// recomputation in between.
    ///
    /// This is the batched fast path. Its contract is *bit identity*
    /// with a loop of `step` calls: it may only elide work that is
    /// provably a no-op in that loop. The span ends — leaving the caller
    /// to re-establish its invariants — at the first of:
    ///
    /// * the deadline (callers cap it with the next debugger wakeup and
    ///   [`Device::next_silent_deadline`], so the load model and
    ///   observer state stay exact);
    /// * any port access (`in`/`out` can change peripheral currents,
    ///   wire states, and RF bookkeeping);
    /// * any wire-observable event, a power edge, or the CPU leaving
    ///   the running state.
    ///
    /// Note the final quantum may overshoot `deadline`, exactly like the
    /// unbatched `while now < deadline { step() }` loop it replaces.
    ///
    /// `i_external` is sampled per quantum with the present capacitor
    /// voltage, matching the per-step closure evaluation order.
    pub fn run_span(
        &mut self,
        harvester: &mut dyn Harvester,
        i_external: &mut dyn FnMut(f64) -> f64,
        deadline: SimTime,
    ) -> DeviceStep {
        let start = self.now;
        let mut events = Vec::new();
        let mut retired = None;
        let mut power_edge = None;
        let mut i_load_cache = 0.0;
        let mut have_i_load = false;

        while self.now < deadline {
            let powered = self.supervisor.powered();
            let mut refresh = !have_i_load;
            let mut stop = false;

            let dt_ns = if powered && self.cpu.is_running() {
                let had_events = events.len();
                let outcome = {
                    let mut bus = BusCtx {
                        peripherals: &mut self.peripherals,
                        events: &mut events,
                        now: self.now,
                        v_cap: self.cap.voltage(),
                        cycles: self.cpu.cycles,
                        marker_mask: self.marker_mask,
                        touched: false,
                    };
                    let o = self.cpu.step(&mut self.mem, &mut bus);
                    if bus.touched {
                        refresh = true;
                        stop = true;
                    }
                    o
                };
                if outcome.retired.is_some() {
                    self.total_instructions += 1;
                    retired = outcome.retired;
                }
                if let CpuState::Faulted(f) = self.cpu.state() {
                    events.push(DeviceEvent::CpuFault(f));
                }
                if !self.cpu.is_running() {
                    refresh = true;
                    stop = true;
                }
                if events.len() > had_events {
                    stop = true;
                }
                (outcome.cycles.max(1) as u64) * self.cycle_ns
            } else {
                self.config.idle_step.as_ns()
            };
            let dt = dt_ns as f64 * 1e-9;

            if refresh {
                i_load_cache = self.i_load_now(powered);
                have_i_load = true;
            }
            self.i_load_last = i_load_cache;
            let i_ext = i_external(self.cap.voltage());
            edb_energy::integrate_quantum(
                &mut self.cap,
                harvester,
                i_ext,
                i_load_cache,
                self.now,
                dt,
            );
            self.now = self.now.advance_ns(dt_ns);

            if powered {
                if let Some(txn) = self.peripherals.accel.tick(self.now) {
                    events.push(DeviceEvent::I2c(txn));
                    stop = true;
                }
            }

            let edge = self.supervisor.update(self.cap.voltage());
            if edge.is_some() {
                self.apply_power_edge(edge);
                power_edge = edge;
                stop = true;
            }

            if stop {
                break;
            }
        }

        DeviceStep {
            elapsed: SimTime::from_ns(self.now.as_ns() - start.as_ns()),
            events,
            power_edge,
            retired,
        }
    }

    /// The earliest future instant at which a peripheral's load current
    /// changes *without* any port access or event — UART byte done, ADC
    /// conversion done, RF burst off the air. [`Device::run_span`]
    /// callers must not batch past this (the accelerometer needs no
    /// entry here: its completion emits an I²C event, which already
    /// breaks the span).
    pub fn next_silent_deadline(&self) -> Option<SimTime> {
        let mut deadline: Option<SimTime> = None;
        for t in [
            self.peripherals.uart.busy_deadline(),
            self.peripherals.adc.busy_deadline(),
            self.peripherals.rf.busy_deadline(),
        ]
        .into_iter()
        .flatten()
        {
            if t > self.now {
                deadline = Some(deadline.map_or(t, |d| d.min(t)));
            }
        }
        deadline
    }

    /// The instantaneous load model — shared verbatim by the per-step
    /// and batched paths.
    fn i_load_now(&self, powered: bool) -> f64 {
        if powered {
            let base = if self.cpu.is_running() {
                self.config.i_active
            } else {
                self.config.i_halted
            };
            base + self.peripherals.gpio.current()
                + self.peripherals.uart.current(self.now)
                + self.peripherals.adc.current(self.now)
                + self.peripherals.accel.current()
                + self.peripherals.rf.current(self.now)
                + self.ldo.quiescent_current()
        } else {
            self.config.i_off_leak
        }
    }

    fn apply_power_edge(&mut self, edge: Option<PowerEdge>) {
        match edge {
            Some(PowerEdge::TurnOn) => {
                self.peripherals.reset();
                self.cpu.reset(&self.mem);
                self.turn_ons += 1;
            }
            Some(PowerEdge::BrownOut) => {
                self.mem.power_cycle();
                self.peripherals.reset();
                self.reboots += 1;
            }
            None => {}
        }
    }
}

/// The port-bus adapter connecting the CPU's `in`/`out` instructions to
/// the peripheral set, emitting wire events as side effects.
struct BusCtx<'a> {
    peripherals: &'a mut Peripherals,
    events: &'a mut Vec<DeviceEvent>,
    now: SimTime,
    v_cap: f64,
    cycles: u64,
    marker_mask: u16,
    /// Set on any `in`/`out`: port traffic may change peripheral state
    /// (and thus the load model), so a batched span must end here.
    touched: bool,
}

impl PortBus for BusCtx<'_> {
    fn port_in(&mut self, port: u8) -> u16 {
        self.touched = true;
        match port {
            ports::GPIO_OUT => self.peripherals.gpio.read(),
            ports::GPIO_IN => 0,
            ports::DEBUG_STATUS => self.peripherals.debug.status(),
            ports::DBG_UART_RX => self
                .peripherals
                .debug
                .rx_from_debugger
                .pop_front()
                .map_or(0, u16::from),
            ports::DBG_UART_STATUS => self.peripherals.debug.uart_status(self.now),
            ports::UART_STATUS => self.peripherals.uart.status(self.now),
            ports::ADC_SELF => {
                let code = self.peripherals.adc.sample(self.now, self.v_cap);
                self.events.push(DeviceEvent::AdcSelfSample { code });
                code
            }
            ports::TIMER_LO => self.peripherals.timer.read_lo(self.cycles),
            ports::TIMER_HI => self.peripherals.timer.read_hi(),
            ports::ACCEL_STATUS => self.peripherals.accel.status(),
            ports::ACCEL_X => self.peripherals.accel.axis(0),
            ports::ACCEL_Y => self.peripherals.accel.axis(1),
            ports::ACCEL_Z => self.peripherals.accel.axis(2),
            ports::RF_RX_DATA => self.peripherals.rf.pop_rx(),
            ports::RF_RX_STATUS => self.peripherals.rf.rx_status(),
            _ => 0,
        }
    }

    fn port_out(&mut self, port: u8, value: u16) {
        self.touched = true;
        match port {
            ports::GPIO_OUT => {
                if let Some((old, new)) = self.peripherals.gpio.write(value) {
                    self.events.push(DeviceEvent::GpioChange { old, new });
                }
            }
            ports::CODE_MARKER => {
                // n marker lines → IDs 1..=2^n−1; zero is "no pulse".
                let id = (value & self.marker_mask) as u8;
                if id != 0 {
                    self.events.push(DeviceEvent::CodeMarker { id });
                }
            }
            ports::DEBUG_SIGNAL => {
                self.peripherals.debug.raise_signal(value);
                self.events.push(DeviceEvent::DebugSignal { value });
            }
            ports::DBG_UART_TX => {
                let byte = (value & 0xFF) as u8;
                if self.peripherals.debug.write_tx(self.now, byte) {
                    self.events.push(DeviceEvent::DbgUartByte { byte });
                }
            }
            ports::UART_TX => {
                let byte = (value & 0xFF) as u8;
                if self.peripherals.uart.write(self.now, byte) {
                    self.events.push(DeviceEvent::UartByte { byte });
                }
            }
            ports::ACCEL_CTRL if value & 1 != 0 => {
                self.peripherals.accel.start_transaction(self.now);
            }
            ports::RF_TX_DATA => self.peripherals.rf.push_tx((value & 0xFF) as u8),
            ports::RF_TX_CTRL if value & 1 != 0 => {
                if let Some(frame) = self.peripherals.rf.flush_tx(self.now) {
                    self.events.push(DeviceEvent::RfTx(frame));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_energy::{ConstantCurrent, TheveninSource};
    use edb_mcu::asm::assemble;

    fn counter_image() -> Image {
        assemble(
            r#"
            .equ COUNTER, 0x6000
            .org 0x4400
            start:
                movi r1, COUNTER
                ld   r0, [r1]
                add  r0, 1
                st   [r1], r0
                jmp  start + 4      ; skip re-loading r1
            .org 0xFFFE
            .word start
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn device_boots_at_turn_on_threshold() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&counter_image());
        let mut src = ConstantCurrent::new(1e-3);
        assert!(!dev.powered());
        let mut saw_turn_on = false;
        for _ in 0..1_000_000 {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge == Some(PowerEdge::TurnOn) {
                saw_turn_on = true;
                break;
            }
        }
        assert!(saw_turn_on);
        assert!(dev.v_cap() >= 2.39);
        assert!(dev.powered());
    }

    #[test]
    fn sawtooth_charge_discharge_cycles() {
        // Figure 2B: with a weak source and a hungry CPU, the device
        // cycles between turn-on and brown-out repeatedly.
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&counter_image());
        let mut src = TheveninSource::new(3.2, 1500.0);
        let mut edges = 0;
        let end = SimTime::from_ms(500);
        while dev.now() < end {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge.is_some() {
                edges += 1;
            }
        }
        assert!(
            edges >= 8,
            "expected several charge-discharge cycles, saw {edges} edges"
        );
        assert!(dev.reboots() >= 4);
        // "tens to hundreds of times per second": ≥ 8 reboots/second.
        let per_sec = dev.reboots() as f64 / dev.now().as_secs_f64();
        assert!(per_sec >= 8.0, "{per_sec} reboots/s");
    }

    #[test]
    fn progress_survives_reboots_in_fram() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&counter_image());
        let mut src = TheveninSource::new(3.2, 1500.0);
        let end = SimTime::from_ms(300);
        while dev.now() < end {
            dev.step(&mut src, 0.0);
        }
        let counter = dev.mem().peek_word(0x6000);
        assert!(dev.reboots() >= 1, "must have rebooted");
        assert!(
            counter > 1000,
            "counter {counter} keeps growing across reboots"
        );
    }

    #[test]
    fn volatile_register_state_is_lost_on_reboot() {
        // A program that counts in a register only: the count restarts
        // from zero after each reboot, so it never exceeds what one
        // charge cycle allows.
        let image = assemble(
            r#"
            .equ SNAPSHOT, 0x6000
            .org 0x4400
            start:
                add  r0, 1
                movi r1, SNAPSHOT
                st   [r1], r0       ; publish for inspection
                jmp  start
            .org 0xFFFE
            .word start
            "#,
        )
        .expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut src = TheveninSource::new(3.2, 1500.0);
        let mut max_snapshot = 0u16;
        let end = SimTime::from_ms(400);
        while dev.now() < end {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge == Some(PowerEdge::BrownOut) {
                max_snapshot = max_snapshot.max(dev.mem().peek_word(0x6000));
            }
        }
        assert!(dev.reboots() >= 2);
        // One discharge window at ~2.2 mA from 2.4 to 1.8 V is ~20 ms
        // ≈ 80k cycles ≈ ~8k loop iterations. Far less than u16::MAX
        // iterations would need; and crucially each cycle starts over.
        assert!(max_snapshot > 100);
        let final_snapshot = dev.mem().peek_word(0x6000);
        assert!(
            final_snapshot < 30_000,
            "register counter must restart each cycle (got {final_snapshot})"
        );
    }

    #[test]
    fn continuous_power_never_reboots() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&counter_image());
        // A strong tethered supply: 3 V behind 10 Ω.
        let mut tether = TheveninSource::new(3.0, 10.0);
        let end = SimTime::from_ms(200);
        while dev.now() < end {
            dev.step(&mut tether, 0.0);
        }
        assert_eq!(dev.reboots(), 0);
        assert_eq!(dev.turn_ons(), 1);
    }

    #[test]
    fn external_current_is_the_debugger_knob() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&counter_image());
        let mut none = ConstantCurrent::new(0.0);
        // Charge purely from the "EDB" external current.
        for _ in 0..500_000 {
            dev.step(&mut none, 5e-3);
            if dev.powered() {
                break;
            }
        }
        assert!(dev.powered(), "external charging must boot the device");
    }

    #[test]
    fn gpio_events_surface_from_port_writes() {
        let image = assemble(&format!(
            "{}\n.org 0x4400\nstart:\n movi r0, PIN_MAIN_LOOP\n out GPIO_OUT, r0\n movi r0, 0\n out GPIO_OUT, r0\n halt\n.org 0xFFFE\n.word start\n",
            crate::ports::asm_equates()
        ))
        .expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        dev.set_v_cap(2.5);
        let mut src = ConstantCurrent::new(0.0);
        let mut changes = Vec::new();
        for _ in 0..100 {
            let step = dev.step(&mut src, 0.0);
            for e in step.events {
                if let DeviceEvent::GpioChange { old, new } = e {
                    changes.push((old, new));
                }
            }
            if !dev.cpu().is_running() {
                break;
            }
        }
        assert_eq!(changes, vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn code_markers_and_debug_signals_emit_events() {
        let image = assemble(
            r#"
            .org 0x4400
            start:
                movi r0, 2
                out  0x02, r0      ; CODE_MARKER id 2
                movi r0, 0x31
                out  0x03, r0      ; DEBUG_SIGNAL
                halt
            .org 0xFFFE
            .word start
            "#,
        )
        .expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        dev.set_v_cap(2.5);
        let mut src = ConstantCurrent::new(0.0);
        let mut markers = Vec::new();
        let mut signals = Vec::new();
        for _ in 0..100 {
            let step = dev.step(&mut src, 0.0);
            for e in step.events {
                match e {
                    DeviceEvent::CodeMarker { id } => markers.push(id),
                    DeviceEvent::DebugSignal { value } => signals.push(value),
                    _ => {}
                }
            }
            if !dev.cpu().is_running() {
                break;
            }
        }
        assert_eq!(markers, vec![2]);
        assert_eq!(signals, vec![0x31]);
        assert_eq!(
            dev.peripherals.debug.signals.front().copied(),
            Some(0x31),
            "signal also queued for the debugger to drain"
        );
    }

    #[test]
    fn marker_width_caps_distinct_ids() {
        // §4.1.3: n marker lines distinguish 2^n - 1 watchpoint IDs.
        // With 1 line, ID 2 masks to zero (no pulse) and 3 aliases to 1.
        for (lines, expect) in [
            (1u8, vec![1, 1]),
            (2, vec![1, 2, 3]),
            (3, vec![1, 2, 3, 4, 5, 6, 7]),
        ] {
            let n = if lines == 3 { 7 } else { 3 };
            let mut body = String::new();
            for id in 1..=n {
                body.push_str(&format!(
                    " movi r0, {id}
 out 0x02, r0
"
                ));
            }
            let src_text = format!(
                ".org 0x4400
main:
{body} halt
.org 0xFFFE
.word main
"
            );
            let image = edb_mcu::asm::assemble(&src_text).expect("assembles");
            let mut dev = Device::new(DeviceConfig {
                marker_lines: lines,
                ..DeviceConfig::wisp5()
            });
            dev.flash(&image);
            dev.set_v_cap(2.5);
            let mut src = ConstantCurrent::new(0.0);
            let mut ids = Vec::new();
            for _ in 0..200 {
                let step = dev.step(&mut src, 0.0);
                for e in step.events {
                    if let DeviceEvent::CodeMarker { id } = e {
                        ids.push(id);
                    }
                }
                if !dev.cpu().is_running() {
                    break;
                }
            }
            assert_eq!(ids, expect, "{lines} marker lines");
        }
    }

    #[test]
    fn run_span_is_bit_identical_to_stepping() {
        // A workload that exercises the span breakers: port traffic
        // (UART bytes, ADC self-samples, code markers), intermittent
        // power edges, and silent peripheral deadlines.
        let image = assemble(
            r#"
            .org 0x4400
            start:
                movi r3, 0
            loop:
                add  r3, 1
                movi r0, 1
                out  0x02, r0      ; code marker
                in   r2, 0x0A      ; ADC self-sample (50 us busy window)
                movi r0, 0x41
                out  0x08, r0      ; UART byte (86.8 us busy window)
            spin:
                add  r1, 1
                cmpi r1, 400
                jnz  spin
                movi r1, 0
                jmp  loop
            .org 0xFFFE
            .word start
            "#,
        )
        .expect("assembles");
        let end = SimTime::from_ms(400);

        let mut a = Device::new(DeviceConfig::wisp5());
        a.flash(&image);
        let mut src_a = TheveninSource::new(3.2, 1500.0);
        let mut events_a = 0usize;
        while a.now() < end {
            events_a += a.step(&mut src_a, 0.0).events.len();
        }

        let mut b = Device::new(DeviceConfig::wisp5());
        b.flash(&image);
        let mut src_b = TheveninSource::new(3.2, 1500.0);
        let mut events_b = 0usize;
        while b.now() < end {
            let mut cap = end;
            if let Some(t) = b.next_silent_deadline() {
                cap = cap.min(t);
            }
            let span = if cap > b.now() {
                b.run_span(&mut src_b, &mut |_| 0.0, cap)
            } else {
                b.step(&mut src_b, 0.0)
            };
            events_b += span.events.len();
        }

        assert_eq!(
            a.v_cap().to_bits(),
            b.v_cap().to_bits(),
            "capacitor voltage must match to the last bit"
        );
        assert_eq!(a.now(), b.now());
        assert_eq!(a.total_instructions(), b.total_instructions());
        assert_eq!(a.reboots(), b.reboots());
        assert_eq!(a.turn_ons(), b.turn_ons());
        assert_eq!(events_a, events_b, "same wire events either way");
        assert_eq!(
            a.peripherals.uart.sent(),
            b.peripherals.uart.sent(),
            "same UART bytes at the same timestamps"
        );
        assert!(a.reboots() >= 1, "workload must actually be intermittent");
        assert!(events_a > 100, "workload must actually emit events");
    }

    #[test]
    fn serde_snapshot_resumes_bit_identically() {
        // Snapshot a device mid-run (having already crossed power edges),
        // restore it into a fresh instance, and run both forward: every
        // observable must stay bit-identical. This is the foundation the
        // record/replay layer's full-state snapshots stand on.
        let mut live = Device::new(DeviceConfig::wisp5());
        live.flash(&counter_image());
        let mut src = TheveninSource::new(3.2, 1500.0);
        while live.now() < SimTime::from_ms(150) {
            live.step(&mut src, 0.0);
        }
        assert!(live.reboots() >= 1, "snapshot must straddle power cycles");
        let snap = live.to_value();
        let mut restored = Device::from_value(&snap).expect("round-trips");
        let mut src_r = src;
        while live.now() < SimTime::from_ms(300) {
            live.step(&mut src, 0.0);
            restored.step(&mut src_r, 0.0);
        }
        assert_eq!(live.now(), restored.now());
        assert_eq!(live.v_cap().to_bits(), restored.v_cap().to_bits());
        assert_eq!(live.total_instructions(), restored.total_instructions());
        assert_eq!(live.reboots(), restored.reboots());
        assert_eq!(
            live.mem().peek_word(0x6000),
            restored.mem().peek_word(0x6000)
        );
    }

    #[test]
    fn led_accelerates_discharge() {
        // §2.2: LED-based tracing changes intermittent behaviour. With
        // the LED on, the discharge phase is much shorter.
        let busy_loop = |led: bool| {
            let pin = if led { 1 } else { 0 };
            let src_txt = format!(
                ".org 0x4400\nstart:\n movi r0, {pin}\n out 0x00, r0\nloop:\n add r1, 1\n jmp loop\n.org 0xFFFE\n.word start\n"
            );
            let image = assemble(&src_txt).expect("assembles");
            let mut dev = Device::new(DeviceConfig::wisp5());
            dev.flash(&image);
            dev.set_v_cap(2.45);
            let mut none = ConstantCurrent::new(0.0);
            while dev.powered() || dev.reboots() == 0 {
                dev.step(&mut none, 0.0);
                if dev.reboots() > 0 {
                    break;
                }
                if dev.now() > SimTime::from_secs(1) {
                    break;
                }
            }
            dev.now()
        };
        let t_plain = busy_loop(false);
        let t_led = busy_loop(true);
        assert!(
            t_led.as_ns() * 2 < t_plain.as_ns(),
            "LED must drain at least 2x faster: {t_led} vs {t_plain}"
        );
    }

    #[test]
    fn self_adc_costs_energy() {
        let sample_loop = |with_adc: bool| {
            let body = if with_adc { "in r2, 0x0A" } else { "nop" };
            let src_txt = format!(
                ".org 0x4400\nstart:\nloop:\n {body}\n add r1, 1\n jmp loop\n.org 0xFFFE\n.word start\n"
            );
            let image = assemble(&src_txt).expect("assembles");
            let mut dev = Device::new(DeviceConfig::wisp5());
            dev.flash(&image);
            dev.set_v_cap(2.45);
            let mut none = ConstantCurrent::new(0.0);
            while dev.reboots() == 0 && dev.now() < SimTime::from_secs(1) {
                dev.step(&mut none, 0.0);
            }
            dev.now()
        };
        let t_plain = sample_loop(false);
        let t_adc = sample_loop(true);
        assert!(
            t_adc < t_plain,
            "self-measurement must shorten the discharge: {t_adc} vs {t_plain}"
        );
    }
}
