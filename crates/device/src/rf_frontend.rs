//! The tag's RF front-end: demodulator RX FIFO and backscatter TX.
//!
//! The demodulator turns reader command frames into bytes that firmware
//! pops one at a time (`RF_RX_DATA`); the modulator backscatters reply
//! bytes buffered by firmware and flushed with `RF_TX_CTRL`. Both byte
//! streams are the "RF Data RX/TX" lines of the paper's Figure 5 — EDB
//! taps them externally, which is why it can decode messages even when
//! the target browns out mid-decode.

use edb_energy::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A reply frame the tag put on the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backscatter {
    /// When the flush happened.
    pub at: SimTime,
    /// The reply bytes.
    pub bytes: Vec<u8>,
}

/// The RF front-end peripheral.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RfFrontend {
    rx_fifo: VecDeque<u8>,
    tx_buffer: Vec<u8>,
    tx_busy_until: Option<SimTime>,
    /// Extra supply current while backscattering, amps (backscatter is
    /// nearly free — that is the point of passive RFID).
    pub tx_current: f64,
    /// Air time per backscattered byte.
    pub tx_byte_time: SimTime,
}

impl RfFrontend {
    /// Creates an idle front-end.
    pub fn new() -> Self {
        RfFrontend {
            rx_fifo: VecDeque::new(),
            tx_buffer: Vec::new(),
            tx_busy_until: None,
            tx_current: 0.1e-3,
            tx_byte_time: SimTime::from_us(100),
        }
    }

    /// Channel side: a demodulated command byte arrives (the front-end
    /// demodulates whenever the tag circuit is energized; a small
    /// hardware FIFO holds a frame's worth of bytes).
    pub fn deliver_byte(&mut self, byte: u8) {
        // An 16-byte hardware FIFO: overflow drops the oldest.
        if self.rx_fifo.len() >= 16 {
            self.rx_fifo.pop_front();
        }
        self.rx_fifo.push_back(byte);
    }

    /// Firmware side: pop the next received byte (`RF_RX_DATA`).
    pub fn pop_rx(&mut self) -> u16 {
        self.rx_fifo.pop_front().map_or(0, u16::from)
    }

    /// `RF_RX_STATUS` port value: bit 0 = byte available, bits 8.. =
    /// queue depth.
    pub fn rx_status(&self) -> u16 {
        (!self.rx_fifo.is_empty() as u16) | ((self.rx_fifo.len().min(255) as u16) << 8)
    }

    /// Firmware side: buffer a reply byte (`RF_TX_DATA`).
    pub fn push_tx(&mut self, byte: u8) {
        if self.tx_buffer.len() < 64 {
            self.tx_buffer.push(byte);
        }
    }

    /// Firmware side: flush the buffered reply onto the air
    /// (`RF_TX_CTRL` ← 1). Returns the frame if there was one.
    pub fn flush_tx(&mut self, now: SimTime) -> Option<Backscatter> {
        if self.tx_buffer.is_empty() {
            return None;
        }
        let bytes = std::mem::take(&mut self.tx_buffer);
        let air_ns = bytes.len() as u64 * self.tx_byte_time.as_ns();
        self.tx_busy_until = Some(now.advance_ns(air_ns));
        Some(Backscatter { at: now, bytes })
    }

    /// Supply current drawn right now, amps.
    pub fn current(&self, now: SimTime) -> f64 {
        if self.tx_busy_until.is_some_and(|t| now < t) {
            self.tx_current
        } else {
            0.0
        }
    }

    /// When the in-flight backscatter burst (if any) leaves the air — a
    /// silent load-model change span batching must stop at.
    pub fn busy_deadline(&self) -> Option<SimTime> {
        self.tx_busy_until
    }

    /// Power-loss reset: the FIFO and half-built reply vanish — a frame
    /// the target was decoding when it browned out is simply lost to the
    /// target (but not to EDB, which monitored the line externally).
    pub fn reset(&mut self) {
        self.rx_fifo.clear();
        self.tx_buffer.clear();
        self.tx_busy_until = None;
    }

    /// Bytes waiting in the RX FIFO (instrumentation).
    pub fn rx_depth(&self) -> usize {
        self.rx_fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_fifo_order_and_status() {
        let mut rf = RfFrontend::new();
        assert_eq!(rf.rx_status(), 0);
        rf.deliver_byte(0x51);
        rf.deliver_byte(0x00);
        assert_eq!(rf.rx_status() & 1, 1);
        assert_eq!(rf.rx_status() >> 8, 2);
        assert_eq!(rf.pop_rx(), 0x51);
        assert_eq!(rf.pop_rx(), 0x00);
        assert_eq!(rf.pop_rx(), 0, "empty FIFO reads zero");
    }

    #[test]
    fn fifo_overflow_drops_oldest() {
        let mut rf = RfFrontend::new();
        for b in 0..20u8 {
            rf.deliver_byte(b);
        }
        assert_eq!(rf.rx_depth(), 16);
        assert_eq!(rf.pop_rx(), 4, "bytes 0..3 were dropped");
    }

    #[test]
    fn tx_flush_produces_frame_and_busy_window() {
        let mut rf = RfFrontend::new();
        assert!(rf.flush_tx(SimTime::ZERO).is_none(), "nothing buffered");
        for &b in b"hi" {
            rf.push_tx(b);
        }
        let frame = rf.flush_tx(SimTime::ZERO).expect("flushes");
        assert_eq!(frame.bytes, b"hi".to_vec());
        assert!(rf.current(SimTime::from_us(50)) > 0.0);
        assert_eq!(rf.current(SimTime::from_us(500)), 0.0);
        assert!(rf.flush_tx(SimTime::from_us(1)).is_none(), "buffer emptied");
    }

    #[test]
    fn reset_loses_in_flight_state() {
        let mut rf = RfFrontend::new();
        rf.deliver_byte(1);
        rf.push_tx(2);
        rf.reset();
        assert_eq!(rf.rx_depth(), 0);
        assert!(rf.flush_tx(SimTime::ZERO).is_none());
    }
}
