//! The peripheral port map of the WISP-like target.
//!
//! `in`/`out` instructions address this 8-bit port space. Applications are
//! written against the named constants; [`asm_equates`] renders them as
//! `.equ` lines so assembly sources stay in sync with the simulator by
//! construction.

/// GPIO output latch. Bit assignments: see the `PIN_*` constants.
pub const GPIO_OUT: u8 = 0x00;
/// GPIO input pins (reserved; reads 0 in this hardware revision).
pub const GPIO_IN: u8 = 0x01;
/// Code-marker pulse port: writing a non-zero watchpoint ID pulses the
/// marker lines for one cycle (the paper's "Code Marker" connections).
pub const CODE_MARKER: u8 = 0x02;
/// Debug-signal port: the target raises requests to EDB here (assert
/// failures, breakpoints, energy-guard boundaries). See `edb-core`'s
/// protocol module for the encoding.
pub const DEBUG_SIGNAL: u8 = 0x03;
/// Debug-status port: bit 0 = EDB acknowledge, bit 1 = active debug
/// session in progress.
pub const DEBUG_STATUS: u8 = 0x04;
/// Debug UART transmit (target → EDB).
pub const DBG_UART_TX: u8 = 0x05;
/// Debug UART receive (EDB → target).
pub const DBG_UART_RX: u8 = 0x06;
/// Debug UART status: bit 0 = RX byte available, bit 1 = TX busy.
pub const DBG_UART_STATUS: u8 = 0x07;
/// User console UART transmit (target-powered!).
pub const UART_TX: u8 = 0x08;
/// User UART status: bit 1 = TX busy.
pub const UART_STATUS: u8 = 0x09;
/// On-board ADC reading of the target's own storage-capacitor voltage
/// (12-bit). Self-measurement costs time and energy — the reason the
/// paper argues for off-board sensing.
pub const ADC_SELF: u8 = 0x0A;
/// Low word of the free-running cycle counter; reading latches the high
/// word into [`TIMER_HI`].
pub const TIMER_LO: u8 = 0x0B;
/// High word of the cycle counter (latched by a [`TIMER_LO`] read).
pub const TIMER_HI: u8 = 0x0C;
/// Accelerometer control: write 1 to start an I²C sample transaction.
pub const ACCEL_CTRL: u8 = 0x0D;
/// Accelerometer status: bit 0 = sample ready, bit 1 = transaction busy.
pub const ACCEL_STATUS: u8 = 0x0E;
/// Accelerometer X sample (signed, milli-g).
pub const ACCEL_X: u8 = 0x0F;
/// Accelerometer Y sample.
pub const ACCEL_Y: u8 = 0x10;
/// Accelerometer Z sample.
pub const ACCEL_Z: u8 = 0x11;
/// RFID demodulator RX FIFO: reading pops the next received byte.
pub const RF_RX_DATA: u8 = 0x12;
/// RFID RX status: bit 0 = byte available; bits 8.. = queue depth.
pub const RF_RX_STATUS: u8 = 0x13;
/// RFID backscatter TX buffer: write the next reply byte.
pub const RF_TX_DATA: u8 = 0x14;
/// RFID TX control: write 1 to flush the buffered reply onto the air.
pub const RF_TX_CTRL: u8 = 0x15;

/// GPIO bit 0 drives the LED (≈4.5 mA extra when lit — "powering an LED
/// increases the WISP's current draw by five times").
pub const PIN_LED: u16 = 1 << 0;
/// GPIO bit 1 is the main-loop progress pin toggled by the paper's test
/// applications.
pub const PIN_MAIN_LOOP: u16 = 1 << 1;
/// GPIO bit 2 marks the instrumentation/consistency-check region
/// (the "Check" trace of Figure 9).
pub const PIN_CHECK: u16 = 1 << 2;
/// GPIO bit 3 is a general-purpose auxiliary pin.
pub const PIN_AUX: u16 = 1 << 3;

/// Renders the whole port map (and pin bits) as assembler `.equ` lines.
///
/// # Example
///
/// ```
/// let eq = edb_device::ports::asm_equates();
/// assert!(eq.contains(".equ GPIO_OUT, 0x00"));
/// assert!(eq.contains(".equ PIN_MAIN_LOOP, 0x0002"));
/// ```
pub fn asm_equates() -> String {
    let ports: &[(&str, u8)] = &[
        ("GPIO_OUT", GPIO_OUT),
        ("GPIO_IN", GPIO_IN),
        ("CODE_MARKER", CODE_MARKER),
        ("DEBUG_SIGNAL", DEBUG_SIGNAL),
        ("DEBUG_STATUS", DEBUG_STATUS),
        ("DBG_UART_TX", DBG_UART_TX),
        ("DBG_UART_RX", DBG_UART_RX),
        ("DBG_UART_STATUS", DBG_UART_STATUS),
        ("UART_TX", UART_TX),
        ("UART_STATUS", UART_STATUS),
        ("ADC_SELF", ADC_SELF),
        ("TIMER_LO", TIMER_LO),
        ("TIMER_HI", TIMER_HI),
        ("ACCEL_CTRL", ACCEL_CTRL),
        ("ACCEL_STATUS", ACCEL_STATUS),
        ("ACCEL_X", ACCEL_X),
        ("ACCEL_Y", ACCEL_Y),
        ("ACCEL_Z", ACCEL_Z),
        ("RF_RX_DATA", RF_RX_DATA),
        ("RF_RX_STATUS", RF_RX_STATUS),
        ("RF_TX_DATA", RF_TX_DATA),
        ("RF_TX_CTRL", RF_TX_CTRL),
    ];
    let pins: &[(&str, u16)] = &[
        ("PIN_LED", PIN_LED),
        ("PIN_MAIN_LOOP", PIN_MAIN_LOOP),
        ("PIN_CHECK", PIN_CHECK),
        ("PIN_AUX", PIN_AUX),
    ];
    let mut out = String::new();
    for (name, value) in ports {
        out.push_str(&format!(".equ {name}, {value:#04x}\n"));
    }
    for (name, value) in pins {
        out.push_str(&format!(".equ {name}, {value:#06x}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_numbers_are_unique() {
        let all = [
            GPIO_OUT,
            GPIO_IN,
            CODE_MARKER,
            DEBUG_SIGNAL,
            DEBUG_STATUS,
            DBG_UART_TX,
            DBG_UART_RX,
            DBG_UART_STATUS,
            UART_TX,
            UART_STATUS,
            ADC_SELF,
            TIMER_LO,
            TIMER_HI,
            ACCEL_CTRL,
            ACCEL_STATUS,
            ACCEL_X,
            ACCEL_Y,
            ACCEL_Z,
            RF_RX_DATA,
            RF_RX_STATUS,
            RF_TX_DATA,
            RF_TX_CTRL,
        ];
        let mut seen = std::collections::HashSet::new();
        for p in all {
            assert!(seen.insert(p), "duplicate port {p:#04x}");
        }
    }

    #[test]
    fn equates_assemble() {
        let src = format!(
            "{}\n.org 0x4400\n out GPIO_OUT, r0\n in r1, ACCEL_STATUS\n",
            asm_equates()
        );
        edb_mcu::asm::assemble(&src).expect("equates are valid assembly");
    }
}
