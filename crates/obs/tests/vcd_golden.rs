//! Golden-file test for the VCD exporter: a fixed set of digital
//! lines must serialize byte-for-byte identically across releases,
//! so downstream waveform tooling (GTKWave et al.) never sees the
//! format drift silently.

use edb_obs::vcd::{export, LineTrace};
use edb_obs::SimTime;

fn fixture() -> Vec<LineTrace> {
    let mut powered = LineTrace::new("powered", 1);
    let mut session = LineTrace::new("session", 1);
    let mut gpio = LineTrace::new("gpio", 16);
    powered.record(SimTime::ZERO, 0);
    powered.record(SimTime::from_us(120), 1);
    powered.record(SimTime::from_us(950), 0);
    powered.record(SimTime::from_us(1400), 1);
    session.record(SimTime::from_us(300), 0);
    session.record(SimTime::from_us(600), 1);
    session.record(SimTime::from_us(900), 0);
    gpio.record(SimTime::from_us(120), 0x0000);
    gpio.record(SimTime::from_us(450), 0x0041);
    gpio.record(SimTime::from_us(450), 0x0041); // duplicate: compressed away
    gpio.record(SimTime::from_us(950), 0x8000);
    vec![powered, session, gpio]
}

#[test]
fn vcd_export_matches_golden_file() {
    let got = export(&fixture());
    let want = include_str!("golden/fixture.vcd");
    assert_eq!(
        got, want,
        "VCD output drifted from tests/golden/fixture.vcd; if the \
         change is intentional, regenerate the golden file"
    );
}

#[test]
fn golden_file_has_expected_structure() {
    // Belt and braces: the golden file itself obeys VCD structure, so
    // a bad regeneration can't lock in a broken format.
    let want = include_str!("golden/fixture.vcd");
    assert!(want.starts_with("$timescale 1 ns $end\n"));
    assert_eq!(want.matches("$var wire ").count(), 3);
    assert!(want.contains("$dumpvars"));
    let times: Vec<u64> = want
        .lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|t| t.parse().unwrap())
        .collect();
    assert!(!times.is_empty());
    assert!(times.windows(2).all(|w| w[0] < w[1]), "timestamps ascend");
}
