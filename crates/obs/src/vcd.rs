//! VCD (Value Change Dump) export of digital lines.
//!
//! The paper debugs with a logic analyzer on EDB's header: debug GPIO,
//! UART activity, the latency-measurement pins. This module renders the
//! recorder's digital lines in the same shape — an IEEE 1364 VCD file
//! any waveform viewer (gtkwave, Surfer, PulseView) opens directly.
//!
//! The format subset emitted: a `$timescale 1 ns` header, one
//! `$var wire` per line (scalar `0`/`1` dumps for 1-bit lines, `b...`
//! vector dumps for wider ones), an `$dumpvars` block with every line's
//! initial value, then time-ordered change records.

use edb_energy::SimTime;
use std::fmt::Write as _;

/// A change-compressed digital line: records hold only the instants at
/// which the value actually changed.
///
/// # Example
///
/// ```
/// use edb_obs::LineTrace;
/// use edb_energy::SimTime;
/// let mut line = LineTrace::new("powered", 1);
/// line.record(SimTime::ZERO, 0);
/// line.record(SimTime::from_us(1), 0); // no change: not stored
/// line.record(SimTime::from_us(2), 1);
/// assert_eq!(line.changes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineTrace {
    name: String,
    width: u16,
    changes: Vec<(SimTime, u64)>,
}

impl LineTrace {
    /// An empty line named `name`, `width` bits wide (0 is treated
    /// as 1).
    pub fn new(name: impl Into<String>, width: u16) -> Self {
        LineTrace {
            name: name.into(),
            width: width.max(1),
            changes: Vec::new(),
        }
    }

    /// The line's name (the VCD identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The line's bit width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Offers the line's current value; stored only if it differs from
    /// the last stored value.
    pub fn record(&mut self, at: SimTime, value: u64) {
        if self.changes.last().map(|&(_, v)| v) != Some(value) {
            self.changes.push((at, value));
        }
    }

    /// The stored `(time, value)` change points, in order.
    pub fn changes(&self) -> &[(SimTime, u64)] {
        &self.changes
    }
}

/// Short printable VCD identifier for line `i` (`!`, `"`, `#`, ...).
fn ident(i: usize) -> char {
    char::from(b'!' + (i as u8 % 94))
}

fn write_change(out: &mut String, line: &LineTrace, id: char, value: u64) {
    if line.width == 1 {
        let _ = writeln!(out, "{}{id}", value & 1);
    } else {
        let _ = write!(out, "b");
        for bit in (0..line.width).rev() {
            let _ = write!(out, "{}", (value >> bit) & 1);
        }
        let _ = writeln!(out, " {id}");
    }
}

/// Renders the lines as one VCD document.
pub fn export(lines: &[LineTrace]) -> String {
    let mut out = String::new();
    out.push_str("$timescale 1 ns $end\n$scope module edb $end\n");
    for (i, line) in lines.iter().enumerate() {
        let _ = writeln!(
            out,
            "$var wire {} {} {} $end",
            line.width,
            ident(i),
            line.name
        );
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values at the first change (or x if a line never fired).
    out.push_str("$dumpvars\n");
    for (i, line) in lines.iter().enumerate() {
        match line.changes.first() {
            Some(&(_, v)) => write_change(&mut out, line, ident(i), v),
            None if line.width == 1 => {
                let _ = writeln!(out, "x{}", ident(i));
            }
            None => {
                let _ = writeln!(out, "bx {}", ident(i));
            }
        }
    }
    out.push_str("$end\n");

    // Time-merged change records (skipping each line's first change,
    // which the $dumpvars block already carries at its own timestamp —
    // viewers treat $dumpvars as time zero).
    let mut pending: Vec<(SimTime, usize, usize)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for (k, &(at, _)) in line.changes.iter().enumerate().skip(1) {
            pending.push((at, i, k));
        }
    }
    pending.sort_by_key(|&(at, i, k)| (at, i, k));
    let mut last_ts = None;
    for (at, i, k) in pending {
        if last_ts != Some(at) {
            let _ = writeln!(out, "#{}", at.as_ns());
            last_ts = Some(at);
        }
        let line = &lines[i];
        write_change(&mut out, line, ident(i), line.changes[k].1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_compression_drops_repeats() {
        let mut line = LineTrace::new("x", 1);
        for (t, v) in [(0u64, 1), (1, 1), (2, 0), (3, 0), (4, 1)] {
            line.record(SimTime::from_us(t), v);
        }
        let vals: Vec<u64> = line.changes().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, [1, 0, 1]);
    }

    #[test]
    fn export_declares_vars_and_orders_timestamps() {
        let mut a = LineTrace::new("powered", 1);
        a.record(SimTime::ZERO, 0);
        a.record(SimTime::from_us(3), 1);
        let mut b = LineTrace::new("gpio", 4);
        b.record(SimTime::ZERO, 0b1010);
        b.record(SimTime::from_us(1), 0b0001);
        let vcd = export(&[a, b]);
        assert!(vcd.contains("$var wire 1 ! powered $end"));
        assert!(vcd.contains("$var wire 4 \" gpio $end"));
        assert!(vcd.contains("b1010 \""));
        let t1 = vcd.find("#1000").expect("1 µs timestamp");
        let t3 = vcd.find("#3000").expect("3 µs timestamp");
        assert!(t1 < t3, "timestamps in order");
    }
}
