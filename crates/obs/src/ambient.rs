//! Process-global recorder configuration and metrics aggregation.
//!
//! The experiment binaries take an `--obs <categories>` flag, but the
//! `System`s they observe are built deep inside experiment modules that
//! know nothing about observability. Rather than thread a recorder
//! through every harness signature, the bins publish a process-global
//! [`RecorderConfig`] here; `SystemBuilder::build` consults it and
//! attaches a recorder to every bench it stands up. When such an
//! ambient-attached bench is dropped, its recorder's metrics are merged
//! into a global registry ([`flush`]) whose snapshot the run manifest
//! embeds.
//!
//! Determinism: the merge is commutative (see [`super::metrics`]), so
//! the aggregate is identical no matter which experiment thread flushes
//! first — `--threads N` cannot change the manifest.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::RecorderConfig;
use std::sync::Mutex;

struct AmbientState {
    config: Option<RecorderConfig>,
    metrics: Metrics,
}

static STATE: Mutex<AmbientState> = Mutex::new(AmbientState {
    config: None,
    metrics: Metrics::empty(),
});

/// Enables ambient recording: every subsequently-built `System`
/// attaches a recorder with this configuration. Also clears any
/// previously aggregated metrics.
pub fn enable(config: RecorderConfig) {
    let mut state = STATE.lock().unwrap();
    state.config = Some(config);
    state.metrics = Metrics::new();
}

/// Disables ambient recording (explicitly-attached recorders are
/// unaffected). Aggregated metrics are kept until the next [`enable`].
pub fn disable() {
    STATE.lock().unwrap().config = None;
}

/// The active ambient configuration, if recording is enabled.
pub fn config() -> Option<RecorderConfig> {
    STATE.lock().unwrap().config.clone()
}

/// Merges one recorder's metrics into the global aggregate. Called by
/// the bench teardown for ambient-attached recorders.
pub fn flush(metrics: &Metrics) {
    STATE.lock().unwrap().metrics.merge(metrics);
}

/// A snapshot of the aggregated metrics, or `None` when ambient
/// recording is disabled (so detached runs serialize no `obs` block).
pub fn snapshot() -> Option<MetricsSnapshot> {
    let state = STATE.lock().unwrap();
    if state.config.is_some() {
        Some(state.metrics.snapshot())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CategoryMask;

    #[test]
    fn ambient_lifecycle() {
        // One test owns the whole lifecycle (tests in this binary run
        // in parallel and the state is process-global).
        let was = config();
        enable(RecorderConfig::with_categories(CategoryMask::ALL));
        assert!(config().is_some());
        let mut m = Metrics::new();
        m.incr("x", 2);
        flush(&m);
        flush(&m);
        let snap = snapshot().expect("enabled");
        assert_eq!(snap.counters["x"], 4);
        disable();
        assert_eq!(snapshot(), None);
        if let Some(c) = was {
            enable(c);
        }
    }
}
