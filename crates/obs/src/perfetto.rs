//! Chrome `trace_event` JSON export — open the file in ui.perfetto.dev.
//!
//! Layout: one process (`pid` 1) with one named thread track per
//! [`Category`], in [`Category::ALL`] order, plus a dedicated track for
//! the decimated capacitor-voltage counter. Timestamps are *simulated*
//! microseconds, so the Perfetto timeline reads directly in sim time.
//!
//! Phases used: `M` (metadata, names the tracks), `i` (instants, with
//! thread scope), `B`/`E` (duration slices such as debug sessions), and
//! `C` (counter samples, rendered as a graph).

use crate::{Category, ObsKind, Recorder};
use std::fmt::Write as _;

/// `tid` of a category's track (`pid` is always 1).
fn tid(category: Category) -> usize {
    category as usize + 1
}

/// `tid` of the capacitor-voltage counter track.
const VCAP_TID: usize = crate::CATEGORY_COUNT + 1;

/// Appends `s` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one trace event object; `extra` is spliced verbatim after the
/// common fields (pass `""` for none).
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts_us: f64,
    tid: usize,
    extra: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    {\"name\": ");
    push_json_str(out, name);
    let _ = write!(
        out,
        ", \"ph\": \"{ph}\", \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {tid}{extra}}}"
    );
}

/// Renders the recorder's rings, energy trace, and marks as one
/// `trace_event` JSON document.
pub fn export(rec: &Recorder) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;

    // Track-naming metadata. Metadata events carry no timestamp of
    // interest; ts 0 keeps every track's event sequence monotone.
    for &cat in &Category::ALL {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"args\": {{\"name\": \"{}\"}}}}",
            tid(cat),
            cat.name()
        );
    }
    if !rec.vcap().is_empty() {
        out.push_str(",\n");
        let _ = write!(
            out,
            "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {VCAP_TID}, \"args\": {{\"name\": \"vcap\"}}}}"
        );
    }

    // Ring events, one track per category. Rings are filled in
    // simulation order, so each track's timestamps are non-decreasing.
    for &cat in &Category::ALL {
        for event in rec.events(cat) {
            let ts_us = event.at.as_ns() as f64 / 1e3;
            match &event.kind {
                ObsKind::Instant { name } => {
                    push_event(
                        &mut out,
                        &mut first,
                        name,
                        'i',
                        ts_us,
                        tid(cat),
                        ", \"s\": \"t\"",
                    );
                }
                ObsKind::Begin { name } => {
                    push_event(&mut out, &mut first, name, 'B', ts_us, tid(cat), "");
                }
                ObsKind::End { name } => {
                    push_event(&mut out, &mut first, name, 'E', ts_us, tid(cat), "");
                }
                ObsKind::Counter { name, value } => {
                    let extra = format!(", \"args\": {{\"value\": {value}}}");
                    push_event(&mut out, &mut first, name, 'C', ts_us, tid(cat), &extra);
                }
            }
        }
    }

    // The decimated Vcap trace as a counter graph on its own track,
    // with its event marks as instants, time-merged so the track's
    // timestamps stay non-decreasing in emission order.
    let samples = rec.vcap().samples();
    let marks = rec.vcap().marks();
    let (mut si, mut mi) = (0, 0);
    while si < samples.len() || mi < marks.len() {
        let sample_next =
            mi >= marks.len() || (si < samples.len() && samples[si].0 <= marks[mi].at);
        if sample_next {
            let (at, v) = samples[si];
            si += 1;
            let extra = format!(", \"args\": {{\"value\": {v:.6}}}");
            push_event(
                &mut out,
                &mut first,
                "Vcap",
                'C',
                at.as_ns() as f64 / 1e3,
                VCAP_TID,
                &extra,
            );
        } else {
            let mark = &marks[mi];
            mi += 1;
            push_event(
                &mut out,
                &mut first,
                &mark.label,
                'i',
                mark.at.as_ns() as f64 / 1e3,
                VCAP_TID,
                ", \"s\": \"t\"",
            );
        }
    }

    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecorderConfig;
    use edb_energy::SimTime;

    #[test]
    fn export_is_valid_json_with_named_tracks() {
        let mut rec = Recorder::new(RecorderConfig::default());
        rec.instant(Category::Device, SimTime::from_us(10), "turn-on");
        rec.begin(Category::Core, SimTime::from_us(20), "session");
        rec.end(Category::Core, SimTime::from_us(120), "session");
        rec.counter(Category::Cpu, SimTime::from_us(30), "ipc", 0.8);
        rec.energy_sample(SimTime::from_us(5), 2.41);
        rec.energy_mark(SimTime::from_us(6), "assert \"x\"");
        let json = export(&rec);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get_field("traceEvents")
            .and_then(|e| e.as_seq())
            .expect("traceEvents array");
        assert!(events.len() >= 10, "metadata + payload events");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get_field("ph").and_then(|p| p.as_str()))
            .collect();
        for ph in ["M", "i", "B", "E", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph}");
        }
    }

    #[test]
    fn string_escaping_survives_hostile_labels() {
        let mut rec = Recorder::new(RecorderConfig::default());
        rec.instant(
            Category::Core,
            SimTime::ZERO,
            "quote \" slash \\ nl \n tab \t",
        );
        let json = export(&rec);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.get_field("traceEvents").is_some());
    }
}
