//! The sampling energy profiler — the paper's watchpoint energy
//! profiles (§5.3.3, Figure 10/11 instrumentation) as a reusable
//! artifact.
//!
//! At a configurable sim-time interval the harness offers the profiler
//! the CPU's program counter together with the *ground-truth* capacitor
//! voltage. Samples land in fixed-width address buckets; each bucket
//! accumulates hit counts and the voltage envelope, so the exported
//! `profile.json` answers "where does the program spend its time, and
//! at what energy level is it when it executes there" — exactly the
//! correlation EDB's watchpoints recover on real hardware, with zero
//! energy interference because the simulation reads its own state.

use edb_energy::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-address-bucket accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcBucket {
    /// Samples that landed in this bucket.
    pub samples: u64,
    /// Sum of the capacitor voltages at those samples.
    pub v_sum: f64,
    /// Lowest voltage seen in this bucket.
    pub v_min: f64,
    /// Highest voltage seen in this bucket.
    pub v_max: f64,
}

/// The sampling PC/energy profiler.
///
/// # Example
///
/// ```
/// use edb_obs::EnergyProfiler;
/// use edb_energy::SimTime;
/// let mut p = EnergyProfiler::new(SimTime::from_us(100), 64);
/// p.offer(SimTime::ZERO, 0x4400, 2.4);
/// p.offer(SimTime::from_us(10), 0x4410, 2.39); // too soon: skipped
/// p.offer(SimTime::from_us(100), 0x4412, 2.38);
/// assert_eq!(p.samples(), 2);
/// assert!(p.to_json().contains("\"0x4400\""));
/// ```
#[derive(Debug, Clone)]
pub struct EnergyProfiler {
    period: SimTime,
    bucket_bytes: u16,
    next_due: SimTime,
    samples: u64,
    buckets: BTreeMap<u16, PcBucket>,
}

impl EnergyProfiler {
    /// A profiler sampling every `period` with `bucket_bytes`-wide
    /// address buckets (0 is treated as 1).
    pub fn new(period: SimTime, bucket_bytes: u16) -> Self {
        EnergyProfiler {
            period,
            bucket_bytes: bucket_bytes.max(1),
            next_due: SimTime::ZERO,
            samples: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// The earliest time the next offer will be kept.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Offers a sample; it is kept only if the sampling period has
    /// elapsed. Returns whether it was kept.
    pub fn offer(&mut self, at: SimTime, pc: u16, v_cap: f64) -> bool {
        if at < self.next_due {
            return false;
        }
        self.next_due = at + self.period;
        self.samples += 1;
        let base = pc - pc % self.bucket_bytes;
        let b = self.buckets.entry(base).or_insert(PcBucket {
            samples: 0,
            v_sum: 0.0,
            v_min: f64::INFINITY,
            v_max: f64::NEG_INFINITY,
        });
        b.samples += 1;
        b.v_sum += v_cap;
        b.v_min = b.v_min.min(v_cap);
        b.v_max = b.v_max.max(v_cap);
        true
    }

    /// Declines the pending sample slot: advances the sampling deadline
    /// exactly as [`offer`](EnergyProfiler::offer) would, without
    /// recording anything. Harnesses call this when a sample is due but
    /// there is nothing meaningful to profile (e.g. the CPU is
    /// unpowered), so the cadence — and any fast path keyed on
    /// [`next_due`](EnergyProfiler::next_due) — keeps moving.
    pub fn catch_up(&mut self, at: SimTime) {
        if at >= self.next_due {
            self.next_due = at + self.period;
        }
    }

    /// Total samples kept.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The per-bucket accumulators, keyed by bucket base address.
    pub fn buckets(&self) -> &BTreeMap<u16, PcBucket> {
        &self.buckets
    }

    /// Renders the profile as the `profile.json` artifact: one row per
    /// address bucket, hottest regions identifiable by `samples`, each
    /// with its voltage statistics.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.buckets.len() * 96 + 128);
        let _ = write!(
            out,
            "{{\n  \"bucket_bytes\": {},\n  \"period_us\": {:.3},\n  \"samples\": {},\n  \"buckets\": [",
            self.bucket_bytes,
            self.period.as_ns() as f64 / 1e3,
            self.samples
        );
        for (i, (base, b)) in self.buckets.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"addr\": \"{:#06x}\", \"samples\": {}, \"v_mean\": {:.6}, \"v_min\": {:.6}, \"v_max\": {:.6}}}",
                base,
                b.samples,
                b.v_sum / b.samples as f64,
                b.v_min,
                b.v_max
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_respects_the_period() {
        let mut p = EnergyProfiler::new(SimTime::from_us(10), 64);
        let mut kept = 0;
        for k in 0..100u64 {
            if p.offer(SimTime::from_us(k), 0x4400, 2.0) {
                kept += 1;
            }
        }
        assert_eq!(kept, 10);
        assert_eq!(p.samples(), 10);
    }

    #[test]
    fn buckets_accumulate_voltage_envelope() {
        let mut p = EnergyProfiler::new(SimTime::ZERO, 64);
        p.offer(SimTime::from_us(0), 0x4400, 2.0);
        p.offer(SimTime::from_us(1), 0x443F, 2.6); // same 64-byte bucket
        p.offer(SimTime::from_us(2), 0x4440, 1.0); // next bucket
        let b = p.buckets()[&0x4400];
        assert_eq!(b.samples, 2);
        assert_eq!(b.v_min, 2.0);
        assert_eq!(b.v_max, 2.6);
        assert!((b.v_sum - 4.6).abs() < 1e-12);
        assert!(p.buckets().contains_key(&0x4440));
    }

    #[test]
    fn json_is_parseable_and_sorted() {
        let mut p = EnergyProfiler::new(SimTime::ZERO, 64);
        p.offer(SimTime::from_us(0), 0x8000, 2.0);
        p.offer(SimTime::from_us(1), 0x4400, 2.5);
        let json = p.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let buckets = v
            .get_field("buckets")
            .and_then(|b| b.as_seq())
            .expect("buckets array");
        assert_eq!(buckets.len(), 2);
        let addr0 = buckets[0]
            .get_field("addr")
            .and_then(|a| a.as_str())
            .unwrap();
        assert_eq!(addr0, "0x4400", "rows sorted by bucket address");
    }
}
