//! Counters and fixed-bucket histograms with a commutative merge.
//!
//! Every value in this registry is an unsigned integer (counts), never
//! a float accumulator: integer addition is associative and
//! commutative, so metrics merged from many [`super::Recorder`]s in
//! *any* order — e.g. as parallel experiment trials finish — produce
//! bit-identical totals at any thread count. That property is what lets
//! the bench manifest carry an observability block without giving up
//! its determinism guarantee.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of
/// the first `bounds.len()` buckets, and one overflow bucket catches
/// everything above the last edge.
///
/// # Example
///
/// ```
/// use edb_obs::Histogram;
/// let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
/// h.observe(0.5);
/// h.observe(42.0);
/// h.observe(1e6);
/// assert_eq!(h.counts(), &[1, 0, 1, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram with the given inclusive upper bucket edges.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Counts one observation into its bucket.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// The bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket edges differ — merging histograms of
    /// different shapes is always a bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }
}

/// The metrics registry a [`super::Recorder`] accumulates into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// An empty registry, constructible in `static` initializers.
    pub const fn empty() -> Self {
        Metrics {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Adds `by` to the counter `name` (created at zero on first use).
    pub fn incr(&mut self, name: &str, by: u64) {
        if by != 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Sets the counter `name` to `value` (overwriting) — for totals
    /// read off simulation state at teardown rather than accumulated.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Counts `value` into the histogram `name`, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds all of `other`'s counters and histograms into this
    /// registry. Counter and bucket addition commute, so any merge
    /// order yields the same totals.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// A serializable snapshot (what lands in the bench manifest's
    /// `obs` block).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            total: h.total,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Serializable form of a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Serializable form of one [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        for v in [0.0, 10.0, 10.1, 20.0, 99.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let build = |values: &[f64], retries: u64| {
            let mut m = Metrics::new();
            m.incr("retries", retries);
            for &v in values {
                m.observe("h", &[1.0, 2.0], v);
            }
            m
        };
        let a = build(&[0.5, 1.5], 3);
        let b = build(&[2.5], 4);
        let c = build(&[0.1, 0.2, 9.0], 5);
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
        assert_eq!(abc.counter("retries"), 12);
        assert_eq!(abc.histogram("h").unwrap().total(), 6);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut m = Metrics::new();
        m.incr("power_cycles", 7);
        m.observe("vcap", &[1.0, 2.0, 3.0], 2.4);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
