//! **edb-obs** — the energy-interference-free observability bus.
//!
//! EDB's thesis is *passive* monitoring: watch the target's program
//! events, I/O, and energy state without perturbing any of them. This
//! crate is the simulation's own application of that principle to
//! itself. Every layer of the bench (CPU, device, energy, debugger,
//! RFID) publishes structured observations into a [`Recorder`], and the
//! recorder is held to the same standard as EDB's hardware: it only
//! *reads* simulation state, never draws from any RNG, and never alters
//! event ordering — with a recorder attached, experiment outputs stay
//! bit-identical at any thread count.
//!
//! The pieces:
//!
//! * [`Recorder`] — bounded per-category ring buffers of timestamped
//!   events, gated by a [`CategoryMask`]; zero work when a category (or
//!   the whole recorder) is disabled.
//! * [`metrics`] — a registry of counters and fixed-bucket histograms
//!   whose merge is commutative, so totals aggregated across a parallel
//!   experiment run are thread-count-deterministic.
//! * [`perfetto`] / [`vcd`] — exporters: Chrome `trace_event` JSON (one
//!   track per subsystem, timestamps in simulated microseconds, open in
//!   ui.perfetto.dev) and VCD for digital lines (gtkwave & friends).
//! * [`profile`] — a sampling energy profiler: PC-histogram samples
//!   correlated with the capacitor voltage at configurable sim-time
//!   intervals, the paper's watchpoint energy profiles as an artifact.
//! * [`ambient`] — a process-global recorder configuration consulted by
//!   the bench harness, so `--obs` on an experiment binary attaches a
//!   recorder inside every `System` the experiments build.
//!
//! # Example
//!
//! ```
//! use edb_obs::{Category, Recorder, RecorderConfig};
//! use edb_energy::SimTime;
//!
//! let mut rec = Recorder::new(RecorderConfig::default());
//! rec.instant(Category::Device, SimTime::from_us(10), "turn-on");
//! rec.counter(Category::Energy, SimTime::from_us(10), "Vcap", 2.4);
//! let json = rec.perfetto_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ambient;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod vcd;

pub use edb_energy::trace::EventMark;
pub use edb_energy::SimTime;
pub use metrics::{Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use profile::EnergyProfiler;
pub use vcd::LineTrace;

use edb_energy::Trace;
use std::collections::VecDeque;

/// The subsystem an observation came from. Each category maps to one
/// track in the Perfetto export and one ring buffer in the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// The CPU: PC/opcode samples, decode-cache statistics.
    Cpu,
    /// The target device: power cycles, peripheral activity, faults.
    Device,
    /// The energy substrate: capacitor voltage, charge/discharge ops.
    Energy,
    /// EDB itself: wire-protocol commands, retries, sessions, guards.
    Core,
    /// The RFID world: reader frames, backscatter replies.
    Rfid,
}

/// Number of categories (ring buffers, Perfetto tracks).
pub const CATEGORY_COUNT: usize = 5;

impl Category {
    /// Every category, in track order.
    pub const ALL: [Category; CATEGORY_COUNT] = [
        Category::Cpu,
        Category::Device,
        Category::Energy,
        Category::Core,
        Category::Rfid,
    ];

    /// Stable lowercase name (`cpu`, `device`, ...), as accepted by
    /// [`CategoryMask::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Category::Cpu => "cpu",
            Category::Device => "device",
            Category::Energy => "energy",
            Category::Core => "core",
            Category::Rfid => "rfid",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A set of enabled [`Category`]s, stored as a bitmask.
///
/// # Example
///
/// ```
/// use edb_obs::{Category, CategoryMask};
/// let mask = CategoryMask::parse("cpu,energy").unwrap();
/// assert!(mask.contains(Category::Cpu));
/// assert!(!mask.contains(Category::Rfid));
/// assert_eq!(CategoryMask::parse("all"), Ok(CategoryMask::ALL));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryMask(u8);

impl CategoryMask {
    /// No categories enabled.
    pub const NONE: CategoryMask = CategoryMask(0);
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask((1 << CATEGORY_COUNT as u8) - 1);

    /// A mask of exactly the given categories.
    pub fn of(categories: &[Category]) -> Self {
        categories
            .iter()
            .fold(CategoryMask::NONE, |m, &c| m.with(c))
    }

    /// This mask with `category` also enabled.
    #[must_use]
    pub fn with(self, category: Category) -> Self {
        CategoryMask(self.0 | category.bit())
    }

    /// Whether `category` is enabled.
    pub fn contains(self, category: Category) -> bool {
        self.0 & category.bit() != 0
    }

    /// Whether no category is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated category list (`cpu,energy`), or the
    /// words `all` / `none`.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized word.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "all" => return Ok(CategoryMask::ALL),
            "none" | "" => return Ok(CategoryMask::NONE),
            _ => {}
        }
        let mut mask = CategoryMask::NONE;
        for word in s.split(',') {
            let word = word.trim();
            let cat = Category::ALL
                .iter()
                .find(|c| c.name() == word)
                .ok_or_else(|| format!("unknown category `{word}`"))?;
            mask = mask.with(*cat);
        }
        Ok(mask)
    }
}

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Which categories to record. Disabled categories cost nothing.
    pub categories: CategoryMask,
    /// Ring-buffer capacity per category; when full, the oldest events
    /// are dropped (and counted in [`Recorder::dropped`]).
    pub ring_capacity: usize,
    /// Decimation period of the capacitor-voltage trace.
    pub energy_period: SimTime,
    /// Sampling period of the PC/energy profiler.
    pub pc_sample_period: SimTime,
    /// Address-bucket width of the PC profile, bytes.
    pub pc_bucket_bytes: u16,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            categories: CategoryMask::ALL,
            ring_capacity: 1 << 16,
            energy_period: SimTime::from_us(500),
            pc_sample_period: SimTime::from_us(100),
            pc_bucket_bytes: 64,
        }
    }
}

impl RecorderConfig {
    /// The default configuration restricted to `categories`.
    pub fn with_categories(categories: CategoryMask) -> Self {
        RecorderConfig {
            categories,
            ..RecorderConfig::default()
        }
    }
}

/// What kind of observation an [`ObsEvent`] is — a direct mapping onto
/// the Perfetto `trace_event` phases the exporter emits.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsKind {
    /// A point event (`ph: "i"`).
    Instant {
        /// Event label.
        name: String,
    },
    /// The start of a duration slice (`ph: "B"`).
    Begin {
        /// Slice label (must match the closing [`ObsKind::End`]).
        name: String,
    },
    /// The end of a duration slice (`ph: "E"`).
    End {
        /// Slice label.
        name: String,
    },
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// Counter-track name.
        name: &'static str,
        /// The sampled value.
        value: f64,
    },
}

/// One timestamped observation in a category ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// What was observed.
    pub kind: ObsKind,
}

/// A bounded ring of events plus the count of evictions.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, capacity: usize, event: ObsEvent) {
        if self.events.len() >= capacity.max(1) {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// The structured, deterministic observation sink all layers publish
/// into.
///
/// A recorder never samples wall clocks, never draws randomness, and
/// only ever *reads* the simulation state handed to it — attaching one
/// cannot change an experiment's outcome. Publishing to a disabled
/// category is a single mask test.
#[derive(Debug)]
pub struct Recorder {
    config: RecorderConfig,
    rings: [Ring; CATEGORY_COUNT],
    /// The counters and histograms this recorder accumulates.
    pub metrics: Metrics,
    vcap: Trace,
    profiler: EnergyProfiler,
    lines: Vec<LineTrace>,
    ambient: bool,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new(config: RecorderConfig) -> Self {
        let vcap = Trace::new("Vcap", config.energy_period);
        let profiler = EnergyProfiler::new(config.pc_sample_period, config.pc_bucket_bytes);
        Recorder {
            config,
            rings: Default::default(),
            metrics: Metrics::new(),
            vcap,
            profiler,
            lines: Vec::new(),
            ambient: false,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Marks this recorder as ambient-attached: its metrics are flushed
    /// into the [`ambient`] global registry when the owning bench drops
    /// it. Explicitly-attached recorders stay private.
    pub fn mark_ambient(&mut self) {
        self.ambient = true;
    }

    /// Whether this recorder was attached by the [`ambient`] mechanism.
    pub fn is_ambient(&self) -> bool {
        self.ambient
    }

    /// Whether `category` is being recorded.
    #[inline]
    pub fn enabled(&self, category: Category) -> bool {
        self.config.categories.contains(category)
    }

    /// Records a point event.
    pub fn instant(&mut self, category: Category, at: SimTime, name: impl Into<String>) {
        if self.enabled(category) {
            let event = ObsEvent {
                at,
                kind: ObsKind::Instant { name: name.into() },
            };
            self.rings[category.index()].push(self.config.ring_capacity, event);
        }
    }

    /// Opens a duration slice.
    pub fn begin(&mut self, category: Category, at: SimTime, name: impl Into<String>) {
        if self.enabled(category) {
            let event = ObsEvent {
                at,
                kind: ObsKind::Begin { name: name.into() },
            };
            self.rings[category.index()].push(self.config.ring_capacity, event);
        }
    }

    /// Closes a duration slice.
    pub fn end(&mut self, category: Category, at: SimTime, name: impl Into<String>) {
        if self.enabled(category) {
            let event = ObsEvent {
                at,
                kind: ObsKind::End { name: name.into() },
            };
            self.rings[category.index()].push(self.config.ring_capacity, event);
        }
    }

    /// Records a counter sample.
    pub fn counter(&mut self, category: Category, at: SimTime, name: &'static str, value: f64) {
        if self.enabled(category) {
            let event = ObsEvent {
                at,
                kind: ObsKind::Counter { name, value },
            };
            self.rings[category.index()].push(self.config.ring_capacity, event);
        }
    }

    /// Offers a capacitor-voltage sample to the decimating energy trace.
    /// No-op unless [`Category::Energy`] is enabled.
    #[inline]
    pub fn energy_sample(&mut self, at: SimTime, v_cap: f64) {
        if self.enabled(Category::Energy) {
            self.vcap.record(at, v_cap);
        }
    }

    /// Places a labeled mark on the energy trace (exported to CSV and
    /// as a Core instant).
    pub fn energy_mark(&mut self, at: SimTime, label: impl Into<String>) {
        if self.enabled(Category::Energy) {
            self.vcap.mark(at, label);
        }
    }

    /// Offers a PC/energy sample to the profiler; the profiler keeps it
    /// only if its sampling period has elapsed. No-op unless
    /// [`Category::Cpu`] is enabled. Returns whether the sample was
    /// kept, so callers can attach further sampled observations (e.g.
    /// histograms) at exactly the profiler's cadence.
    #[inline]
    pub fn pc_sample(&mut self, at: SimTime, pc: u16, v_cap: f64) -> bool {
        self.enabled(Category::Cpu) && self.profiler.offer(at, pc, v_cap)
    }

    /// The earliest simulation time at which this recorder wants to be
    /// offered another sample — the span batcher caps its deadline here
    /// so the profiler sees boundaries at its configured resolution.
    /// (Extra span breaks are bit-identity-safe by the `run_span`
    /// contract.) `None` when nothing is sampling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.enabled(Category::Cpu) {
            Some(self.profiler.next_due())
        } else {
            None
        }
    }

    /// Whether any periodic sampler (PC profiler, Vcap trace) wants a
    /// sample at `at`. The publish fast path skips all observation work
    /// on steps where nothing is due and nothing changed.
    #[inline]
    pub fn sample_due(&self, at: SimTime) -> bool {
        (self.enabled(Category::Cpu) && at >= self.profiler.next_due())
            || (self.enabled(Category::Energy) && self.vcap.store_due(at))
    }

    /// Advances the PC profiler's deadline past `at` without recording —
    /// called when a sample is due but the CPU is unpowered, so the
    /// sampling cadence keeps moving and the fast path re-arms.
    #[inline]
    pub fn profiler_catch_up(&mut self, at: SimTime) {
        if self.enabled(Category::Cpu) {
            self.profiler.catch_up(at);
        }
    }

    /// A named digital line for the VCD export, created on first use.
    /// `width` is the bit width (1 for a wire, 16 for a bus).
    pub fn line_mut(&mut self, name: &'static str, width: u16) -> &mut LineTrace {
        if let Some(i) = self.lines.iter().position(|l| l.name() == name) {
            return &mut self.lines[i];
        }
        self.lines.push(LineTrace::new(name, width));
        self.lines.last_mut().expect("just pushed")
    }

    /// The recorded digital lines, in creation order.
    pub fn lines(&self) -> &[LineTrace] {
        &self.lines
    }

    /// The decimated capacitor-voltage trace.
    pub fn vcap(&self) -> &Trace {
        &self.vcap
    }

    /// The PC/energy profiler.
    pub fn profiler(&self) -> &EnergyProfiler {
        &self.profiler
    }

    /// Events recorded under `category`, oldest first.
    pub fn events(&self, category: Category) -> impl Iterator<Item = &ObsEvent> {
        self.rings[category.index()].events.iter()
    }

    /// How many events were evicted from `category`'s ring.
    pub fn dropped(&self, category: Category) -> u64 {
        self.rings[category.index()].dropped
    }

    /// The Perfetto/Chrome `trace_event` JSON export (open the file in
    /// ui.perfetto.dev).
    pub fn perfetto_json(&self) -> String {
        perfetto::export(self)
    }

    /// The VCD export of the recorded digital lines.
    pub fn vcd(&self) -> String {
        vcd::export(self.lines())
    }

    /// The PC/energy profile as a `profile.json` artifact.
    pub fn profile_json(&self) -> String {
        self.profiler.to_json()
    }

    /// The energy trace as CSV (the pre-existing exporter, kept for
    /// spreadsheet workflows).
    pub fn vcap_csv(&self) -> String {
        self.vcap.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parses_lists_and_keywords() {
        assert_eq!(CategoryMask::parse("all"), Ok(CategoryMask::ALL));
        assert_eq!(CategoryMask::parse("none"), Ok(CategoryMask::NONE));
        let m = CategoryMask::parse("cpu, rfid").unwrap();
        assert!(m.contains(Category::Cpu));
        assert!(m.contains(Category::Rfid));
        assert!(!m.contains(Category::Energy));
        assert!(CategoryMask::parse("bogus").is_err());
        assert_eq!(
            CategoryMask::of(&[Category::Cpu, Category::Rfid]),
            m,
            "of() and parse() agree"
        );
    }

    #[test]
    fn disabled_categories_record_nothing() {
        let mut rec = Recorder::new(RecorderConfig::with_categories(CategoryMask::of(&[
            Category::Device,
        ])));
        rec.instant(Category::Cpu, SimTime::ZERO, "dropped");
        rec.instant(Category::Device, SimTime::ZERO, "kept");
        rec.energy_sample(SimTime::ZERO, 2.0); // Energy disabled
        assert_eq!(rec.events(Category::Cpu).count(), 0);
        assert_eq!(rec.events(Category::Device).count(), 1);
        assert!(rec.vcap().is_empty());
        assert_eq!(rec.next_deadline(), None, "no Cpu sampling deadline");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let config = RecorderConfig {
            ring_capacity: 4,
            ..RecorderConfig::default()
        };
        let mut rec = Recorder::new(config);
        for k in 0..10u64 {
            rec.instant(Category::Core, SimTime::from_us(k), format!("e{k}"));
        }
        let names: Vec<_> = rec
            .events(Category::Core)
            .map(|e| match &e.kind {
                ObsKind::Instant { name } => name.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
        assert_eq!(rec.dropped(Category::Core), 6);
    }

    #[test]
    fn line_mut_reuses_by_name() {
        let mut rec = Recorder::new(RecorderConfig::default());
        rec.line_mut("powered", 1).record(SimTime::ZERO, 0);
        rec.line_mut("powered", 1).record(SimTime::from_us(5), 1);
        assert_eq!(rec.lines().len(), 1);
        assert_eq!(rec.lines()[0].changes().len(), 2);
    }
}
