//! Property-based tests for the electrical substrate.

use edb_energy::{
    Capacitor, Cdf, ConstantCurrent, Harvester, PowerEdge, SimTime, Summary, Supervisor,
    TheveninSource, Trace,
};
use proptest::prelude::*;

proptest! {
    /// The capacitor voltage is always within `[0, v_max]` no matter what
    /// current sequence is applied.
    #[test]
    fn capacitor_voltage_stays_bounded(
        currents in prop::collection::vec(-0.5f64..0.5, 1..200),
        v0 in 0.0f64..5.5,
    ) {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(v0);
        for i in currents {
            cap.apply_current(i, 1e-4);
            prop_assert!(cap.voltage() >= 0.0);
            prop_assert!(cap.voltage() <= cap.v_max());
        }
    }

    /// Stored energy is consistent with the closed form at all times.
    #[test]
    fn capacitor_energy_matches_voltage(v in 0.0f64..5.5) {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(v);
        let expected = 0.5 * 47e-6 * v * v;
        prop_assert!((cap.energy() - expected).abs() < 1e-12);
    }

    /// An RC charge from a Thévenin source follows the analytic exponential
    /// to within integration error.
    #[test]
    fn thevenin_charge_matches_analytic(
        v_oc in 2.5f64..5.0,
        r in 500.0f64..5000.0,
    ) {
        let c = 47e-6;
        let mut cap = Capacitor::with_clamp(c, 10.0);
        let mut src = TheveninSource::new(v_oc, r);
        let dt = 1e-6;
        let t_total = 0.05;
        let steps = (t_total / dt) as u64;
        let mut t = SimTime::ZERO;
        for _ in 0..steps {
            let i = src.current_into(cap.voltage(), t, dt);
            cap.apply_current(i, dt);
            t = t.advance_secs(dt);
        }
        let analytic = v_oc * (1.0 - (-t_total / (r * c)).exp());
        prop_assert!(
            (cap.voltage() - analytic).abs() < 0.01 * v_oc,
            "simulated {} vs analytic {}",
            cap.voltage(),
            analytic
        );
    }

    /// The supervisor emits alternating edges: never two turn-ons or two
    /// brown-outs in a row, regardless of the voltage sequence.
    #[test]
    fn supervisor_edges_alternate(voltages in prop::collection::vec(0.0f64..3.0, 1..500)) {
        let mut sup = Supervisor::wisp5();
        let mut last: Option<PowerEdge> = None;
        for v in voltages {
            if let Some(e) = sup.update(v) {
                if let Some(prev) = last {
                    prop_assert_ne!(prev, e, "edges must alternate");
                }
                last = Some(e);
            }
        }
    }

    /// A constant-current charge is linear in time: doubling the duration
    /// doubles the voltage rise (below the clamp).
    #[test]
    fn constant_current_charge_is_linear(i in 1e-5f64..1e-3) {
        let mut cap1 = Capacitor::new(47e-6);
        let mut cap2 = Capacitor::new(47e-6);
        let mut src = ConstantCurrent::new(i);
        let dt = 1e-5;
        for k in 0..100 {
            let cur = src.current_into(cap1.voltage(), SimTime::ZERO, dt);
            cap1.apply_current(cur, dt);
            if k < 50 {
                cap2.apply_current(cur, dt);
            }
        }
        if cap1.voltage() < cap1.v_max() {
            prop_assert!((cap1.voltage() - 2.0 * cap2.voltage()).abs() < 1e-9);
        }
    }

    /// Trace decimation never loses the set extrema beyond the envelope:
    /// min/max of the stored samples bracket within the raw range.
    #[test]
    fn trace_extrema_within_raw_range(values in prop::collection::vec(-10.0f64..10.0, 2..300)) {
        let mut tr = Trace::new("x", SimTime::from_us(3));
        let raw_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let raw_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (k, v) in values.iter().enumerate() {
            tr.record(SimTime::from_us(k as u64), *v);
        }
        prop_assert!(tr.min().unwrap() >= raw_min - 1e-12);
        prop_assert!(tr.max().unwrap() <= raw_max + 1e-12);
    }

    /// The envelope preserves the *exact* extrema of everything ever
    /// offered — decimation period, offer cadence, and a pending tail
    /// after the last stored sample notwithstanding.
    #[test]
    fn trace_envelope_preserves_exact_extrema(
        values in prop::collection::vec(-10.0f64..10.0, 1..300),
        period_us in 1u64..20,
        stride_us in 1u64..7,
    ) {
        let mut tr = Trace::new("x", SimTime::from_us(period_us));
        let raw_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let raw_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (k, v) in values.iter().enumerate() {
            tr.record(SimTime::from_us(k as u64 * stride_us), *v);
        }
        prop_assert_eq!(tr.envelope_min().unwrap(), raw_min);
        prop_assert_eq!(tr.envelope_max().unwrap(), raw_max);
        prop_assert_eq!(tr.envelope().len(), tr.samples().len());
        // Every stored sample lies within its own envelope row.
        for (&(_, v), &(lo, hi)) in tr.samples().iter().zip(tr.envelope()) {
            prop_assert!(lo <= v && v <= hi);
        }
    }

    /// CDF: probability_at is monotone and reaches 1 at the max sample.
    #[test]
    fn cdf_monotone_and_complete(samples in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::of(samples);
        let mut prev = 0.0;
        for k in -10..=10 {
            let p = cdf.probability_at(k as f64 * 100.0);
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
        prop_assert_eq!(cdf.probability_at(max), 1.0);
    }

    /// Summary: mean lies within [min, max]; sd is non-negative.
    #[test]
    fn summary_invariants(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&samples);
        prop_assert!(s.mean >= s.min - 1e-6);
        prop_assert!(s.mean <= s.max + 1e-6);
        prop_assert!(s.std_dev >= 0.0);
    }
}
