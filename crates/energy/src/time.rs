//! Simulation time, kept as integer nanoseconds.
//!
//! Using an integer base unit keeps long simulations free of floating-point
//! drift; conversions to seconds happen only at the electrical-integration
//! boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since power-up of the
/// test bench.
///
/// `SimTime` is a monotonically non-decreasing counter owned by the
/// simulation harness; components receive it read-only so that their
/// behaviour can depend on wall-clock-like time (harvest profiles, UART
/// baud intervals) without owning a clock themselves.
///
/// # Example
///
/// ```
/// use edb_energy::SimTime;
/// let t = SimTime::from_ms(2).advance_ns(500);
/// assert_eq!(t.as_ns(), 2_000_500);
/// assert!(t > SimTime::from_us(1999));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time expressed in (floating-point) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Time expressed in (floating-point) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Returns this instant advanced by `ns` nanoseconds.
    #[must_use]
    pub const fn advance_ns(self, ns: u64) -> Self {
        SimTime(self.0 + ns)
    }

    /// Returns this instant advanced by a floating-point number of seconds
    /// (rounded to the nearest nanosecond).
    #[must_use]
    pub fn advance_secs(self, secs: f64) -> Self {
        SimTime(self.0 + (secs * 1e9).round() as u64)
    }

    /// The elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimTime::from_us(7).as_ns(), 7_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn advance_and_since() {
        let a = SimTime::from_us(10);
        let b = a.advance_ns(250);
        assert_eq!(b.since(a).as_ns(), 250);
        assert_eq!(a.since(b), SimTime::ZERO);
    }

    #[test]
    fn advance_secs_rounds_to_ns() {
        let t = SimTime::ZERO.advance_secs(250e-9);
        assert_eq!(t.as_ns(), 250);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ms(1);
        let b = SimTime::from_ms(2);
        assert!(a < b);
        assert_eq!((b - a).as_ns(), 1_000_000);
        assert_eq!((a + b).as_ns(), 3_000_000);
    }

    #[test]
    fn display_picks_readable_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }
}
