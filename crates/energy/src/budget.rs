//! Canonical energy-budget arithmetic for the WISP5-class target.
//!
//! The paper denominates every energy cost in fractions of the target's
//! storage capacitor between its operating thresholds, and several
//! crates need the same three numbers (47 µF, 2.4 V turn-on, 1.8 V
//! brown-out) plus the `½·C·V²` arithmetic around them. This module is
//! the single home for both; `edb-device`'s WISP5 config, the
//! supervisor's WISP5 preset, and the bench harness all delegate here
//! so the constants cannot drift apart.

/// WISP5 storage capacitance, farads (47 µF).
pub const WISP5_CAPACITANCE: f64 = 47e-6;

/// WISP5 turn-on threshold, volts (the supervisor releases reset here).
pub const WISP5_V_ON: f64 = 2.4;

/// WISP5 brown-out threshold, volts (execution dies below this).
pub const WISP5_V_OFF: f64 = 1.8;

/// Energy stored on a capacitor at a given voltage: `½·C·V²`, joules.
pub fn stored_energy(capacitance: f64, v: f64) -> f64 {
    0.5 * capacitance * v * v
}

/// Energy released moving a capacitor from `v_a` down to `v_b`, joules
/// (negative when charging up).
pub fn delta_energy(capacitance: f64, v_a: f64, v_b: f64) -> f64 {
    stored_energy(capacitance, v_a) - stored_energy(capacitance, v_b)
}

/// The paper's cost denominator: energy stored at the WISP5 turn-on
/// voltage, joules (`½ · 47 µF · (2.4 V)²` ≈ 135.4 µJ).
pub fn e_max() -> f64 {
    stored_energy(WISP5_CAPACITANCE, WISP5_V_ON)
}

/// Energy between two WISP5 capacitor voltages as a percentage of
/// [`e_max`].
pub fn delta_e_percent(v_a: f64, v_b: f64) -> f64 {
    delta_energy(WISP5_CAPACITANCE, v_a, v_b) / e_max() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_max_matches_paper_figure() {
        // ½ · 47e-6 · 2.4² = 135.36 µJ.
        assert!((e_max() - 135.36e-6).abs() < 1e-9);
    }

    #[test]
    fn delta_energy_signs_and_full_store() {
        assert!((delta_e_percent(WISP5_V_ON, 0.0) - 100.0).abs() < 1e-9);
        assert!(delta_e_percent(2.3, 2.4) < 0.0);
        assert!(delta_energy(WISP5_CAPACITANCE, 2.4, 1.8) > 0.0);
        assert_eq!(
            delta_energy(WISP5_CAPACITANCE, 2.0, 2.0),
            0.0,
            "no voltage change, no energy"
        );
    }
}
