//! Ambient energy sources.
//!
//! A [`Harvester`] answers one question every integration step: *how much
//! current flows into the storage capacitor right now?* All of the paper's
//! qualitative behaviour — the sawtooth of Figure 2B, charge times that
//! grow with reader distance, executions that stall mid-instruction —
//! falls out of this interface combined with the per-cycle load model.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of harvested energy.
///
/// Implementations receive the present capacitor voltage (real harvesting
/// front-ends deliver less current into a higher-voltage store), the
/// simulation time, and the integration step.
///
/// `Send` is a supertrait so a bench (and the session hosting it) can
/// move between threads — the `edb-serve` session server hosts many
/// benches behind one worker pool.
pub trait Harvester: Send {
    /// Current (amps, ≥ 0) delivered into the storage capacitor during the
    /// next `dt` seconds, given the capacitor sits at `v_cap` volts.
    fn current_into(&mut self, v_cap: f64, now: SimTime, dt: f64) -> f64;

    /// Snapshot of the harvester's evolving state (RNG streams, fading
    /// factors, trace cursors) for the record/replay layer. Sources whose
    /// output is a pure function of `(v_cap, now)` have nothing to save
    /// and keep the default [`serde::Value::Null`].
    fn save_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores a snapshot produced by [`Harvester::save_state`] on a
    /// harvester constructed with the same parameters. After a
    /// round-trip the current stream must continue bit-identically —
    /// replay correctness rests on this.
    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        let _ = state;
        Ok(())
    }
}

impl<H: Harvester + ?Sized> Harvester for Box<H> {
    fn current_into(&mut self, v_cap: f64, now: SimTime, dt: f64) -> f64 {
        (**self).current_into(v_cap, now, dt)
    }

    fn save_state(&self) -> serde::Value {
        (**self).save_state()
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        (**self).load_state(state)
    }
}

/// A fixed charging current, useful in unit tests and for idealized
/// experiments.
///
/// # Example
///
/// ```
/// use edb_energy::{ConstantCurrent, Harvester, SimTime};
/// let mut h = ConstantCurrent::new(1e-3);
/// assert_eq!(h.current_into(2.0, SimTime::ZERO, 1e-6), 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantCurrent {
    amps: f64,
}

impl ConstantCurrent {
    /// Creates a source that always delivers `amps`.
    pub fn new(amps: f64) -> Self {
        ConstantCurrent {
            amps: amps.max(0.0),
        }
    }
}

impl Harvester for ConstantCurrent {
    fn current_into(&mut self, _v_cap: f64, _now: SimTime, _dt: f64) -> f64 {
        self.amps
    }
}

/// A Thévenin-equivalent ambient source: open-circuit voltage `v_oc`
/// behind a (large) source resistance `r_src`.
///
/// This is the model the paper sketches in Figure 2A — "the ambient energy
/// source has a high source resistance that limits its usable power,
/// resulting in the characteristic 'sawtooth' RC charging behavior". The
/// delivered current is `max(0, (v_oc − v_cap) / r_src)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheveninSource {
    v_oc: f64,
    r_src: f64,
}

impl TheveninSource {
    /// Creates a source with open-circuit voltage `v_oc` (volts) and source
    /// resistance `r_src` (ohms).
    ///
    /// # Panics
    ///
    /// Panics if `r_src` is not strictly positive.
    pub fn new(v_oc: f64, r_src: f64) -> Self {
        assert!(r_src > 0.0, "source resistance must be positive");
        TheveninSource { v_oc, r_src }
    }

    /// Open-circuit voltage in volts.
    pub fn v_oc(&self) -> f64 {
        self.v_oc
    }

    /// Source resistance in ohms.
    pub fn r_src(&self) -> f64 {
        self.r_src
    }
}

impl Harvester for TheveninSource {
    fn current_into(&mut self, v_cap: f64, _now: SimTime, _dt: f64) -> f64 {
        ((self.v_oc - v_cap) / self.r_src).max(0.0)
    }
}

/// An RF energy field produced by an RFID reader, as harvested by a
/// WISP-class tag.
///
/// The field behaves as a [`TheveninSource`] whose strength depends on
/// distance (far-field power density falls as `d⁻²`, so the rectified
/// open-circuit voltage falls roughly as `d⁻¹`) and on whether the reader
/// carrier is currently on. The reader model in `edb-rfid` drives
/// [`RfField::set_carrier`] as it transmits; command modulation (brief ASK
/// dips) is modeled as a small duty-cycle derating rather than per-bit
/// carrier gaps, which keeps the integrator step independent of the RF
/// symbol rate.
///
/// Calibration: at the reference distance of 1 m (the paper's setup) the
/// defaults deliver ~0.5–0.9 mA into a capacitor sitting between 1.8 V and
/// 2.4 V — enough to charge 47 µF through that window in some tens of
/// milliseconds, matching the cadence on the paper's Figure 7/9 time axes.
#[derive(Debug, Clone, PartialEq)]
pub struct RfField {
    /// Rectifier open-circuit voltage at the reference distance, volts.
    v_oc_ref: f64,
    /// Source resistance of the rectifier + matching network, ohms.
    r_src: f64,
    /// Reference distance for `v_oc_ref`, meters.
    d_ref: f64,
    /// Present tag-to-antenna distance, meters.
    distance: f64,
    /// Whether the reader carrier is radiating.
    carrier_on: bool,
    /// Fraction of carrier power retained while the reader modulates
    /// commands (ASK dips remove a little energy).
    modulation_derate: f64,
    /// Whether the reader is currently modulating a command.
    modulating: bool,
}

impl RfField {
    /// The paper's physical setup: reader antenna at 1 m from the tag,
    /// 30 dBm transmit power, carrier initially on.
    pub fn paper_setup() -> Self {
        RfField {
            v_oc_ref: 3.2,
            r_src: 1500.0,
            d_ref: 1.0,
            distance: 1.0,
            carrier_on: true,
            modulation_derate: 0.9,
            modulating: false,
        }
    }

    /// Creates a field with explicit electrical parameters at `d_ref`.
    ///
    /// # Panics
    ///
    /// Panics if `r_src`, `d_ref` is not strictly positive.
    pub fn new(v_oc_ref: f64, r_src: f64, d_ref: f64) -> Self {
        assert!(r_src > 0.0, "source resistance must be positive");
        assert!(d_ref > 0.0, "reference distance must be positive");
        RfField {
            v_oc_ref,
            r_src,
            d_ref,
            distance: d_ref,
            carrier_on: true,
            modulation_derate: 0.9,
            modulating: false,
        }
    }

    /// Moves the tag to `meters` from the reader antenna.
    ///
    /// "The amount of harvestable energy is inversely proportional to this
    /// distance" (§5.1): open-circuit voltage scales as `d_ref / d`.
    ///
    /// # Panics
    ///
    /// Panics if `meters` is not strictly positive.
    pub fn set_distance(&mut self, meters: f64) {
        assert!(meters > 0.0, "distance must be positive");
        self.distance = meters;
    }

    /// Present tag-to-antenna distance in meters.
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// Turns the reader carrier on or off (driven by the reader model).
    pub fn set_carrier(&mut self, on: bool) {
        self.carrier_on = on;
    }

    /// Whether the carrier is radiating.
    pub fn carrier_on(&self) -> bool {
        self.carrier_on
    }

    /// Marks the reader as presently modulating a command (slightly less
    /// average power at the tag).
    pub fn set_modulating(&mut self, on: bool) {
        self.modulating = on;
    }

    /// Effective open-circuit voltage at the present distance.
    pub fn v_oc(&self) -> f64 {
        let v = self.v_oc_ref * self.d_ref / self.distance;
        if self.modulating {
            v * self.modulation_derate
        } else {
            v
        }
    }

    /// Open-circuit voltage the field would deliver to a tag at
    /// `meters`, independent of the field's own tag position — how a
    /// fleet evaluates one shared carrier at N distances without
    /// cloning the field per tag (modulation derate not applied; fleet
    /// slot timing absorbs it).
    ///
    /// # Panics
    ///
    /// Panics if `meters` is not strictly positive.
    pub fn v_oc_at(&self, meters: f64) -> f64 {
        assert!(meters > 0.0, "distance must be positive");
        self.v_oc_ref * self.d_ref / meters
    }

    /// Source resistance of the rectifier + matching network, ohms —
    /// with the capacitance this sets the charging time constant the
    /// analytic fleet path uses.
    pub fn r_src(&self) -> f64 {
        self.r_src
    }
}

impl Harvester for RfField {
    fn current_into(&mut self, v_cap: f64, _now: SimTime, _dt: f64) -> f64 {
        if !self.carrier_on {
            return 0.0;
        }
        ((self.v_oc() - v_cap) / self.r_src).max(0.0)
    }

    fn save_state(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("distance".into()),
                serde::Value::F64(self.distance),
            ),
            (
                serde::Value::Str("carrier_on".into()),
                serde::Value::Bool(self.carrier_on),
            ),
            (
                serde::Value::Str("modulating".into()),
                serde::Value::Bool(self.modulating),
            ),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        let field = |name| {
            state
                .get_field(name)
                .ok_or_else(|| serde::DeError::new(format!("RfField state missing `{name}`")))
        };
        self.distance = serde::Deserialize::from_value(field("distance")?)?;
        self.carrier_on = serde::Deserialize::from_value(field("carrier_on")?)?;
        self.modulating = serde::Deserialize::from_value(field("modulating")?)?;
        Ok(())
    }
}

/// A slowly varying solar/indoor-light source with stochastic cloud or
/// occlusion events.
///
/// Modeled as a Thévenin source whose open-circuit voltage follows a slow
/// sinusoid scaled by a random occlusion factor that changes on a Poisson
/// schedule. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct SolarHarvester {
    v_oc_peak: f64,
    r_src: f64,
    period_s: f64,
    occlusion: f64,
    next_occlusion_change: SimTime,
    rng: StdRng,
}

impl SolarHarvester {
    /// Creates a solar source peaking at `v_oc_peak` volts behind `r_src`
    /// ohms, completing one brightness cycle every `period_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `r_src` or `period_s` is not strictly positive.
    pub fn new(v_oc_peak: f64, r_src: f64, period_s: f64, seed: u64) -> Self {
        assert!(r_src > 0.0, "source resistance must be positive");
        assert!(period_s > 0.0, "period must be positive");
        SolarHarvester {
            v_oc_peak,
            r_src,
            period_s,
            occlusion: 1.0,
            next_occlusion_change: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Harvester for SolarHarvester {
    fn current_into(&mut self, v_cap: f64, now: SimTime, _dt: f64) -> f64 {
        if now >= self.next_occlusion_change {
            // New occlusion factor in [0.3, 1.0]; next change 50–500 ms out.
            self.occlusion = self.rng.gen_range(0.3..=1.0);
            let hold_ms = self.rng.gen_range(50u64..500);
            self.next_occlusion_change = now.advance_ns(hold_ms * 1_000_000);
        }
        let phase = (now.as_secs_f64() / self.period_s) * std::f64::consts::TAU;
        let brightness = 0.5 * (1.0 + phase.sin());
        let v_oc = self.v_oc_peak * brightness * self.occlusion;
        ((v_oc - v_cap) / self.r_src).max(0.0)
    }

    fn save_state(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("occlusion".into()),
                serde::Value::F64(self.occlusion),
            ),
            (
                serde::Value::Str("next_occlusion_change".into()),
                serde::Serialize::to_value(&self.next_occlusion_change),
            ),
            (
                serde::Value::Str("rng".into()),
                serde::Serialize::to_value(&self.rng),
            ),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        let field = |name| {
            state.get_field(name).ok_or_else(|| {
                serde::DeError::new(format!("SolarHarvester state missing `{name}`"))
            })
        };
        self.occlusion = serde::Deserialize::from_value(field("occlusion")?)?;
        self.next_occlusion_change =
            serde::Deserialize::from_value(field("next_occlusion_change")?)?;
        self.rng = serde::Deserialize::from_value(field("rng")?)?;
        Ok(())
    }
}

/// Multiplicative slow fading around an inner harvester.
///
/// Real ambient sources are never as clean as a Thévenin equivalent: RF
/// channels fade, people walk past antennas, light flickers. `Fading`
/// scales the inner source's current by a log-normal random walk updated
/// every millisecond (clamped to `[0.5, 1.5]`), deterministic per seed.
/// Besides realism, the fading decorrelates charge-cycle phase from
/// program phase — without it, a deterministic source can phase-lock
/// with a program loop and systematically miss (or hit) a narrow
/// vulnerability window like the paper's Figure 6 append race.
///
/// # Example
///
/// ```
/// use edb_energy::{Fading, TheveninSource, Harvester, SimTime};
/// let mut h = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 7);
/// let i = h.current_into(2.0, SimTime::from_ms(3), 1e-6);
/// assert!(i > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Fading<H> {
    inner: H,
    factor: f64,
    sigma: f64,
    next_update: SimTime,
    rng: StdRng,
}

impl<H> Fading<H> {
    /// Wraps `inner` with fading of per-millisecond log-sigma `sigma`.
    pub fn new(inner: H, sigma: f64, seed: u64) -> Self {
        Fading {
            inner,
            factor: 1.0,
            sigma,
            next_update: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The present fading factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<H: Harvester> Harvester for Fading<H> {
    fn current_into(&mut self, v_cap: f64, now: SimTime, dt: f64) -> f64 {
        if now >= self.next_update {
            self.next_update = now.advance_ns(1_000_000);
            let u1: f64 = self.rng.gen_range(1e-12..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.factor = (self.factor * (z * self.sigma).exp()).clamp(0.5, 1.5);
        }
        self.inner.current_into(v_cap, now, dt) * self.factor
    }

    fn save_state(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("factor".into()),
                serde::Value::F64(self.factor),
            ),
            (
                serde::Value::Str("next_update".into()),
                serde::Serialize::to_value(&self.next_update),
            ),
            (
                serde::Value::Str("rng".into()),
                serde::Serialize::to_value(&self.rng),
            ),
            (serde::Value::Str("inner".into()), self.inner.save_state()),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        let field = |name| {
            state
                .get_field(name)
                .ok_or_else(|| serde::DeError::new(format!("Fading state missing `{name}`")))
        };
        self.factor = serde::Deserialize::from_value(field("factor")?)?;
        self.next_update = serde::Deserialize::from_value(field("next_update")?)?;
        self.rng = serde::Deserialize::from_value(field("rng")?)?;
        self.inner.load_state(field("inner")?)
    }
}

/// Deterministic on/off gating around an inner harvester: the source
/// delivers for `on` out of every `on + off` of simulated time,
/// starting on.
///
/// Unlike [`Fading`] this needs no RNG, so two independently
/// constructed instances with the same parameters produce *bit-equal*
/// current streams — the property differential tests (per-quantum vs.
/// batched integration, cached vs. cold decode) rely on when they run
/// paired devices through repeated, cleanly phased power failures.
///
/// # Example
///
/// ```
/// use edb_energy::{PulsedSource, TheveninSource, Harvester, SimTime};
/// let mut h = PulsedSource::new(
///     TheveninSource::new(3.2, 1500.0),
///     SimTime::from_ms(20),
///     SimTime::from_ms(30),
/// );
/// assert!(h.current_into(2.0, SimTime::from_ms(5), 1e-6) > 0.0);   // on
/// assert_eq!(h.current_into(2.0, SimTime::from_ms(25), 1e-6), 0.0); // off
/// assert!(h.current_into(2.0, SimTime::from_ms(51), 1e-6) > 0.0);  // on again
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulsedSource<H> {
    inner: H,
    on_ns: u64,
    period_ns: u64,
}

impl<H> PulsedSource<H> {
    /// Gates `inner` on for `on`, then off for `off`, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `on` is zero (the source would never deliver).
    pub fn new(inner: H, on: SimTime, off: SimTime) -> Self {
        assert!(on > SimTime::ZERO, "on window must be non-empty");
        PulsedSource {
            inner,
            on_ns: on.as_ns(),
            period_ns: on.as_ns() + off.as_ns(),
        }
    }
}

impl<H: Harvester> Harvester for PulsedSource<H> {
    fn current_into(&mut self, v_cap: f64, now: SimTime, dt: f64) -> f64 {
        if now.as_ns() % self.period_ns < self.on_ns {
            self.inner.current_into(v_cap, now, dt)
        } else {
            0.0
        }
    }

    fn save_state(&self) -> serde::Value {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        self.inner.load_state(state)
    }
}

/// Playback of a recorded harvesting trace, in the spirit of Ekho
/// (Hester et al., SenSys 2014): a sequence of `(time, v_oc)` samples
/// replayed with step interpolation behind a fixed source resistance.
///
/// # Example
///
/// ```
/// use edb_energy::{TraceHarvester, Harvester, SimTime};
/// let h = TraceHarvester::new(vec![
///     (SimTime::ZERO, 3.0),
///     (SimTime::from_ms(10), 0.0),   // reader turns off at 10 ms
///     (SimTime::from_ms(30), 3.0),
/// ], 1500.0);
/// let mut h = h;
/// assert!(h.current_into(2.0, SimTime::from_ms(5), 1e-6) > 0.0);
/// assert_eq!(h.current_into(2.0, SimTime::from_ms(15), 1e-6), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHarvester {
    samples: Vec<(SimTime, f64)>,
    r_src: f64,
    cursor: usize,
    looped: bool,
}

impl TraceHarvester {
    /// Creates a playback source. `samples` must be sorted by time; the
    /// last sample's `v_oc` holds forever (or the trace loops, see
    /// [`TraceHarvester::looping`]).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, not sorted by time, or `r_src` is not
    /// strictly positive.
    pub fn new(samples: Vec<(SimTime, f64)>, r_src: f64) -> Self {
        assert!(!samples.is_empty(), "trace must contain samples");
        assert!(r_src > 0.0, "source resistance must be positive");
        assert!(
            samples.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace samples must be sorted by time"
        );
        TraceHarvester {
            samples,
            r_src,
            cursor: 0,
            looped: false,
        }
    }

    /// Makes the trace repeat from the beginning after its last sample.
    #[must_use]
    pub fn looping(mut self) -> Self {
        self.looped = true;
        self
    }

    fn v_oc_at(&mut self, now: SimTime) -> f64 {
        let span = self.samples.last().expect("non-empty").0;
        let t = if self.looped && span > SimTime::ZERO {
            SimTime::from_ns(now.as_ns() % (span.as_ns() + 1))
        } else {
            now
        };
        if t < self.samples[self.cursor].0 {
            self.cursor = 0; // time wrapped (looping) — rescan
        }
        while self.cursor + 1 < self.samples.len() && self.samples[self.cursor + 1].0 <= t {
            self.cursor += 1;
        }
        self.samples[self.cursor].1
    }
}

impl Harvester for TraceHarvester {
    fn current_into(&mut self, v_cap: f64, now: SimTime, _dt: f64) -> f64 {
        let v_oc = self.v_oc_at(now);
        ((v_oc - v_cap) / self.r_src).max(0.0)
    }

    // The cursor is a pure cache over `now` (v_oc_at rescans when time
    // runs backwards), but saving it keeps the replayed scan cost — and
    // hence nothing observable — identical to the recorded run.
    fn save_state(&self) -> serde::Value {
        serde::Value::U64(self.cursor as u64)
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::DeError> {
        let cursor: u64 = serde::Deserialize::from_value(state)?;
        if cursor as usize >= self.samples.len() {
            return Err(serde::DeError::new("TraceHarvester cursor out of range"));
        }
        self.cursor = cursor as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thevenin_current_drops_with_voltage() {
        let mut h = TheveninSource::new(3.0, 1000.0);
        let i_low = h.current_into(1.0, SimTime::ZERO, 1e-6);
        let i_high = h.current_into(2.5, SimTime::ZERO, 1e-6);
        assert!(i_low > i_high);
        assert!((i_low - 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn thevenin_never_reverses() {
        let mut h = TheveninSource::new(3.0, 1000.0);
        assert_eq!(h.current_into(3.5, SimTime::ZERO, 1e-6), 0.0);
    }

    #[test]
    fn rf_field_scales_with_distance() {
        let mut f = RfField::paper_setup();
        let i_1m = f.current_into(2.0, SimTime::ZERO, 1e-6);
        f.set_distance(2.0);
        let i_2m = f.current_into(2.0, SimTime::ZERO, 1e-6);
        assert!(i_2m < i_1m, "more distance, less harvest");
    }

    #[test]
    fn rf_field_carrier_gates_harvest() {
        let mut f = RfField::paper_setup();
        assert!(f.current_into(2.0, SimTime::ZERO, 1e-6) > 0.0);
        f.set_carrier(false);
        assert_eq!(f.current_into(2.0, SimTime::ZERO, 1e-6), 0.0);
    }

    #[test]
    fn rf_field_modulation_derates() {
        let mut f = RfField::paper_setup();
        let i_cw = f.current_into(1.0, SimTime::ZERO, 1e-6);
        f.set_modulating(true);
        let i_mod = f.current_into(1.0, SimTime::ZERO, 1e-6);
        assert!(i_mod < i_cw);
    }

    #[test]
    fn rf_paper_setup_charges_in_tens_of_ms() {
        // Charging 47 µF from 1.8 V to 2.4 V with the device off must take
        // on the order of tens of milliseconds for the sawtooth cadence of
        // Figure 7 to come out right.
        let mut f = RfField::paper_setup();
        let mut cap = crate::Capacitor::new(47e-6);
        cap.set_voltage(1.8);
        let dt = 1e-6;
        let mut t = SimTime::ZERO;
        while cap.voltage() < 2.4 {
            let i = f.current_into(cap.voltage(), t, dt);
            assert!(i > 0.0, "must keep charging");
            cap.apply_current(i, dt);
            t = t.advance_secs(dt);
            assert!(t < SimTime::from_ms(500), "charging unreasonably slow");
        }
        let ms = t.as_millis_f64();
        assert!(
            (10.0..120.0).contains(&ms),
            "charge time {ms} ms out of band"
        );
    }

    #[test]
    fn pulsed_source_gates_on_schedule() {
        let mut h = PulsedSource::new(
            ConstantCurrent::new(1e-3),
            SimTime::from_ms(10),
            SimTime::from_ms(5),
        );
        assert_eq!(h.current_into(2.0, SimTime::ZERO, 1e-6), 1e-3);
        assert_eq!(h.current_into(2.0, SimTime::from_ms(9), 1e-6), 1e-3);
        assert_eq!(h.current_into(2.0, SimTime::from_ms(12), 1e-6), 0.0);
        assert_eq!(h.current_into(2.0, SimTime::from_ms(16), 1e-6), 1e-3);
        // Bit-equal across independently constructed instances.
        let mut a = PulsedSource::new(
            TheveninSource::new(3.2, 1500.0),
            SimTime::from_ms(7),
            SimTime::from_ms(3),
        );
        let mut b = PulsedSource::new(
            TheveninSource::new(3.2, 1500.0),
            SimTime::from_ms(7),
            SimTime::from_ms(3),
        );
        for k in 0..1000u64 {
            let t = SimTime::from_us(k * 13);
            assert_eq!(
                a.current_into(1.9, t, 1e-6).to_bits(),
                b.current_into(1.9, t, 1e-6).to_bits()
            );
        }
    }

    #[test]
    fn solar_is_deterministic_per_seed() {
        let mut a = SolarHarvester::new(3.0, 2000.0, 1.0, 42);
        let mut b = SolarHarvester::new(3.0, 2000.0, 1.0, 42);
        for k in 0..1000u64 {
            let t = SimTime::from_us(k * 37);
            assert_eq!(a.current_into(1.5, t, 1e-6), b.current_into(1.5, t, 1e-6));
        }
    }

    #[test]
    fn save_load_resumes_bit_identically() {
        // Run a stateful stack (fading over solar: two RNGs, a fading
        // factor, an occlusion schedule) halfway, snapshot, keep running;
        // then restore the snapshot onto a fresh same-parameter instance
        // and check the tails are bit-equal.
        let build = || Fading::new(SolarHarvester::new(3.0, 2000.0, 1.0, 9), 0.05, 4);
        let mut live = build();
        for k in 0..500u64 {
            live.current_into(1.5, SimTime::from_us(k * 37), 1e-6);
        }
        let snap = live.save_state();
        let mut restored = build();
        restored.load_state(&snap).unwrap();
        for k in 500..1500u64 {
            let t = SimTime::from_us(k * 37);
            assert_eq!(
                live.current_into(1.5, t, 1e-6).to_bits(),
                restored.current_into(1.5, t, 1e-6).to_bits()
            );
        }
    }

    #[test]
    fn stateless_sources_save_null() {
        assert_eq!(ConstantCurrent::new(1e-3).save_state(), serde::Value::Null);
        assert_eq!(
            TheveninSource::new(3.0, 1000.0).save_state(),
            serde::Value::Null
        );
        // Trace cursors and RF field knobs round-trip.
        let mut f = RfField::paper_setup();
        f.set_distance(2.5);
        f.set_carrier(false);
        let snap = f.save_state();
        let mut g = RfField::paper_setup();
        g.load_state(&snap).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn trace_steps_between_samples() {
        let mut h = TraceHarvester::new(
            vec![(SimTime::ZERO, 3.0), (SimTime::from_ms(10), 0.0)],
            1000.0,
        );
        assert!(h.current_into(1.0, SimTime::from_ms(9), 1e-6) > 0.0);
        assert_eq!(h.current_into(1.0, SimTime::from_ms(11), 1e-6), 0.0);
    }

    #[test]
    fn trace_loops_when_asked() {
        let mut h = TraceHarvester::new(
            vec![(SimTime::ZERO, 3.0), (SimTime::from_ms(10), 0.0)],
            1000.0,
        )
        .looping();
        // At t = 21 ms the looped trace is at phase 1 ms → v_oc = 3.0.
        assert!(h.current_into(1.0, SimTime::from_ms(21), 1e-6) > 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn trace_rejects_unsorted() {
        let _ = TraceHarvester::new(
            vec![(SimTime::from_ms(10), 1.0), (SimTime::ZERO, 2.0)],
            1000.0,
        );
    }
}
