//! The one-quantum RC integration step shared by every simulation path.
//!
//! Both the per-instruction device loop and the batched span loop call
//! this exact function, so the floating-point operation sequence per
//! quantum is identical by construction — the batched fast path can
//! only *skip redundant work between* quanta, never change the
//! arithmetic *within* one. That is what makes "bit-identical output,
//! faster wall clock" a structural property rather than a testing hope.

use crate::capacitor::Capacitor;
use crate::harvester::Harvester;
use crate::time::SimTime;

/// Advances `cap` by one quantum of `dt` seconds: asks the harvester
/// for its charging current at the present voltage, sums it with the
/// externally injected current (EDB tether/charge hardware) and the
/// load drawn by the target, and applies the net current to the RC
/// model.
///
/// The call order — harvester first, then `apply_current` — is part of
/// the contract: callers on the fast and slow paths must observe the
/// same `f64` rounding, so neither may inline a reordered variant.
#[inline]
pub fn integrate_quantum(
    cap: &mut Capacitor,
    harvester: &mut dyn Harvester,
    i_external: f64,
    i_load: f64,
    now: SimTime,
    dt: f64,
) {
    let i_harvest = harvester.current_into(cap.voltage(), now, dt);
    cap.apply_current(i_harvest + i_external - i_load, dt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::ConstantCurrent;

    #[test]
    fn matches_the_manual_sequence_bit_for_bit() {
        let mut a = Capacitor::new(47e-6);
        let mut b = a.clone();
        a.set_voltage(2.0);
        b.set_voltage(2.0);
        let mut h1 = ConstantCurrent::new(1.1e-3);
        let mut h2 = ConstantCurrent::new(1.1e-3);
        let now = SimTime::from_us(5);
        let dt = 250e-9;
        integrate_quantum(&mut a, &mut h1, 0.4e-3, 2.2e-3, now, dt);
        let i_harvest = h2.current_into(b.voltage(), now, dt);
        b.apply_current(i_harvest + 0.4e-3 - 2.2e-3, dt);
        assert_eq!(a.voltage().to_bits(), b.voltage().to_bits());
    }
}
