//! Ekho-style energy-environment recording and replay.
//!
//! §6.1 of the EDB paper: "Ekho is a device that records the amount of
//! energy harvested by a harvesting circuit and reproduces the trace as
//! power input into an application device. Ekho can reproduce
//! problematic program behavior, but it cannot offer insight into this
//! behavior." This module is that complement: capture a live (noisy,
//! unrepeatable) harvesting environment once, then replay it
//! *identically* as many times as a debugging investigation needs —
//! typically with EDB attached to provide the insight Ekho cannot.
//!
//! Recording probes the source's current at a fixed mid-band operating
//! voltage through the known front-end resistance and stores the
//! Thévenin-equivalent open-circuit voltage over time (the real Ekho
//! records full I-V surfaces; a single operating point is accurate to
//! ~1 % across the 1.8–2.4 V band our targets live in). Replay hands
//! back a [`TraceHarvester`] that reproduces the same `(time, v_oc)`
//! schedule bit-for-bit.
//!
//! # Example
//!
//! ```
//! use edb_energy::{ekho, Fading, TheveninSource, Harvester, SimTime};
//!
//! // A live, fading RF environment...
//! let mut live = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 99);
//! // ...recorded for half a second at 1 ms resolution...
//! let tape = ekho::record(&mut live, 1500.0, 2.1, SimTime::from_ms(500), SimTime::from_ms(1));
//! // ...replays identically, twice.
//! let mut a = ekho::replay(&tape, 1500.0);
//! let mut b = ekho::replay(&tape, 1500.0);
//! let t = SimTime::from_ms(123);
//! assert_eq!(a.current_into(2.0, t, 1e-6), b.current_into(2.0, t, 1e-6));
//! ```

use crate::harvester::{Harvester, TraceHarvester};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A recorded energy-environment tape: `(time, equivalent v_oc)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tape {
    samples: Vec<(SimTime, f64)>,
}

impl Tape {
    /// The raw samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples on the tape.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serializes the tape as CSV (`time_ms,v_oc`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ms,v_oc\n");
        for (t, v) in &self.samples {
            out.push_str(&format!("{:.6},{v:.6}\n", t.as_millis_f64()));
        }
        out
    }

    /// Parses a tape from [`Tape::to_csv`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_csv(csv: &str) -> Result<Tape, String> {
        let mut samples = Vec::new();
        for (idx, line) in csv.lines().enumerate() {
            if idx == 0 || line.trim().is_empty() {
                continue;
            }
            let (t, v) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: missing comma", idx + 1))?;
            let t: f64 = t
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad time `{t}`", idx + 1))?;
            let v: f64 = v
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad voltage `{v}`", idx + 1))?;
            samples.push((SimTime::from_ns((t * 1e6).round() as u64), v));
        }
        Ok(Tape { samples })
    }
}

/// Records `source` for `duration` at one sample per `period`, probing
/// its current at the operating voltage `v_probe` through the known
/// front-end resistance `r_src` (ohms) to recover the Thévenin-
/// equivalent open-circuit voltage at that operating point.
pub fn record(
    source: &mut dyn Harvester,
    r_src: f64,
    v_probe: f64,
    duration: SimTime,
    period: SimTime,
) -> Tape {
    let mut samples = Vec::new();
    let mut t = SimTime::ZERO;
    let dt = period.as_secs_f64();
    while t <= duration {
        // Operating-point probe: i = (v_oc - v_probe) / r.
        let i = source.current_into(v_probe, t, dt);
        samples.push((t, v_probe + i * r_src));
        t += period;
    }
    Tape { samples }
}

/// Builds a replay harvester from a tape, behind `r_src` ohms.
///
/// # Panics
///
/// Panics if the tape is empty.
pub fn replay(tape: &Tape, r_src: f64) -> TraceHarvester {
    TraceHarvester::new(tape.samples.clone(), r_src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::{Fading, TheveninSource};

    fn live_source(seed: u64) -> Fading<TheveninSource> {
        Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed)
    }

    #[test]
    fn recording_captures_the_fading_envelope() {
        let mut live = live_source(5);
        let tape = record(
            &mut live,
            1500.0,
            2.1,
            SimTime::from_ms(200),
            SimTime::from_ms(1),
        );
        assert_eq!(tape.len(), 201);
        let vs: Vec<f64> = tape.samples().iter().map(|&(_, v)| v).collect();
        let min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "fading must be visible on the tape");
        assert!((2.0..5.0).contains(&min) && max < 5.0, "{min}..{max}");
    }

    #[test]
    fn replay_is_exactly_repeatable() {
        let mut live = live_source(6);
        let tape = record(
            &mut live,
            1500.0,
            2.1,
            SimTime::from_ms(100),
            SimTime::from_ms(1),
        );
        let mut a = replay(&tape, 1500.0);
        let mut b = replay(&tape, 1500.0);
        for k in 0..5000u64 {
            let t = SimTime::from_us(k * 17);
            let ia = a.current_into(2.1, t, 1e-6);
            let ib = b.current_into(2.1, t, 1e-6);
            assert_eq!(ia.to_bits(), ib.to_bits(), "replay must be bit-identical");
        }
    }

    #[test]
    fn replay_approximates_the_live_source() {
        // The replayed environment delivers the same charge (to within
        // the sampling error) as the live one over the recorded window.
        let mut live = live_source(7);
        let tape = record(
            &mut live,
            1500.0,
            2.1,
            SimTime::from_ms(300),
            SimTime::from_ms(1),
        );
        let mut live = live_source(7);
        let mut rep = replay(&tape, 1500.0);
        let dt = 100e-6;
        let (mut q_live, mut q_rep) = (0.0, 0.0);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_ms(300) {
            q_live += live.current_into(2.0, t, dt) * dt;
            q_rep += rep.current_into(2.0, t, dt) * dt;
            t = t.advance_secs(dt);
        }
        let err = (q_live - q_rep).abs() / q_live;
        assert!(err < 0.02, "charge mismatch {:.2} %", err * 100.0);
    }

    #[test]
    fn csv_round_trip() {
        let mut live = live_source(8);
        let tape = record(
            &mut live,
            1500.0,
            2.1,
            SimTime::from_ms(50),
            SimTime::from_ms(5),
        );
        let csv = tape.to_csv();
        let back = Tape::from_csv(&csv).expect("parses");
        assert_eq!(back.len(), tape.len());
        for (a, b) in tape.samples().iter().zip(back.samples()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-5);
        }
    }

    #[test]
    fn csv_errors_name_the_line() {
        let err = Tape::from_csv("time_ms,v_oc\n1.0,2.0\nbogus\n").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }
}
