//! Closed-form RC charging arithmetic for span-batched fleet stepping.
//!
//! A reduced-order tag between RF events is a first-order RC system: a
//! Thévenin source (the rectified field) charging a capacitor against a
//! piecewise-constant load. Instead of micro-stepping the integrator,
//! the fleet path advances every tag *analytically* from one slot
//! boundary to the next:
//!
//! ```text
//! v(t) = v_inf + (v0 - v_inf) · e^(−t/τ)        τ = R·C
//! ```
//!
//! and solves the same equation for threshold-crossing times (turn-on
//! at `v_on`, brown-out at `v_off`), so a span of milliseconds costs
//! one exponential per tag rather than thousands of Euler steps.
//!
//! Determinism note: `exp`/`ln` come from [`exp_det`]/[`ln_det`], not
//! libm. The libm transcendentals are allowed to differ in the last ulp
//! between libc versions, which would break the fleet's bit-identical
//! golden-manifest gate across machines; these implementations use only
//! IEEE-754 `+ − × ÷` (which are exactly specified everywhere) plus
//! exact exponent manipulation, so a fleet trial reproduces bit-for-bit
//! on any host.

/// ln(2), split head/tail so `k·ln2` subtracts exactly. The head is
/// written to its full decimal expansion so the bit pattern (trailing
/// mantissa zeroed for the exact multiply) is auditable.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
const LOG2_E: f64 = std::f64::consts::LOG2_E;

/// Deterministic `e^x` built from IEEE-exact operations only.
///
/// Range-reduces `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluates a
/// degree-11 Taylor polynomial in `r` (error far below 1 ulp of the
/// ~1e-14 relative band we need), and scales by `2^k` through exponent
/// bits. Accurate to better than 1e-14 relative over the range the
/// energy model uses; bit-identical on every IEEE-754 platform.
pub fn exp_det(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -745.0 {
        return 0.0;
    }
    let k = (x * LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Horner evaluation of Σ rⁿ/n!, n = 0..=11.
    let mut p = 1.0 / 39_916_800.0; // 1/11!
    for inv_fact in [
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ] {
        p = p * r + inv_fact;
    }
    scale_by_pow2(p, k as i64)
}

/// Deterministic natural log from IEEE-exact operations only.
///
/// Decomposes `x = m·2^e` with `m ∈ [√½, √2)`, then evaluates
/// `ln m = 2·atanh(t)`, `t = (m−1)/(m+1)` by its odd Taylor series
/// (`|t| < 0.1716`, 13 terms ≫ enough). Returns NaN for negative
/// input, −∞ for zero.
pub fn ln_det(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    let bits = x.to_bits();
    let (mut e, mut m) = if bits >> 52 == 0 {
        // Subnormal: renormalize through an exact 2^64 multiply.
        let y = x * 18_446_744_073_709_551_616.0;
        ((y.to_bits() >> 52) as i64 - 1023 - 64, y)
    } else {
        ((bits >> 52) as i64 - 1023, x)
    };
    m = f64::from_bits((m.to_bits() & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut s = 1.0 / 25.0;
    for k in (0..12).rev() {
        s = s * t2 + 1.0 / (2 * k + 1) as f64;
    }
    2.0 * t * s + (e as f64) * LN2_HI + (e as f64) * LN2_LO
}

/// Exact scaling by `2^k` via exponent arithmetic (handles the
/// subnormal underflow tail with one extra exact multiply).
fn scale_by_pow2(x: f64, k: i64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let e = ((x.to_bits() >> 52) & 0x7FF) as i64 + k;
    if e >= 0x7FF {
        return f64::INFINITY * x.signum();
    }
    if e <= 0 {
        // Land in (or below) the subnormal range: scale to e+64 first
        // (exact), then divide by 2^64 (correctly rounded).
        if e < -64 {
            return 0.0;
        }
        let partial =
            f64::from_bits((x.to_bits() & !0x7FF0_0000_0000_0000) | (((e + 64) as u64) << 52));
        return partial / 18_446_744_073_709_551_616.0;
    }
    f64::from_bits((x.to_bits() & !0x7FF0_0000_0000_0000) | ((e as u64) << 52))
}

/// Advances a first-order RC node `dt` seconds toward its asymptote.
///
/// `v0` is the present voltage, `v_inf` the loaded equilibrium
/// (`v_oc − i_load·R` for a Thévenin source with a constant load), and
/// `tau` the time constant `R·C`. `dt ≤ 0` returns `v0` unchanged.
pub fn rc_advance(v0: f64, v_inf: f64, tau: f64, dt: f64) -> f64 {
    debug_assert!(tau > 0.0, "time constant must be positive");
    if dt <= 0.0 {
        return v0;
    }
    v_inf + (v0 - v_inf) * exp_det(-dt / tau)
}

/// Time for the node to reach `v_target`, or `None` when it never will
/// (the target is not strictly between `v0` and the asymptote).
///
/// Solves `v_target = v_inf + (v0 − v_inf)·e^(−t/τ)` for `t`:
/// `t = τ · ln((v0 − v_inf)/(v_target − v_inf))`.
pub fn rc_time_to(v0: f64, v_inf: f64, tau: f64, v_target: f64) -> Option<f64> {
    debug_assert!(tau > 0.0, "time constant must be positive");
    let from = v0 - v_inf;
    let to = v_target - v_inf;
    // Same side of the asymptote, and strictly closer to it than v0 —
    // otherwise the trajectory never gets there.
    if from == 0.0 || to == 0.0 || (from > 0.0) != (to > 0.0) || to.abs() >= from.abs() {
        return None;
    }
    let t = tau * ln_det(from / to);
    (t >= 0.0).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_det_tracks_libm_tightly() {
        let mut x = -700.0;
        while x < 700.0 {
            let (a, b) = (exp_det(x), x.exp());
            let tol = 1e-13 * b.abs() + 1e-300;
            assert!((a - b).abs() <= tol, "exp({x}): {a} vs {b}");
            x += 0.618;
        }
        assert_eq!(exp_det(0.0), 1.0);
        assert_eq!(exp_det(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_det(800.0), f64::INFINITY);
        assert!(exp_det(f64::NAN).is_nan());
    }

    #[test]
    fn ln_det_tracks_libm_tightly() {
        for &x in &[
            1e-308, 1e-12, 0.1, 0.5, 1.0, 1.0000001, 2.0, 3.7, 1e6, 1e300,
        ] {
            let (a, b) = (ln_det(x), x.ln());
            assert!(
                (a - b).abs() <= 1e-13 * b.abs().max(1.0),
                "ln({x}): {a} vs {b}"
            );
        }
        assert_eq!(ln_det(1.0), 0.0);
        assert_eq!(ln_det(0.0), f64::NEG_INFINITY);
        assert!(ln_det(-1.0).is_nan());
        // Subnormal inputs go through the renormalization path.
        let sub = f64::from_bits(1234);
        assert!((ln_det(sub) - sub.ln()).abs() < 1e-10);
    }

    #[test]
    fn exp_and_ln_are_inverses() {
        for &x in &[-50.0, -3.2, -0.001, 0.0, 0.5, 7.0, 80.0] {
            assert!((ln_det(exp_det(x)) - x).abs() < 1e-12 * x.abs().max(1.0));
        }
    }

    #[test]
    fn rc_advance_matches_fine_euler_integration() {
        // The analytic span must agree with the micro-stepped integrator
        // the single-tag path uses, to integration tolerance.
        let (v_oc, r, c) = (3.2, 1500.0, 47e-6);
        let i_load = 0.4e-3;
        let v_inf = v_oc - i_load * r;
        let tau = r * c;
        let mut v = 1.9;
        let dt = 1e-7;
        let span = 0.012;
        let steps = (span / dt) as u64;
        for _ in 0..steps {
            let i_in = (v_oc - v) / r;
            v += (i_in - i_load) * dt / c;
        }
        let analytic = rc_advance(1.9, v_inf, tau, span);
        assert!(
            (v - analytic).abs() < 1e-4,
            "euler {v} vs analytic {analytic}"
        );
    }

    #[test]
    fn rc_time_to_inverts_rc_advance() {
        let (v0, v_inf, tau) = (1.9, 2.8, 1500.0 * 47e-6);
        let t = rc_time_to(v0, v_inf, tau, 2.4).expect("reachable");
        let back = rc_advance(v0, v_inf, tau, t);
        assert!((back - 2.4).abs() < 1e-12, "{back}");
        // Unreachable targets: behind the start, past the asymptote, or
        // on the other side entirely.
        assert_eq!(rc_time_to(v0, v_inf, tau, 1.5), None);
        assert_eq!(rc_time_to(v0, v_inf, tau, 2.9), None);
        assert_eq!(rc_time_to(2.4, 1.8, tau, 2.5), None);
        // Discharge direction works symmetrically.
        let t = rc_time_to(2.4, 1.2, tau, 1.8).expect("discharges");
        assert!((rc_advance(2.4, 1.2, tau, t) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn zero_or_negative_dt_is_identity() {
        assert_eq!(rc_advance(2.0, 3.0, 0.07, 0.0), 2.0);
        assert_eq!(rc_advance(2.0, 3.0, 0.07, -1.0), 2.0);
    }
}
