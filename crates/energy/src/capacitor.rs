//! The energy storage element of a harvesting device.

use serde::{Deserialize, Serialize};

/// An ideal storage capacitor integrated explicitly in time.
///
/// The capacitor is the single energy buffer of an intermittent device: the
/// harvester charges it, the load (MCU + peripherals + debugger leakage)
/// discharges it, and the supervisor decides from its voltage whether the
/// device runs at all. The paper's WISP5 target uses 47 µF.
///
/// Voltage is clamped to `[0, v_max]`; `v_max` models the overvoltage
/// clamp present on real harvesting front-ends (5.5 V by default).
///
/// # Example
///
/// ```
/// use edb_energy::Capacitor;
/// let mut cap = Capacitor::new(47e-6);
/// cap.set_voltage(2.0);
/// // 1 mA discharging for 1 ms drops V by I*t/C ≈ 21.3 mV.
/// cap.apply_current(-1e-3, 1e-3);
/// assert!((cap.voltage() - (2.0 - 1e-3 * 1e-3 / 47e-6)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    capacitance: f64,
    voltage: f64,
    v_max: f64,
}

impl Capacitor {
    /// Creates a discharged capacitor of `capacitance` farads with the
    /// default 5.5 V overvoltage clamp.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is not strictly positive.
    pub fn new(capacitance: f64) -> Self {
        Self::with_clamp(capacitance, 5.5)
    }

    /// Creates a discharged capacitor with an explicit overvoltage clamp.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` or `v_max` is not strictly positive.
    pub fn with_clamp(capacitance: f64, v_max: f64) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        assert!(v_max > 0.0, "clamp voltage must be positive");
        Capacitor {
            capacitance,
            voltage: 0.0,
            v_max,
        }
    }

    /// The capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// The present terminal voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// The overvoltage clamp in volts.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Forces the terminal voltage (clamped to `[0, v_max]`).
    ///
    /// Used by the simulation harness for initial conditions and by the
    /// ground-truth instrumentation in tests; the debugger itself must go
    /// through its charge/discharge circuit.
    pub fn set_voltage(&mut self, volts: f64) {
        self.voltage = volts.clamp(0.0, self.v_max);
    }

    /// Integrates a net current for `dt` seconds. Positive current charges,
    /// negative discharges. Voltage is clamped to `[0, v_max]`.
    pub fn apply_current(&mut self, amps: f64, dt: f64) {
        self.voltage = (self.voltage + amps * dt / self.capacitance).clamp(0.0, self.v_max);
    }

    /// The energy stored right now, `E = C·V²/2`, in joules.
    pub fn energy(&self) -> f64 {
        crate::budget::stored_energy(self.capacitance, self.voltage)
    }

    /// The energy that would be stored at `volts`, in joules.
    pub fn energy_at(&self, volts: f64) -> f64 {
        crate::budget::stored_energy(self.capacitance, volts)
    }

    /// Energy difference between two voltage levels,
    /// `ΔE = C·(v_a² − v_b²)/2` — the expression the paper uses to quantify
    /// save/restore accuracy (Table 3).
    pub fn delta_energy(&self, v_a: f64, v_b: f64) -> f64 {
        crate::budget::delta_energy(self.capacitance, v_a, v_b)
    }
}

impl Default for Capacitor {
    /// A WISP5-like 47 µF capacitor.
    fn default() -> Self {
        Capacitor::new(crate::budget::WISP5_CAPACITANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_discharge_symmetry() {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(2.0);
        cap.apply_current(1e-3, 1e-3);
        cap.apply_current(-1e-3, 1e-3);
        assert!((cap.voltage() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_clamped_at_zero_and_max() {
        let mut cap = Capacitor::with_clamp(47e-6, 3.0);
        cap.apply_current(-1.0, 1.0);
        assert_eq!(cap.voltage(), 0.0);
        cap.apply_current(1.0, 10.0);
        assert_eq!(cap.voltage(), 3.0);
    }

    #[test]
    fn energy_matches_closed_form() {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(2.4);
        let expected = 0.5 * 47e-6 * 2.4 * 2.4;
        assert!((cap.energy() - expected).abs() < 1e-15);
        assert!((cap.energy_at(2.4) - expected).abs() < 1e-15);
    }

    #[test]
    fn delta_energy_signs() {
        let cap = Capacitor::new(47e-6);
        assert!(cap.delta_energy(2.4, 1.8) > 0.0);
        assert!(cap.delta_energy(1.8, 2.4) < 0.0);
        assert_eq!(cap.delta_energy(2.0, 2.0), 0.0);
    }

    #[test]
    fn paper_max_energy_budget() {
        // The paper reports energy costs as a percentage of the 47 µF
        // store's capacity at V_max = 2.4 V: E = 135.4 µJ.
        let cap = Capacitor::new(47e-6);
        let e_max = cap.energy_at(2.4);
        assert!((e_max - 135.36e-6).abs() < 0.1e-6);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn rejects_nonpositive_capacitance() {
        let _ = Capacitor::new(0.0);
    }
}
