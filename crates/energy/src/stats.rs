//! Small statistics helpers shared by the experiment harnesses.
//!
//! The paper reports its quantitative results as means, standard
//! deviations (Table 3), rates (Table 4), and a CDF (Figure 11); this
//! module provides exactly those reductions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean / standard deviation / extrema of a sample set.
///
/// # Example
///
/// ```
/// use edb_energy::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert!((s.std_dev - 1.0).abs() < 1e-12);
/// assert_eq!((s.min, s.max), (1.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample set");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// An empirical cumulative distribution function.
///
/// Built once from a sample set; evaluate with [`Cdf::probability_at`] or
/// walk the steps with [`Cdf::points`] — the latter regenerates Figure 11.
///
/// # Example
///
/// ```
/// use edb_energy::Cdf;
/// let cdf = Cdf::of(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.probability_at(0.5), 0.0);
/// assert_eq!(cdf.probability_at(2.0), 0.75);
/// assert_eq!(cdf.probability_at(9.0), 1.0);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn of(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "cannot build a CDF from no samples");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted: samples }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples (never true for a constructed CDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn probability_at(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&s| s <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `v` with P(X ≤ v) ≥ `p` (p clamped to (0, 1]).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(f64::MIN_POSITIVE, 1.0);
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// The `(value, cumulative probability)` step points, suitable for
    /// plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_single_sample_has_zero_sd() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = Cdf::of(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut prev = 0.0;
        for x in 0..12 {
            let p = cdf.probability_at(x as f64);
            assert!(p >= prev);
            prev = p;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn cdf_points_end_at_one() {
        let cdf = Cdf::of(vec![1.0, 2.0, 3.0]);
        let pts: Vec<(f64, f64)> = cdf.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantiles_bracket_the_median() {
        let cdf = Cdf::of((1..=100).map(|x| x as f64).collect());
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.01), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
