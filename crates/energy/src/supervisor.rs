//! The voltage supervisor that gates intermittent operation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An edge reported by the [`Supervisor`] when the stored voltage crosses
/// one of its thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerEdge {
    /// Voltage rose past the turn-on threshold: the device resets and
    /// begins executing.
    TurnOn,
    /// Voltage fell past the brown-out threshold: the device loses power,
    /// volatile state is gone.
    BrownOut,
}

impl fmt::Display for PowerEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerEdge::TurnOn => write!(f, "turn-on"),
            PowerEdge::BrownOut => write!(f, "brown-out"),
        }
    }
}

/// Hysteretic power-good comparator.
///
/// Models the supervisor on a WISP-class tag: the device turns on when the
/// capacitor first reaches `v_on` (2.4 V on the WISP5) and keeps running
/// until the capacitor droops below `v_off` (1.8 V). The gap between the
/// thresholds is the per-cycle energy budget that all of the paper's
/// "iteration success rate" arithmetic is denominated in.
///
/// # Example
///
/// ```
/// use edb_energy::{Supervisor, PowerEdge};
/// let mut sup = Supervisor::wisp5();
/// assert_eq!(sup.update(2.0), None);               // still charging
/// assert_eq!(sup.update(2.4), Some(PowerEdge::TurnOn));
/// assert_eq!(sup.update(2.0), None);               // hysteresis: stays on
/// assert_eq!(sup.update(1.79), Some(PowerEdge::BrownOut));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supervisor {
    v_on: f64,
    v_off: f64,
    powered: bool,
}

impl Supervisor {
    /// Creates a supervisor with the given thresholds, initially
    /// unpowered.
    ///
    /// # Panics
    ///
    /// Panics unless `v_on > v_off > 0`.
    pub fn new(v_on: f64, v_off: f64) -> Self {
        assert!(v_off > 0.0, "brown-out threshold must be positive");
        assert!(v_on > v_off, "turn-on must exceed brown-out for hysteresis");
        Supervisor {
            v_on,
            v_off,
            powered: false,
        }
    }

    /// The WISP5 thresholds from the paper: turn-on 2.4 V, brown-out 1.8 V.
    pub fn wisp5() -> Self {
        Supervisor::new(crate::budget::WISP5_V_ON, crate::budget::WISP5_V_OFF)
    }

    /// Turn-on threshold, volts.
    pub fn v_on(&self) -> f64 {
        self.v_on
    }

    /// Brown-out threshold, volts.
    pub fn v_off(&self) -> f64 {
        self.v_off
    }

    /// Whether the device is currently powered.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Feeds the present capacitor voltage; returns an edge if one of the
    /// thresholds was crossed in the gating direction.
    pub fn update(&mut self, v_cap: f64) -> Option<PowerEdge> {
        if !self.powered && v_cap >= self.v_on {
            self.powered = true;
            Some(PowerEdge::TurnOn)
        } else if self.powered && v_cap < self.v_off {
            self.powered = false;
            Some(PowerEdge::BrownOut)
        } else {
            None
        }
    }

    /// Forces the supervisor state (used when a debugger tethers the target
    /// to continuous power and the comparator is effectively bypassed).
    pub fn force_powered(&mut self, powered: bool) {
        self.powered = powered;
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::wisp5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_produces_two_edges() {
        let mut sup = Supervisor::wisp5();
        let mut edges = Vec::new();
        for v in [1.0, 2.0, 2.4, 2.2, 1.9, 1.7, 1.9, 2.4] {
            if let Some(e) = sup.update(v) {
                edges.push(e);
            }
        }
        assert_eq!(
            edges,
            vec![PowerEdge::TurnOn, PowerEdge::BrownOut, PowerEdge::TurnOn]
        );
    }

    #[test]
    fn no_retrigger_while_powered() {
        let mut sup = Supervisor::wisp5();
        assert_eq!(sup.update(2.5), Some(PowerEdge::TurnOn));
        assert_eq!(sup.update(2.6), None);
        assert_eq!(sup.update(2.4), None);
    }

    #[test]
    fn hysteresis_band_is_quiet() {
        let mut sup = Supervisor::wisp5();
        sup.update(2.4);
        for _ in 0..100 {
            assert_eq!(sup.update(2.0), None);
            assert_eq!(sup.update(1.9), None);
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_inverted_thresholds() {
        let _ = Supervisor::new(1.8, 2.4);
    }
}
