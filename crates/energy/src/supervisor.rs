//! The voltage supervisor that gates intermittent operation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An edge reported by the [`Supervisor`] when the stored voltage crosses
/// one of its thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerEdge {
    /// Voltage rose past the turn-on threshold: the device resets and
    /// begins executing.
    TurnOn,
    /// Voltage fell past the brown-out threshold: the device loses power,
    /// volatile state is gone.
    BrownOut,
}

impl fmt::Display for PowerEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerEdge::TurnOn => write!(f, "turn-on"),
            PowerEdge::BrownOut => write!(f, "brown-out"),
        }
    }
}

/// Hysteretic power-good comparator.
///
/// Models the supervisor on a WISP-class tag: the device turns on when the
/// capacitor first reaches `v_on` (2.4 V on the WISP5) and keeps running
/// until the capacitor droops below `v_off` (1.8 V). The gap between the
/// thresholds is the per-cycle energy budget that all of the paper's
/// "iteration success rate" arithmetic is denominated in.
///
/// # Example
///
/// ```
/// use edb_energy::{Supervisor, PowerEdge};
/// let mut sup = Supervisor::wisp5();
/// assert_eq!(sup.update(2.0), None);               // still charging
/// assert_eq!(sup.update(2.4), Some(PowerEdge::TurnOn));
/// assert_eq!(sup.update(2.0), None);               // hysteresis: stays on
/// assert_eq!(sup.update(1.79), Some(PowerEdge::BrownOut));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supervisor {
    v_on: f64,
    v_off: f64,
    powered: bool,
}

impl Supervisor {
    /// Creates a supervisor with the given thresholds, initially
    /// unpowered.
    ///
    /// # Panics
    ///
    /// Panics unless `v_on > v_off > 0`.
    pub fn new(v_on: f64, v_off: f64) -> Self {
        assert!(v_off > 0.0, "brown-out threshold must be positive");
        assert!(v_on > v_off, "turn-on must exceed brown-out for hysteresis");
        Supervisor {
            v_on,
            v_off,
            powered: false,
        }
    }

    /// The WISP5 thresholds from the paper: turn-on 2.4 V, brown-out 1.8 V.
    pub fn wisp5() -> Self {
        Supervisor::new(crate::budget::WISP5_V_ON, crate::budget::WISP5_V_OFF)
    }

    /// Turn-on threshold, volts.
    pub fn v_on(&self) -> f64 {
        self.v_on
    }

    /// Brown-out threshold, volts.
    pub fn v_off(&self) -> f64 {
        self.v_off
    }

    /// Whether the device is currently powered.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Feeds the present capacitor voltage; returns an edge if one of the
    /// thresholds was crossed in the gating direction.
    pub fn update(&mut self, v_cap: f64) -> Option<PowerEdge> {
        if !self.powered && v_cap >= self.v_on {
            self.powered = true;
            Some(PowerEdge::TurnOn)
        } else if self.powered && v_cap < self.v_off {
            self.powered = false;
            Some(PowerEdge::BrownOut)
        } else {
            None
        }
    }

    /// Forces the supervisor state (used when a debugger tethers the target
    /// to continuous power and the comparator is effectively bypassed).
    pub fn force_powered(&mut self, powered: bool) {
        self.powered = powered;
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::wisp5()
    }
}

/// Falling-edge detector for the Vcap "knee": the last moment a
/// speculative checkpoint strategy can still commit before the brown-out
/// comparator fires.
///
/// A speculative strategy defers committing its pending snapshot until
/// the capacitor sags through `v_knee = v_off + margin`. The detector is
/// direction-sensitive — it arms while the voltage sits *above* the knee
/// and fires exactly once per sag through it, so a capacitor hovering in
/// the band does not re-trigger. An abrupt discharge that jumps from
/// above the knee straight past `v_off` (a yanked supply, an injected
/// fault) crosses both thresholds in one sample; the consumer must rank
/// the supervisor's brown-out edge above the knee, because there is no
/// commit headroom left to spend.
///
/// # Example
///
/// ```
/// use edb_energy::KneeDetector;
/// let mut knee = KneeDetector::wisp5();
/// assert!(!knee.update(2.4)); // above: arms
/// assert!(knee.update(1.95)); // sagged through v_off + margin
/// assert!(!knee.update(1.90)); // once per sag
/// assert!(!knee.update(2.4)); // recharge re-arms...
/// assert!(knee.update(1.85)); // ...and the next sag fires again
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KneeDetector {
    v_knee: f64,
    armed: bool,
}

impl KneeDetector {
    /// Creates a detector firing at `v_off + margin`, initially disarmed
    /// (the first sample above the knee arms it).
    ///
    /// # Panics
    ///
    /// Panics unless `margin > 0`.
    pub fn new(v_off: f64, margin: f64) -> Self {
        assert!(margin > 0.0, "knee margin must leave commit headroom");
        KneeDetector {
            v_knee: v_off + margin,
            armed: false,
        }
    }

    /// The WISP5 knee: 200 mV of commit headroom above the 1.8 V
    /// brown-out floor.
    pub fn wisp5() -> Self {
        KneeDetector::new(crate::budget::WISP5_V_OFF, 0.2)
    }

    /// The knee voltage, volts.
    pub fn v_knee(&self) -> f64 {
        self.v_knee
    }

    /// Feeds the present capacitor voltage; `true` exactly when this
    /// sample crosses the knee downward from an armed state.
    pub fn update(&mut self, v_cap: f64) -> bool {
        if v_cap >= self.v_knee {
            self.armed = true;
            false
        } else if self.armed {
            self.armed = false;
            true
        } else {
            false
        }
    }
}

impl Default for KneeDetector {
    fn default() -> Self {
        KneeDetector::wisp5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_produces_two_edges() {
        let mut sup = Supervisor::wisp5();
        let mut edges = Vec::new();
        for v in [1.0, 2.0, 2.4, 2.2, 1.9, 1.7, 1.9, 2.4] {
            if let Some(e) = sup.update(v) {
                edges.push(e);
            }
        }
        assert_eq!(
            edges,
            vec![PowerEdge::TurnOn, PowerEdge::BrownOut, PowerEdge::TurnOn]
        );
    }

    #[test]
    fn no_retrigger_while_powered() {
        let mut sup = Supervisor::wisp5();
        assert_eq!(sup.update(2.5), Some(PowerEdge::TurnOn));
        assert_eq!(sup.update(2.6), None);
        assert_eq!(sup.update(2.4), None);
    }

    #[test]
    fn hysteresis_band_is_quiet() {
        let mut sup = Supervisor::wisp5();
        sup.update(2.4);
        for _ in 0..100 {
            assert_eq!(sup.update(2.0), None);
            assert_eq!(sup.update(1.9), None);
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_inverted_thresholds() {
        let _ = Supervisor::new(1.8, 2.4);
    }

    #[test]
    fn knee_fires_once_per_sag() {
        let mut knee = KneeDetector::wisp5();
        assert!((knee.v_knee() - 2.0).abs() < 1e-12);
        // Starts disarmed: a voltage already below the knee never fires.
        assert!(!knee.update(1.9));
        assert!(!knee.update(1.85));
        // Charge above, sag through: exactly one firing.
        assert!(!knee.update(2.4));
        assert!(!knee.update(2.1));
        assert!(knee.update(1.99));
        assert!(!knee.update(1.9));
        assert!(!knee.update(1.85));
        // Hovering right at the knee re-arms (>= is "above").
        assert!(!knee.update(2.0));
        assert!(knee.update(1.999));
    }

    #[test]
    fn knee_fires_even_on_an_abrupt_collapse() {
        // One sample jumping from full charge to a dead rail still
        // reports the (missed) knee; the engine must rank the brown-out
        // edge first because both fire on the same sample.
        let mut knee = KneeDetector::wisp5();
        let mut sup = Supervisor::wisp5();
        sup.update(2.4);
        knee.update(2.4);
        assert_eq!(sup.update(1.0), Some(PowerEdge::BrownOut));
        assert!(knee.update(1.0));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn knee_rejects_zero_margin() {
        let _ = KneeDetector::new(1.8, 0.0);
    }
}
