//! Electrical substrate for the EDB intermittent-computing simulation.
//!
//! This crate models the analog side of an energy-harvesting device in the
//! style of the WISP5 target used by the EDB paper (Colin et al.,
//! ASPLOS 2016): a storage [`Capacitor`] charged by a [`Harvester`] with a
//! high source resistance, gated by a voltage [`Supervisor`] with turn-on
//! and brown-out thresholds, and optionally post-regulated by an
//! [`Ldo`].
//!
//! Everything is integrated explicitly in time with a caller-chosen step
//! (the device simulation uses one CPU clock cycle, 250 ns at 4 MHz), which
//! is what lets a power failure interrupt target software *between any two
//! instructions* — the essence of the intermittent execution model.
//!
//! # Example
//!
//! Charge a 47 µF capacitor from a Thévenin-equivalent RF harvester until
//! the supervisor signals turn-on:
//!
//! ```
//! use edb_energy::{Capacitor, TheveninSource, Harvester, Supervisor, PowerEdge, SimTime};
//!
//! let mut cap = Capacitor::new(47e-6);
//! let mut src = TheveninSource::new(3.2, 1500.0);
//! let mut sup = Supervisor::wisp5();
//! let dt = 250e-9;
//! let mut t = SimTime::ZERO;
//! loop {
//!     let i = src.current_into(cap.voltage(), t, dt);
//!     cap.apply_current(i, dt);
//!     t = t.advance_secs(dt);
//!     if sup.update(cap.voltage()) == Some(PowerEdge::TurnOn) {
//!         break;
//!     }
//! }
//! assert!(cap.voltage() >= 2.4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod budget;
pub mod capacitor;
pub mod ekho;
pub mod harvester;
pub mod integrate;
pub mod regulator;
pub mod stats;
pub mod supervisor;
pub mod time;
pub mod trace;

pub use analytic::{exp_det, ln_det, rc_advance, rc_time_to};
pub use budget::{WISP5_CAPACITANCE, WISP5_V_OFF, WISP5_V_ON};
pub use capacitor::Capacitor;
pub use integrate::integrate_quantum;

pub use harvester::{
    ConstantCurrent, Fading, Harvester, PulsedSource, RfField, SolarHarvester, TheveninSource,
    TraceHarvester,
};
pub use regulator::Ldo;
pub use stats::{Cdf, Summary};
pub use supervisor::{KneeDetector, PowerEdge, Supervisor};
pub use time::SimTime;
pub use trace::{EventMark, Trace};
