//! Time-series recording — the simulation's "oscilloscope channel".
//!
//! Experiment harnesses attach [`Trace`]s to node voltages and digital
//! lines and later export them as CSV, exactly as the paper's figures were
//! produced from scope captures.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A labeled point event placed on a trace (e.g. "assert fired",
/// "tethered power engaged") — the numbered instants on the paper's
/// Figures 7 and 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventMark {
    /// When the event occurred.
    pub at: SimTime,
    /// Human-readable label.
    pub label: String,
}

/// A decimated time series of one analog or digital signal.
///
/// Recording every 250 ns tick of a multi-second simulation would produce
/// tens of millions of points; a `Trace` stores at most one sample per
/// `period` and also captures extrema between stored samples so brief
/// excursions are not lost.
///
/// # Example
///
/// ```
/// use edb_energy::{Trace, SimTime};
/// let mut tr = Trace::new("Vcap", SimTime::from_us(100));
/// for k in 0..1000u64 {
///     tr.record(SimTime::from_us(k), 2.0 + 0.001 * k as f64);
/// }
/// assert!(tr.len() <= 11);
/// assert!(tr.max().unwrap() >= 2.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    period: SimTime,
    samples: Vec<(SimTime, f64)>,
    /// Per stored sample: `(min, max)` over every value offered since
    /// the previously stored sample, the stored value included.
    envelope: Vec<(f64, f64)>,
    marks: Vec<EventMark>,
    last_stored: Option<SimTime>,
    pending_min: f64,
    pending_max: f64,
    have_pending: bool,
}

impl Trace {
    /// Creates an empty trace named `name`, storing at most one sample per
    /// `period` (plus min/max capture).
    pub fn new(name: impl Into<String>, period: SimTime) -> Self {
        Trace {
            name: name.into(),
            period,
            samples: Vec::new(),
            envelope: Vec::new(),
            marks: Vec::new(),
            last_stored: None,
            pending_min: f64::INFINITY,
            pending_max: f64::NEG_INFINITY,
            have_pending: false,
        }
    }

    /// The signal name used as the CSV column header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Offers a sample; it is stored if at least one decimation period has
    /// elapsed since the previously stored sample, otherwise it only
    /// updates the pending min/max envelope.
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.pending_min = self.pending_min.min(value);
        self.pending_max = self.pending_max.max(value);
        self.have_pending = true;
        let due = match self.last_stored {
            None => true,
            Some(prev) => at.since(prev) >= self.period,
        };
        if due {
            self.samples.push((at, value));
            self.envelope.push((self.pending_min, self.pending_max));
            self.last_stored = Some(at);
            self.pending_min = f64::INFINITY;
            self.pending_max = f64::NEG_INFINITY;
            self.have_pending = false;
        }
    }

    /// Whether an offer at `at` would store a sample, as opposed to only
    /// updating the pending envelope. Lets decimation-aware callers skip
    /// offers entirely when they do not need the envelope.
    #[inline]
    pub fn store_due(&self, at: SimTime) -> bool {
        match self.last_stored {
            None => true,
            Some(prev) => at.since(prev) >= self.period,
        }
    }

    /// Places a labeled event mark at `at`.
    pub fn mark(&mut self, at: SimTime, label: impl Into<String>) {
        self.marks.push(EventMark {
            at,
            label: label.into(),
        });
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been stored yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Stored `(time, value)` samples in order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Per stored sample, the `(min, max)` of every value offered since
    /// the previously stored sample (the stored value included) —
    /// decimation-safe extrema for brief excursions between samples.
    /// Indices parallel [`Trace::samples`].
    pub fn envelope(&self) -> &[(f64, f64)] {
        &self.envelope
    }

    /// The smallest value *ever offered* (not just stored), including
    /// any pending tail after the last stored sample. Unlike
    /// [`Trace::min`], decimation cannot hide a brief dip from this.
    pub fn envelope_min(&self) -> Option<f64> {
        let stored = self
            .envelope
            .iter()
            .map(|&(lo, _)| lo)
            .fold(f64::INFINITY, f64::min);
        let lo = if self.have_pending {
            stored.min(self.pending_min)
        } else {
            stored
        };
        (lo < f64::INFINITY).then_some(lo)
    }

    /// The largest value *ever offered* (not just stored), including any
    /// pending tail after the last stored sample.
    pub fn envelope_max(&self) -> Option<f64> {
        let stored = self
            .envelope
            .iter()
            .map(|&(_, hi)| hi)
            .fold(f64::NEG_INFINITY, f64::max);
        let hi = if self.have_pending {
            stored.max(self.pending_max)
        } else {
            stored
        };
        (hi > f64::NEG_INFINITY).then_some(hi)
    }

    /// Event marks in insertion order.
    pub fn marks(&self) -> &[EventMark] {
        &self.marks
    }

    /// Minimum stored value, if any samples exist.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum stored value, if any samples exist.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of stored values, if any samples exist.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The latest stored value at or before `at` (step interpolation).
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.samples.partition_point(|&(t, _)| t <= at) {
            0 => None,
            n => Some(self.samples[n - 1].1),
        }
    }

    /// Values within the half-open window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples
            .iter()
            .copied()
            .skip_while(move |&(t, _)| t < from)
            .take_while(move |&(t, _)| t < to)
    }

    /// Renders the trace as two-column CSV (`time_ms,<name>`), with event
    /// marks appended as comment lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 24 + 64);
        let _ = writeln!(out, "time_ms,{}", self.name);
        for &(t, v) in &self.samples {
            let _ = writeln!(out, "{:.6},{:.6}", t.as_millis_f64(), v);
        }
        for m in &self.marks {
            let _ = writeln!(out, "# mark,{:.6},{}", m.at.as_millis_f64(), m.label);
        }
        out
    }
}

/// Renders several traces that share a timebase as a merged CSV with step
/// interpolation (`time_ms,<a>,<b>,...`).
///
/// # Example
///
/// ```
/// use edb_energy::{Trace, SimTime, trace::merged_csv};
/// let mut a = Trace::new("vcap", SimTime::from_ms(1));
/// let mut b = Trace::new("gpio", SimTime::from_ms(1));
/// a.record(SimTime::ZERO, 2.4);
/// b.record(SimTime::ZERO, 0.0);
/// let csv = merged_csv(&[&a, &b]);
/// assert!(csv.starts_with("time_ms,vcap,gpio"));
/// ```
pub fn merged_csv(traces: &[&Trace]) -> String {
    let mut times: Vec<SimTime> = traces
        .iter()
        .flat_map(|t| t.samples().iter().map(|&(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut out = String::new();
    let _ = write!(out, "time_ms");
    for t in traces {
        let _ = write!(out, ",{}", t.name());
    }
    let _ = writeln!(out);
    for at in times {
        let _ = write!(out, "{:.6}", at.as_millis_f64());
        for t in traces {
            match t.value_at(at) {
                Some(v) => {
                    let _ = write!(out, ",{v:.6}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimates_to_one_sample_per_period() {
        let mut tr = Trace::new("v", SimTime::from_us(10));
        for k in 0..100u64 {
            tr.record(SimTime::from_us(k), k as f64);
        }
        assert!(tr.len() <= 11, "got {} samples", tr.len());
        assert_eq!(tr.samples()[0].0, SimTime::ZERO);
    }

    #[test]
    fn value_at_uses_step_interpolation() {
        let mut tr = Trace::new("v", SimTime::from_us(1));
        tr.record(SimTime::from_us(0), 1.0);
        tr.record(SimTime::from_us(10), 2.0);
        assert_eq!(tr.value_at(SimTime::from_us(5)), Some(1.0));
        assert_eq!(tr.value_at(SimTime::from_us(10)), Some(2.0));
        assert_eq!(tr.value_at(SimTime::from_us(15)), Some(2.0));
    }

    #[test]
    fn csv_contains_header_samples_and_marks() {
        let mut tr = Trace::new("Vcap", SimTime::from_us(1));
        tr.record(SimTime::from_ms(1), 2.25);
        tr.mark(SimTime::from_ms(1), "assert");
        let csv = tr.to_csv();
        assert!(csv.starts_with("time_ms,Vcap\n"));
        assert!(csv.contains("1.000000,2.250000"));
        assert!(csv.contains("# mark,1.000000,assert"));
    }

    #[test]
    fn window_is_half_open() {
        let mut tr = Trace::new("v", SimTime::from_us(1));
        for k in 0..10u64 {
            tr.record(SimTime::from_us(k * 2), k as f64);
        }
        let vals: Vec<f64> = tr
            .window(SimTime::from_us(4), SimTime::from_us(10))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn envelope_captures_excursions_decimation_drops() {
        let mut tr = Trace::new("v", SimTime::from_us(10));
        tr.record(SimTime::from_us(0), 2.0);
        tr.record(SimTime::from_us(1), 5.0); // excursion, not stored
        tr.record(SimTime::from_us(2), -1.0); // excursion, not stored
        tr.record(SimTime::from_us(10), 2.1); // stored, carries envelope
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.max(), Some(2.1), "stored stats unchanged");
        assert_eq!(tr.envelope_max(), Some(5.0));
        assert_eq!(tr.envelope_min(), Some(-1.0));
        assert_eq!(tr.envelope().len(), tr.samples().len());
        assert_eq!(tr.envelope()[1], (-1.0, 5.0));
        tr.record(SimTime::from_us(11), 9.0); // pending tail, not stored
        assert_eq!(tr.envelope_max(), Some(9.0), "pending tail visible");
    }

    #[test]
    fn stats_on_empty_trace_are_none() {
        let tr = Trace::new("v", SimTime::from_us(1));
        assert!(tr.is_empty());
        assert_eq!(tr.min(), None);
        assert_eq!(tr.max(), None);
        assert_eq!(tr.mean(), None);
    }

    #[test]
    fn merged_csv_aligns_columns() {
        let mut a = Trace::new("a", SimTime::from_us(1));
        let mut b = Trace::new("b", SimTime::from_us(1));
        a.record(SimTime::from_us(0), 1.0);
        a.record(SimTime::from_us(2), 3.0);
        b.record(SimTime::from_us(1), 5.0);
        let csv = merged_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ms,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].ends_with(",1.000000,"));
        assert!(lines[2].ends_with(",1.000000,5.000000"));
    }
}
