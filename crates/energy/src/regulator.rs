//! The target's on-board regulator.

use serde::{Deserialize, Serialize};

/// A low-dropout linear regulator.
///
/// The WISP-style target regulates its storage-capacitor voltage down to a
/// logic supply (`Vreg` in the paper's Figure 5). The regulator matters to
/// EDB for two reasons: `Vreg` is one of the two analog sense lines, and —
/// as §4.1.2 notes — `Vreg` *sags below its nominal value during a power
/// failure*, which is why EDB needs a tracking level-shifter reference.
/// [`Ldo::output`] reproduces that sag.
///
/// # Example
///
/// ```
/// use edb_energy::Ldo;
/// let ldo = Ldo::new(2.0, 0.1);
/// assert_eq!(ldo.output(3.0), 2.0);          // headroom: regulated
/// assert_eq!(ldo.output(1.5), 1.4);          // dropout: tracks input − 0.1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ldo {
    v_nominal: f64,
    dropout: f64,
    quiescent_current: f64,
}

impl Ldo {
    /// Creates a regulator with `v_nominal` output and `dropout` volts of
    /// required headroom. Quiescent current defaults to 1 µA.
    ///
    /// # Panics
    ///
    /// Panics if `v_nominal` is not strictly positive or `dropout` is
    /// negative.
    pub fn new(v_nominal: f64, dropout: f64) -> Self {
        assert!(v_nominal > 0.0, "nominal voltage must be positive");
        assert!(dropout >= 0.0, "dropout cannot be negative");
        Ldo {
            v_nominal,
            dropout,
            quiescent_current: 1e-6,
        }
    }

    /// The WISP5-like logic supply: 2.0 V nominal, 100 mV dropout.
    pub fn wisp5() -> Self {
        Ldo::new(2.0, 0.1)
    }

    /// Nominal (regulated) output voltage.
    pub fn v_nominal(&self) -> f64 {
        self.v_nominal
    }

    /// Ground current drawn by the regulator itself, amps.
    pub fn quiescent_current(&self) -> f64 {
        self.quiescent_current
    }

    /// Output voltage for a given input (capacitor) voltage: regulated when
    /// there is headroom, sagging with the input when there is not.
    pub fn output(&self, v_in: f64) -> f64 {
        (v_in - self.dropout).clamp(0.0, self.v_nominal)
    }
}

impl Default for Ldo {
    fn default() -> Self {
        Ldo::wisp5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulates_with_headroom() {
        let ldo = Ldo::wisp5();
        assert_eq!(ldo.output(2.4), 2.0);
        assert_eq!(ldo.output(5.0), 2.0);
    }

    #[test]
    fn sags_in_dropout() {
        let ldo = Ldo::wisp5();
        assert!((ldo.output(1.9) - 1.8).abs() < 1e-12);
        assert_eq!(ldo.output(0.05), 0.0);
    }

    #[test]
    fn output_is_monotone_in_input() {
        let ldo = Ldo::wisp5();
        let mut prev = -1.0;
        for k in 0..60 {
            let v = k as f64 * 0.1;
            let out = ldo.output(v);
            assert!(out >= prev);
            prev = out;
        }
    }
}
