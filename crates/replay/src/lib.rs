//! The recording container for deterministic record/replay.
//!
//! A recording captures one simulated debugging run as a byte-stable
//! artifact: the session's rebuildable *spec*, the sequence of typed
//! session operations (the run's only inputs — everything below the
//! session API is a pure function of the seed), periodic full-state
//! *snapshots*, and per-boundary state *digests*. Replay reconstructs
//! any instant by restoring the nearest snapshot and re-executing
//! forward; divergence checking re-executes the whole tape and asserts
//! bit-identity against every recorded snapshot and digest.
//!
//! This crate owns only the format: a canonical binary encoding of the
//! workspace's [`serde::Value`] tree (floats encoded as their IEEE-754
//! bit patterns, so identity means *bit* identity, not `==`), and a
//! chunked container with an FNV-1a digest per chunk. The semantic
//! layers — what a snapshot contains, how an operation re-executes —
//! live in `edb-core`'s `replay` module and in `edb-bench`.
//!
//! # Container layout
//!
//! ```text
//! "EDBR" | version u16 LE | flags u16 LE | chunk*
//! chunk := tag u8 | payload_len u32 LE | payload | fnv u64 LE
//! ```
//!
//! The trailing FNV-1a digest covers the tag, the length bytes, and the
//! payload, so a flipped bit anywhere in a chunk is caught before its
//! payload is interpreted. Unknown chunk tags are an error: a recording
//! is a precision artifact, not a best-effort log.

use serde::Value;
use std::fmt;
use std::path::Path;

/// Container magic: the first four bytes of every recording.
pub const MAGIC: [u8; 4] = *b"EDBR";

/// Current container version.
pub const VERSION: u16 = 1;

const TAG_SPEC: u8 = 1;
const TAG_META: u8 = 2;
const TAG_OP: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;
const TAG_DIGEST: u8 = 5;
const TAG_END: u8 = 6;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a, the digest used for chunks and state encodings.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Starts a digest at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// FNV-1a of `bytes` in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// A malformed or corrupt recording, with the byte offset of the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// Byte offset at which the fault was detected.
    pub offset: usize,
    /// What was wrong.
    pub detail: String,
}

impl FormatError {
    fn new(offset: usize, detail: impl Into<String>) -> Self {
        FormatError {
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recording byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for FormatError {}

// ---------------------------------------------------------------------
// Canonical Value encoding
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0x00;
const VAL_FALSE: u8 = 0x01;
const VAL_TRUE: u8 = 0x02;
const VAL_U64: u8 = 0x03;
const VAL_I64: u8 = 0x04;
const VAL_F64: u8 = 0x05;
const VAL_STR: u8 = 0x06;
const VAL_SEQ: u8 = 0x07;
const VAL_MAP: u8 = 0x08;

/// Appends the canonical binary encoding of `v` to `out`.
///
/// The encoding is injective over `Value` trees and encodes floats as
/// their `to_bits` pattern, so two states encode identically iff they
/// are bit-identical — `-0.0` vs `0.0` and differing NaN payloads are
/// divergences here even though `==` would blur them.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(false) => out.push(VAL_FALSE),
        Value::Bool(true) => out.push(VAL_TRUE),
        Value::U64(x) => {
            out.push(VAL_U64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            out.push(VAL_I64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(VAL_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(VAL_SEQ);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(pairs) => {
            out.push(VAL_MAP);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (k, val) in pairs {
                encode_value(k, out);
                encode_value(val, out);
            }
        }
    }
}

/// The canonical encoding of `v` as an owned buffer.
pub fn value_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

/// FNV-1a digest of the canonical encoding of `v` — the "state digest"
/// used at snapshot boundaries.
pub fn value_digest(v: &Value) -> u64 {
    fnv1a(&value_bytes(v))
}

/// Decodes one canonical `Value` starting at `*pos`, advancing `*pos`.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, FormatError> {
    let at = *pos;
    let tag = *bytes
        .get(at)
        .ok_or_else(|| FormatError::new(at, "truncated value"))?;
    *pos += 1;
    match tag {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_U64 => Ok(Value::U64(take_u64(bytes, pos)?)),
        VAL_I64 => Ok(Value::I64(take_u64(bytes, pos)? as i64)),
        VAL_F64 => Ok(Value::F64(f64::from_bits(take_u64(bytes, pos)?))),
        VAL_STR => {
            let len = take_u32(bytes, pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| FormatError::new(*pos, "truncated string"))?;
            let s = std::str::from_utf8(&bytes[*pos..end])
                .map_err(|_| FormatError::new(*pos, "invalid UTF-8 in string"))?
                .to_string();
            *pos = end;
            Ok(Value::Str(s))
        }
        VAL_SEQ => {
            let n = take_u32(bytes, pos)? as usize;
            let mut items = Vec::new();
            for _ in 0..n {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Seq(items))
        }
        VAL_MAP => {
            let n = take_u32(bytes, pos)? as usize;
            let mut pairs = Vec::new();
            for _ in 0..n {
                let k = decode_value(bytes, pos)?;
                let v = decode_value(bytes, pos)?;
                pairs.push((k, v));
            }
            Ok(Value::Map(pairs))
        }
        other => Err(FormatError::new(
            at,
            format!("unknown value tag {other:#x}"),
        )),
    }
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, FormatError> {
    let end = *pos + 4;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| FormatError::new(*pos, "truncated u32"))?;
    *pos = end;
    Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, FormatError> {
    let end = *pos + 8;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| FormatError::new(*pos, "truncated u64"))?;
    *pos = end;
    Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
}

// ---------------------------------------------------------------------
// Chunked container
// ---------------------------------------------------------------------

/// One chunk of a recording.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// The rebuildable session spec (present when the recorder knew how
    /// the session was constructed, so a fresh process can replay).
    Spec {
        /// The spec as a serialized tree; its meaning belongs to the
        /// layer that recorded it.
        value: Value,
    },
    /// Recording parameters.
    Meta {
        /// Snapshot stride: the recorder's boundary cadence. The unit is
        /// the recorder's to choose; `edb-core`'s replay layer strides by
        /// recorded *operations* between full snapshots.
        stride: u64,
        /// Sim time at which recording started.
        start_ns: u64,
    },
    /// One recorded session operation.
    Op {
        /// Sim time immediately before the operation ran.
        now_ns: u64,
        /// The serialized operation.
        value: Value,
    },
    /// A full-state snapshot at an operation boundary.
    Snapshot {
        /// Sim time of the snapshot.
        now_ns: u64,
        /// The serialized full state.
        state: Value,
    },
    /// A state digest at an operation boundary (worlds that cannot
    /// serialize in full still digest).
    Digest {
        /// Sim time of the digest.
        now_ns: u64,
        /// FNV-1a over the canonical state encoding.
        digest: u64,
    },
    /// End of recording, with the final state digest.
    End {
        /// Sim time when recording stopped.
        now_ns: u64,
        /// Final state digest.
        digest: u64,
    },
}

impl Chunk {
    fn tag(&self) -> u8 {
        match self {
            Chunk::Spec { .. } => TAG_SPEC,
            Chunk::Meta { .. } => TAG_META,
            Chunk::Op { .. } => TAG_OP,
            Chunk::Snapshot { .. } => TAG_SNAPSHOT,
            Chunk::Digest { .. } => TAG_DIGEST,
            Chunk::End { .. } => TAG_END,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Chunk::Spec { value } => encode_value(value, &mut out),
            Chunk::Meta { stride, start_ns } => {
                out.extend_from_slice(&stride.to_le_bytes());
                out.extend_from_slice(&start_ns.to_le_bytes());
            }
            Chunk::Op { now_ns, value } => {
                out.extend_from_slice(&now_ns.to_le_bytes());
                encode_value(value, &mut out);
            }
            Chunk::Snapshot { now_ns, state } => {
                out.extend_from_slice(&now_ns.to_le_bytes());
                encode_value(state, &mut out);
            }
            Chunk::Digest { now_ns, digest } | Chunk::End { now_ns, digest } => {
                out.extend_from_slice(&now_ns.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
            }
        }
        out
    }

    fn decode(tag: u8, payload: &[u8], base: usize) -> Result<Chunk, FormatError> {
        let mut pos = 0usize;
        let chunk = match tag {
            TAG_SPEC => Chunk::Spec {
                value: decode_value(payload, &mut pos)?,
            },
            TAG_META => Chunk::Meta {
                stride: take_u64(payload, &mut pos)?,
                start_ns: take_u64(payload, &mut pos)?,
            },
            TAG_OP => Chunk::Op {
                now_ns: take_u64(payload, &mut pos)?,
                value: decode_value(payload, &mut pos)?,
            },
            TAG_SNAPSHOT => Chunk::Snapshot {
                now_ns: take_u64(payload, &mut pos)?,
                state: decode_value(payload, &mut pos)?,
            },
            TAG_DIGEST => Chunk::Digest {
                now_ns: take_u64(payload, &mut pos)?,
                digest: take_u64(payload, &mut pos)?,
            },
            TAG_END => Chunk::End {
                now_ns: take_u64(payload, &mut pos)?,
                digest: take_u64(payload, &mut pos)?,
            },
            other => {
                return Err(FormatError::new(base, format!("unknown chunk tag {other}")));
            }
        };
        if pos != payload.len() {
            return Err(FormatError::new(
                base + pos,
                format!(
                    "chunk tag {tag}: {} trailing payload bytes",
                    payload.len() - pos
                ),
            ));
        }
        Ok(chunk)
    }
}

/// Serializes `chunks` into a complete recording byte stream.
pub fn write_chunks(chunks: &[Chunk]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    for chunk in chunks {
        let payload = chunk.payload();
        let tag = chunk.tag();
        let len = (payload.len() as u32).to_le_bytes();
        let mut h = Fnv::new();
        h.write(&[tag]);
        h.write(&len);
        h.write(&payload);
        out.push(tag);
        out.extend_from_slice(&len);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&h.finish().to_le_bytes());
    }
    out
}

/// Parses a recording byte stream, verifying every chunk digest.
pub fn read_chunks(bytes: &[u8]) -> Result<Vec<Chunk>, FormatError> {
    if bytes.get(..4) != Some(&MAGIC[..]) {
        return Err(FormatError::new(0, "bad magic (not an EDBR recording)"));
    }
    let mut pos = 4usize;
    let version = u16::from_le_bytes(
        bytes
            .get(pos..pos + 2)
            .ok_or_else(|| FormatError::new(pos, "truncated header"))?
            .try_into()
            .expect("2 bytes"),
    );
    if version != VERSION {
        return Err(FormatError::new(
            pos,
            format!("unsupported version {version} (expected {VERSION})"),
        ));
    }
    pos += 2;
    let flags = u16::from_le_bytes(
        bytes
            .get(pos..pos + 2)
            .ok_or_else(|| FormatError::new(pos, "truncated header"))?
            .try_into()
            .expect("2 bytes"),
    );
    if flags != 0 {
        return Err(FormatError::new(
            pos,
            format!("unsupported flags {flags:#06x}"),
        ));
    }
    pos += 2;
    let mut chunks = Vec::new();
    while pos < bytes.len() {
        let base = pos;
        let tag = bytes[pos];
        pos += 1;
        let len = take_u32(bytes, &mut pos)? as usize;
        let payload = bytes
            .get(pos..pos + len)
            .ok_or_else(|| FormatError::new(pos, "truncated chunk payload"))?;
        pos += len;
        let stored = take_u64(bytes, &mut pos)?;
        let mut h = Fnv::new();
        h.write(&[tag]);
        h.write(&(len as u32).to_le_bytes());
        h.write(payload);
        if h.finish() != stored {
            return Err(FormatError::new(
                base,
                format!("chunk tag {tag}: digest mismatch (corrupt chunk)"),
            ));
        }
        chunks.push(Chunk::decode(tag, payload, base)?);
    }
    Ok(chunks)
}

// ---------------------------------------------------------------------
// Recording: the convenience view over the chunk stream
// ---------------------------------------------------------------------

/// A recording's body entry: the chunk kinds that appear in tape order.
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// A recorded operation.
    Op {
        /// Sim time immediately before the operation.
        now_ns: u64,
        /// The serialized operation.
        value: Value,
    },
    /// A full-state snapshot.
    Snapshot {
        /// Sim time of the snapshot.
        now_ns: u64,
        /// The serialized state.
        state: Value,
    },
    /// A digest-only boundary.
    Digest {
        /// Sim time of the digest.
        now_ns: u64,
        /// The state digest.
        digest: u64,
    },
}

/// A parsed recording: header fields plus the ordered tape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recording {
    /// The rebuildable session spec, when recorded.
    pub spec: Option<Value>,
    /// Snapshot stride: recorded operations between full snapshots (see
    /// [`Chunk::Meta`]).
    pub stride: u64,
    /// Sim time at which recording started.
    pub start_ns: u64,
    /// Ops, snapshots, and digests in tape order.
    pub entries: Vec<Entry>,
    /// Final `(now_ns, digest)` pair, once the recording is finished.
    pub end: Option<(u64, u64)>,
}

impl Recording {
    /// Serializes to the container byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut chunks = Vec::new();
        if let Some(spec) = &self.spec {
            chunks.push(Chunk::Spec {
                value: spec.clone(),
            });
        }
        chunks.push(Chunk::Meta {
            stride: self.stride,
            start_ns: self.start_ns,
        });
        for entry in &self.entries {
            chunks.push(match entry {
                Entry::Op { now_ns, value } => Chunk::Op {
                    now_ns: *now_ns,
                    value: value.clone(),
                },
                Entry::Snapshot { now_ns, state } => Chunk::Snapshot {
                    now_ns: *now_ns,
                    state: state.clone(),
                },
                Entry::Digest { now_ns, digest } => Chunk::Digest {
                    now_ns: *now_ns,
                    digest: *digest,
                },
            });
        }
        if let Some((now_ns, digest)) = self.end {
            chunks.push(Chunk::End { now_ns, digest });
        }
        write_chunks(&chunks)
    }

    /// Parses a recording from the container byte stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, FormatError> {
        let mut rec = Recording::default();
        let mut saw_meta = false;
        for chunk in read_chunks(bytes)? {
            if rec.end.is_some() {
                return Err(FormatError::new(bytes.len(), "chunk after End chunk"));
            }
            match chunk {
                Chunk::Spec { value } => rec.spec = Some(value),
                Chunk::Meta { stride, start_ns } => {
                    rec.stride = stride;
                    rec.start_ns = start_ns;
                    saw_meta = true;
                }
                Chunk::Op { now_ns, value } => rec.entries.push(Entry::Op { now_ns, value }),
                Chunk::Snapshot { now_ns, state } => {
                    rec.entries.push(Entry::Snapshot { now_ns, state });
                }
                Chunk::Digest { now_ns, digest } => {
                    rec.entries.push(Entry::Digest { now_ns, digest });
                }
                Chunk::End { now_ns, digest } => rec.end = Some((now_ns, digest)),
            }
        }
        if !saw_meta {
            return Err(FormatError::new(8, "recording has no Meta chunk"));
        }
        // The End chunk doubles as the terminator: a stream truncated at
        // a clean chunk boundary would otherwise parse as a silently
        // shorter recording.
        if rec.end.is_none() {
            return Err(FormatError::new(bytes.len(), "recording has no End chunk"));
        }
        Ok(rec)
    }

    /// Writes the recording to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a recording from `path`.
    pub fn load(path: &Path) -> std::io::Result<Recording> {
        let bytes = std::fs::read(path)?;
        Recording::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The number of recorded operations.
    pub fn op_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Entry::Op { .. }))
            .count()
    }

    /// The number of snapshot entries.
    pub fn snapshot_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Entry::Snapshot { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recording() -> Recording {
        Recording {
            spec: Some(Value::Map(vec![(
                Value::Str("kind".into()),
                Value::Str("demo".into()),
            )])),
            stride: 50_000_000,
            start_ns: 0,
            entries: vec![
                Entry::Snapshot {
                    now_ns: 0,
                    state: Value::Seq(vec![Value::U64(1), Value::F64(2.5)]),
                },
                Entry::Op {
                    now_ns: 0,
                    value: Value::Map(vec![(
                        Value::Str("Advance".into()),
                        Value::Map(vec![(Value::Str("ns".into()), Value::U64(1000))]),
                    )]),
                },
                Entry::Digest {
                    now_ns: 1000,
                    digest: 0xDEAD_BEEF,
                },
            ],
            end: Some((1000, 0xDEAD_BEEF)),
        }
    }

    #[test]
    fn container_round_trips() {
        let rec = sample_recording();
        let bytes = rec.to_bytes();
        assert_eq!(&bytes[..4], b"EDBR");
        let back = Recording::from_bytes(&bytes).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.op_count(), 1);
        assert_eq!(back.snapshot_count(), 1);
    }

    #[test]
    fn encoding_is_byte_stable() {
        let rec = sample_recording();
        assert_eq!(rec.to_bytes(), rec.to_bytes());
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        // Flip one bit at a time across the whole stream: every
        // corruption must surface as an error, never as a silently
        // different recording.
        let rec = sample_recording();
        let bytes = rec.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            match Recording::from_bytes(&bad) {
                Err(_) => {}
                Ok(parsed) => {
                    panic!("flip at byte {i} parsed silently: {parsed:?}");
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_recording().to_bytes();
        for cut in 1..bytes.len() {
            assert!(
                Recording::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn float_encoding_is_bitwise() {
        // -0.0 vs 0.0 compare equal as floats but are different states.
        let a = value_bytes(&Value::F64(0.0));
        let b = value_bytes(&Value::F64(-0.0));
        assert_ne!(a, b);
        // NaN payloads round-trip exactly.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let enc = value_bytes(&Value::F64(nan));
        let mut pos = 0;
        match decode_value(&enc, &mut pos).expect("decodes") {
            Value::F64(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_codec_round_trips_nested_trees() {
        let v = Value::Map(vec![
            (Value::Str("null".into()), Value::Null),
            (
                Value::Str("bools".into()),
                Value::Seq(vec![Value::Bool(true), Value::Bool(false)]),
            ),
            (Value::U64(7), Value::I64(-12)),
            (
                Value::Str("nested".into()),
                Value::Map(vec![(Value::Str("s".into()), Value::Str("héllo".into()))]),
            ),
        ]);
        let enc = value_bytes(&v);
        let mut pos = 0;
        let back = decode_value(&enc, &mut pos).expect("decodes");
        assert_eq!(pos, enc.len());
        assert_eq!(back, v);
        assert_eq!(value_digest(&back), value_digest(&v));
    }

    #[test]
    fn unknown_chunk_tags_are_rejected() {
        let mut bytes = write_chunks(&[]);
        // Append a chunk with tag 99 and a valid digest.
        let payload: &[u8] = &[];
        let mut h = Fnv::new();
        h.write(&[99]);
        h.write(&0u32.to_le_bytes());
        h.write(payload);
        bytes.push(99);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&h.finish().to_le_bytes());
        let err = read_chunks(&bytes).unwrap_err();
        assert!(err.detail.contains("unknown chunk tag"), "{err}");
    }
}
