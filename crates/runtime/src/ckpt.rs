//! The checkpoint-strategy zoo: competing host-side checkpoint engines
//! raced under the same power-failure model.
//!
//! The assembly runtime in the crate root is *target-side*: the program
//! spends its own (scarce) energy collecting checkpoints. This module is
//! the *EDB-assisted* alternative the paper's hardware makes possible —
//! the debugger snapshots volatile state over its side channel at zero
//! energy cost to the target, and the interesting question becomes
//! *policy*: what to write, and when. Three strategies from the
//! post-paper literature compete behind one trait:
//!
//! * [`FullDump`] — Mementos-style: every trigger writes the complete
//!   volatile context (registers + all of SRAM) to FRAM.
//! * [`Differential`] — DiCA-style: a dirty-word write probe
//!   ([`Memory::set_dirty_tracking`]) records which SRAM words changed
//!   since the last base image; triggers append a cumulative delta
//!   record, rebasing to a fresh full image when the delta log fills.
//! * [`Speculative`] — compiler-directed-speculation-style: triggers
//!   only *stage* a snapshot in host RAM; the staged image is committed
//!   to FRAM when the capacitor sags through the Vcap knee
//!   ([`edb_energy::KneeDetector`]), falling back to an emergency full
//!   dump when the knee arrives with nothing staged.
//!
//! # Atomic commit
//!
//! Every strategy commits through the same double-buffered record
//! machinery: two sequence-numbered header slots, each FNV-64-digested
//! over exactly the bytes a restore of that record would read, and two
//! payload arena halves. A commit is an ordered list of byte writes
//! ([`CommitPlan`]) — payload first, header last — into FRAM the
//! currently-valid record never references. Power can fail after *any
//! prefix* of those bytes and [`CkptEngine::committed_snapshot`] still
//! yields the previous image bit-for-bit (proven exhaustively by the
//! teardown tests, which truncate the write list at every byte offset).
//!
//! # FRAM layout
//!
//! The zoo owns `ZOO_ORG .. ZOO_END` at the top of FRAM, clear of
//! application data (the paper apps' heap ends at `0xD000`) and the
//! target-side runtime (`CHECKPOINT_ORG = 0xD000`), and below the
//! interrupt/reset vectors at `0xFFFC`:
//!
//! ```text
//! ZOO_ORG +0     header slot 0   (32 B)
//!         +32    header slot 1   (32 B)
//!         +64    arena half 0    (2084 B base image + 1024 B delta log)
//!         +3172  arena half 1    (2084 B base image + 1024 B delta log)
//! ```

use edb_device::Device;
use edb_energy::{KneeDetector, PowerEdge};
use edb_mcu::cpu::Flags;
use edb_mcu::{Cpu, Memory};
use serde::{DeError, Deserialize, Serialize, Value};

/// First byte of the zoo's FRAM region.
pub const ZOO_ORG: u16 = 0xE700;
/// Bytes reserved per header slot (20 used, padded for alignment).
const HDR_BYTES: u16 = 32;
/// Bytes of volatile SRAM in an image (mirrors `edb_mcu::mem`).
const SRAM_BYTES: usize = (edb_mcu::mem::SRAM_END - edb_mcu::mem::SRAM_START) as usize;
const SRAM_START: u16 = edb_mcu::mem::SRAM_START;
/// Architectural context bytes: 16 registers + pc + packed flags word.
const CTX_BYTES: usize = 36;
/// Bytes of a full base image: context followed by the SRAM snapshot.
pub const IMAGE_BYTES: usize = CTX_BYTES + SRAM_BYTES;
/// Bytes of each arena half's delta log.
pub const LOG_BYTES: u16 = 1024;
/// Bytes per arena half: base image + delta log.
const HALF_BYTES: u16 = IMAGE_BYTES as u16 + LOG_BYTES;
const HDR0: u16 = ZOO_ORG;
const HDR1: u16 = ZOO_ORG + HDR_BYTES;
const HALF0: u16 = ZOO_ORG + 2 * HDR_BYTES;
const HALF1: u16 = HALF0 + HALF_BYTES;
/// One past the last byte of the zoo region (must stay below `0xFFFC`,
/// the interrupt vector — checked by test).
pub const ZOO_END: u16 = HALF1 + HALF_BYTES;
/// Header magic ("EDB zoo, issue 9").
const MAGIC: u16 = 0xEDB9;

const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// FNV-1a over concatenated byte slices, the digest sealing every
/// commit record.
fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn base_addr(half: u8) -> u16 {
    if half == 0 {
        HALF0
    } else {
        HALF1
    }
}

fn log_addr(half: u8) -> u16 {
    base_addr(half) + IMAGE_BYTES as u16
}

// ---------------------------------------------------------------------
// Snapshot: one volatile context
// ---------------------------------------------------------------------

/// A captured volatile context: everything a brown-out erases.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// General-purpose registers.
    pub regs: [u16; 16],
    /// Program counter.
    pub pc: u16,
    /// Packed flags word: `z | n<<1 | c<<2 | v<<3 | ie<<4`.
    pub flags: u16,
    /// The complete SRAM image.
    pub sram: Vec<u8>,
}

impl Snapshot {
    /// Captures the device's current volatile context.
    pub fn capture(dev: &Device) -> Self {
        let cpu = dev.cpu();
        let f = cpu.flags;
        let flags = u16::from(f.z)
            | u16::from(f.n) << 1
            | u16::from(f.c) << 2
            | u16::from(f.v) << 3
            | u16::from(cpu.ie) << 4;
        Snapshot {
            regs: cpu.regs,
            pc: cpu.pc,
            flags,
            sram: dev.mem().sram().to_vec(),
        }
    }

    /// Installs this context onto a freshly power-cycled device. The CPU
    /// must already be running (post-reset); only architectural state
    /// and SRAM are written.
    pub fn install(&self, dev: &mut Device) {
        {
            let cpu: &mut Cpu = dev.cpu_mut();
            cpu.regs = self.regs;
            cpu.pc = self.pc;
            cpu.flags = Flags {
                z: self.flags & 1 != 0,
                n: self.flags & 2 != 0,
                c: self.flags & 4 != 0,
                v: self.flags & 8 != 0,
            };
            cpu.ie = self.flags & 16 != 0;
        }
        let mem = dev.mem_mut();
        for (i, &b) in self.sram.iter().enumerate() {
            mem.write_byte(SRAM_START + i as u16, b);
        }
    }

    /// The image encoding: registers LE, pc, flags word, SRAM bytes.
    fn image_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IMAGE_BYTES);
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.sram);
        out
    }

    /// Decodes an image from `IMAGE_BYTES` of FRAM.
    fn from_image_bytes(bytes: &[u8]) -> Self {
        let mut regs = [0u16; 16];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
        }
        Snapshot {
            regs,
            pc: u16::from_le_bytes([bytes[32], bytes[33]]),
            flags: u16::from_le_bytes([bytes[34], bytes[35]]),
            sram: bytes[CTX_BYTES..IMAGE_BYTES].to_vec(),
        }
    }

    /// The 36-byte context prefix alone (delta records carry it).
    fn ctx_bytes(&self) -> Vec<u8> {
        self.image_bytes()[..CTX_BYTES].to_vec()
    }
}

// ---------------------------------------------------------------------
// Commit records
// ---------------------------------------------------------------------

/// A parsed commit-record header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Header {
    seq: u32,
    kind: u8,
    half: u8,
    delta_off: u16,
    delta_len: u16,
    digest: u64,
}

impl Header {
    /// The 12 digest-covered prefix bytes: magic, seq, kind, half,
    /// delta_off, delta_len.
    fn prefix_bytes(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        out[2..6].copy_from_slice(&self.seq.to_le_bytes());
        out[6] = self.kind;
        out[7] = self.half;
        out[8..10].copy_from_slice(&self.delta_off.to_le_bytes());
        out[10..12].copy_from_slice(&self.delta_len.to_le_bytes());
        out
    }

    /// The full 20-byte header encoding (prefix + digest).
    fn bytes(&self) -> [u8; 20] {
        let mut out = [0u8; 20];
        out[0..12].copy_from_slice(&self.prefix_bytes());
        out[12..20].copy_from_slice(&self.digest.to_le_bytes());
        out
    }

    /// Parses a header from a slot; `None` when the magic is absent.
    fn parse(mem: &Memory, slot: u16) -> Option<Header> {
        let read = |off: u16| mem.peek_byte(slot + off);
        if u16::from_le_bytes([read(0), read(1)]) != MAGIC {
            return None;
        }
        Some(Header {
            seq: u32::from_le_bytes([read(2), read(3), read(4), read(5)]),
            kind: read(6),
            half: read(7),
            delta_off: u16::from_le_bytes([read(8), read(9)]),
            delta_len: u16::from_le_bytes([read(10), read(11)]),
            digest: u64::from_le_bytes([
                read(12),
                read(13),
                read(14),
                read(15),
                read(16),
                read(17),
                read(18),
                read(19),
            ]),
        })
    }
}

/// Reads a span of FRAM without disturbing fault counters.
fn peek_span(mem: &Memory, addr: u16, len: usize) -> Vec<u8> {
    (0..len).map(|i| mem.peek_byte(addr + i as u16)).collect()
}

/// Validates the record in `slot` against the payload bytes it
/// references. Returns the header, the reconstructed snapshot, the word
/// addresses its delta covered (empty for full records), and the number
/// of payload bytes a restore reads.
fn validate_slot(mem: &Memory, slot: u16) -> Option<(Header, Snapshot, Vec<u16>, u64)> {
    let hdr = Header::parse(mem, slot)?;
    if hdr.half > 1 || hdr.kind > KIND_DELTA {
        return None;
    }
    let base = peek_span(mem, base_addr(hdr.half), IMAGE_BYTES);
    let (snap, words, read) = match hdr.kind {
        KIND_FULL => {
            if hdr.delta_len != 0 {
                return None;
            }
            if fnv64(&[&hdr.prefix_bytes(), &base]) != hdr.digest {
                return None;
            }
            (
                Snapshot::from_image_bytes(&base),
                Vec::new(),
                IMAGE_BYTES as u64,
            )
        }
        _ => {
            // Delta: the record must fit the log and parse exactly.
            if u32::from(hdr.delta_off) + u32::from(hdr.delta_len) > u32::from(LOG_BYTES) {
                return None;
            }
            let rec = peek_span(
                mem,
                log_addr(hdr.half) + hdr.delta_off,
                hdr.delta_len as usize,
            );
            if fnv64(&[&hdr.prefix_bytes(), &base, &rec]) != hdr.digest {
                return None;
            }
            if rec.len() < CTX_BYTES + 2 {
                return None;
            }
            let n = u16::from_le_bytes([rec[CTX_BYTES], rec[CTX_BYTES + 1]]) as usize;
            if rec.len() != CTX_BYTES + 2 + 4 * n {
                return None;
            }
            let mut snap = Snapshot::from_image_bytes(&base);
            // Context comes from the delta record, not the base.
            let ctx = Snapshot::from_image_bytes(
                &[&rec[..CTX_BYTES], &vec![0u8; SRAM_BYTES][..]].concat(),
            );
            snap.regs = ctx.regs;
            snap.pc = ctx.pc;
            snap.flags = ctx.flags;
            let mut words = Vec::with_capacity(n);
            for e in 0..n {
                let at = CTX_BYTES + 2 + 4 * e;
                let addr = u16::from_le_bytes([rec[at], rec[at + 1]]);
                if !Memory::is_sram(addr) || !addr.is_multiple_of(2) {
                    return None;
                }
                let idx = (addr - SRAM_START) as usize;
                snap.sram[idx] = rec[at + 2];
                snap.sram[idx + 1] = rec[at + 3];
                words.push(addr);
            }
            (snap, words, (IMAGE_BYTES + rec.len()) as u64)
        }
    };
    Some((hdr, snap, words, read))
}

/// Scans both header slots and returns the valid record with the higher
/// sequence number, if any.
fn read_valid(mem: &Memory) -> Option<(Header, Snapshot, Vec<u16>, u64)> {
    let a = validate_slot(mem, HDR0);
    let b = validate_slot(mem, HDR1);
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.0.seq >= b.0.seq { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// An atomic commit, expressed as the exact ordered byte writes it
/// performs: payload first, header slot last. The teardown tests apply
/// arbitrary prefixes of this list to prove power can fail at any byte.
#[derive(Clone, Debug)]
pub struct CommitPlan {
    writes: Vec<(u16, u8)>,
    seq: u32,
    arena: Arena,
    rebased: bool,
    snapshot: Snapshot,
}

impl CommitPlan {
    /// The ordered `(address, byte)` writes of this commit.
    pub fn writes(&self) -> &[(u16, u8)] {
        &self.writes
    }

    /// The sequence number this commit takes.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Whether this commit writes a fresh base image (true for every
    /// full dump, and for a differential rebase).
    pub fn rebased(&self) -> bool {
        self.rebased
    }

    /// The snapshot this commit makes durable.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Which zoo member a session runs (the replay tape records this, so
/// reproducers re-run under the same strategy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Full volatile image on every trigger (Mementos-style).
    FullDump,
    /// Dirty-word deltas chained to a base image (DiCA-style).
    Differential,
    /// Defer commit to the Vcap knee (speculative-intermittent-style).
    Speculative,
}

impl StrategyKind {
    /// Every zoo member, in race order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::FullDump,
        StrategyKind::Differential,
        StrategyKind::Speculative,
    ];

    /// Stable lowercase name (CLI flags, bench metric keys).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::FullDump => "full_dump",
            StrategyKind::Differential => "differential",
            StrategyKind::Speculative => "speculative",
        }
    }

    /// Parses [`StrategyKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Engine configuration: strategy plus the instruction-count trigger
/// cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CkptConfig {
    /// Which strategy runs.
    pub strategy: StrategyKind,
    /// Instructions between checkpoint triggers.
    pub interval: u64,
}

impl CkptConfig {
    /// A config with the default trigger cadence (512 instructions —
    /// frequent enough that every power cycle of the WISP energy budget
    /// sees several triggers).
    pub fn new(strategy: StrategyKind) -> Self {
        CkptConfig {
            strategy,
            interval: 512,
        }
    }

    /// Overrides the trigger cadence.
    pub fn interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "trigger interval must be positive");
        self.interval = interval;
        self
    }
}

/// What the engine should do in response to a policy callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Nothing this time.
    Skip,
    /// Commit a full volatile image now.
    Full,
    /// Commit a dirty-word delta now (rebases when the log is full).
    Delta,
    /// Capture a snapshot into host RAM without touching FRAM.
    Stage,
    /// Durably commit the staged snapshot (emergency full dump of the
    /// live state when nothing is staged).
    CommitStaged,
}

/// A checkpoint *policy*: decides when the engine commits and in what
/// form. The engine owns all mechanics (capture, atomic commit records,
/// restore); implementations are pure decision logic plus whatever
/// probes they arm on the target's memory.
pub trait CheckpointStrategy: Send {
    /// Which zoo member this is.
    fn kind(&self) -> StrategyKind;

    /// Called when the engine attaches to (or restores) a device, to arm
    /// memory probes.
    fn attach(&mut self, mem: &mut Memory) {
        let _ = mem;
    }

    /// Policy decision at an interval trigger (the device is powered and
    /// running).
    fn on_trigger(&mut self) -> Plan;

    /// Policy decision on each capacitor-voltage sample.
    fn on_sample(&mut self, v_cap: f64) -> Plan {
        let _ = v_cap;
        Plan::Skip
    }

    /// Called after the engine applies a commit; `rebased` reports
    /// whether a fresh base image was written.
    fn after_commit(&mut self, mem: &mut Memory, rebased: bool) {
        let _ = (mem, rebased);
    }

    /// Called after the engine restores a committed record;
    /// `delta_words` are the SRAM word addresses the record's delta
    /// covered (empty for full records).
    fn after_restore(&mut self, mem: &mut Memory, delta_words: &[u16]) {
        let _ = (mem, delta_words);
    }

    /// Serializes policy-internal state for snapshots.
    fn save(&self) -> Value {
        Value::Null
    }

    /// Restores policy-internal state from [`CheckpointStrategy::save`].
    fn load(&mut self, v: &Value) -> Result<(), DeError> {
        let _ = v;
        Ok(())
    }

    /// Clones the strategy behind the object.
    fn boxed_clone(&self) -> Box<dyn CheckpointStrategy>;
}

/// Builds the strategy a [`StrategyKind`] names.
pub fn build_strategy(kind: StrategyKind) -> Box<dyn CheckpointStrategy> {
    match kind {
        StrategyKind::FullDump => Box::new(FullDump),
        StrategyKind::Differential => Box::new(Differential),
        StrategyKind::Speculative => Box::new(Speculative::default()),
    }
}

/// Mementos-style: every trigger commits the complete volatile image.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullDump;

impl CheckpointStrategy for FullDump {
    fn kind(&self) -> StrategyKind {
        StrategyKind::FullDump
    }

    fn on_trigger(&mut self) -> Plan {
        Plan::Full
    }

    fn boxed_clone(&self) -> Box<dyn CheckpointStrategy> {
        Box::new(*self)
    }
}

/// DiCA-style: arm the dirty-word probe; every trigger commits a
/// cumulative delta against the base image.
#[derive(Clone, Copy, Debug, Default)]
pub struct Differential;

impl CheckpointStrategy for Differential {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Differential
    }

    fn attach(&mut self, mem: &mut Memory) {
        if !mem.dirty_tracking() {
            mem.set_dirty_tracking(true);
        }
    }

    fn on_trigger(&mut self) -> Plan {
        Plan::Delta
    }

    fn after_commit(&mut self, mem: &mut Memory, rebased: bool) {
        if rebased {
            // The new base *is* the current state: everything clean.
            mem.seed_dirty_words(&[]);
        }
        // Non-rebase deltas keep accumulating against the same base.
    }

    fn after_restore(&mut self, mem: &mut Memory, delta_words: &[u16]) {
        // Post-restore SRAM equals base + delta, so exactly the delta's
        // words may differ from the base image.
        if !mem.dirty_tracking() {
            mem.set_dirty_tracking(true);
        }
        mem.seed_dirty_words(delta_words);
    }

    fn boxed_clone(&self) -> Box<dyn CheckpointStrategy> {
        Box::new(*self)
    }
}

/// Speculative commit-on-knee: triggers stage in host RAM; the staged
/// image is committed when the capacitor sags through the knee, with an
/// emergency full dump when the knee arrives unstaged.
#[derive(Clone, Copy, Debug)]
pub struct Speculative {
    knee: KneeDetector,
}

impl Default for Speculative {
    fn default() -> Self {
        Speculative {
            knee: KneeDetector::wisp5(),
        }
    }
}

impl CheckpointStrategy for Speculative {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Speculative
    }

    fn on_trigger(&mut self) -> Plan {
        Plan::Stage
    }

    fn on_sample(&mut self, v_cap: f64) -> Plan {
        if self.knee.update(v_cap) {
            Plan::CommitStaged
        } else {
            Plan::Skip
        }
    }

    fn save(&self) -> Value {
        self.knee.to_value()
    }

    fn load(&mut self, v: &Value) -> Result<(), DeError> {
        self.knee = KneeDetector::from_value(v)?;
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn CheckpointStrategy> {
        Box::new(*self)
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Which arena half holds the current base image and how much of its
/// delta log is consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Arena {
    half: u8,
    log_used: u16,
}

/// Checkpoint cost and activity counters, reported by the bench sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CkptStats {
    /// Commits applied (full + delta + emergency).
    pub commits: u64,
    /// Commits that wrote a fresh base image.
    pub full_dumps: u64,
    /// Delta-record commits.
    pub delta_commits: u64,
    /// Emergency full dumps (knee with nothing staged).
    pub emergency_dumps: u64,
    /// Snapshots staged in host RAM (speculative only).
    pub staged: u64,
    /// Total FRAM bytes written by commits.
    pub bytes_written: u64,
    /// Successful restores after turn-on.
    pub restores: u64,
    /// Total FRAM bytes read by restores.
    pub restore_bytes: u64,
    /// Turn-ons with no committed record (cold boots).
    pub cold_boots: u64,
}

/// The host-side checkpoint engine: one strategy, the atomic commit
/// machinery, and restore-on-turn-on.
///
/// Drive it by calling [`CkptEngine::observe`] after every device step
/// (the core `System` does this when built
/// `with_checkpoint_strategy`). All FRAM traffic happens between target
/// instructions through the debugger's side channel, so the engine is
/// energy-interference-free by construction: the target's power
/// trajectory is bit-identical with and without it *until the first
/// restore changes execution*.
pub struct CkptEngine {
    config: CkptConfig,
    strategy: Box<dyn CheckpointStrategy>,
    next_trigger: u64,
    seq: u32,
    arena: Option<Arena>,
    staged: Option<Snapshot>,
    stats: CkptStats,
}

impl std::fmt::Debug for CkptEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptEngine")
            .field("strategy", &self.config.strategy.name())
            .field("interval", &self.config.interval)
            .field("seq", &self.seq)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Clone for CkptEngine {
    fn clone(&self) -> Self {
        CkptEngine {
            config: self.config,
            strategy: self.strategy.boxed_clone(),
            next_trigger: self.next_trigger,
            seq: self.seq,
            arena: self.arena,
            staged: self.staged.clone(),
            stats: self.stats,
        }
    }
}

impl CkptEngine {
    /// Creates an engine for `config`. Call [`CkptEngine::attach`]
    /// before stepping so the strategy can arm its probes.
    pub fn new(config: CkptConfig) -> Self {
        CkptEngine {
            config,
            strategy: build_strategy(config.strategy),
            next_trigger: config.interval,
            seq: 0,
            arena: None,
            staged: None,
            stats: CkptStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> CkptConfig {
        self.config
    }

    /// Activity counters so far.
    pub fn stats(&self) -> CkptStats {
        self.stats
    }

    /// Sequence number of the most recent commit (0 before any).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Arms the strategy's probes on the target memory.
    pub fn attach(&mut self, mem: &mut Memory) {
        self.strategy.attach(mem);
    }

    /// The per-step hook: feed the power edge (if any) the step
    /// produced. Brown-outs void staged state, turn-ons restore the
    /// committed record, and quiet powered steps run the strategy's
    /// trigger/sample policy.
    pub fn observe(&mut self, dev: &mut Device, edge: Option<PowerEdge>) {
        match edge {
            Some(PowerEdge::BrownOut) => {
                // Anything staged in host RAM describes a future the
                // target just lost; committing it now would checkpoint
                // state the restored execution never reached.
                self.staged = None;
            }
            Some(PowerEdge::TurnOn) => {
                self.restore(dev);
            }
            None => {
                if !dev.powered() || !dev.cpu().is_running() {
                    return;
                }
                let total = dev.total_instructions();
                if total >= self.next_trigger {
                    self.next_trigger = total + self.config.interval;
                    match self.strategy.on_trigger() {
                        Plan::Full => {
                            let plan = self.plan_full(Snapshot::capture(dev));
                            self.apply_plan(dev.mem_mut(), &plan);
                        }
                        Plan::Delta => {
                            let plan = self.plan_delta(dev);
                            self.apply_plan(dev.mem_mut(), &plan);
                        }
                        Plan::Stage => {
                            self.staged = Some(Snapshot::capture(dev));
                            self.stats.staged += 1;
                        }
                        Plan::Skip | Plan::CommitStaged => {}
                    }
                }
                if self.strategy.on_sample(dev.v_cap()) == Plan::CommitStaged {
                    let plan = match self.staged.take() {
                        Some(snap) => self.plan_full(snap),
                        None => {
                            self.stats.emergency_dumps += 1;
                            self.plan_full(Snapshot::capture(dev))
                        }
                    };
                    self.apply_plan(dev.mem_mut(), &plan);
                }
            }
        }
    }

    /// Plans the next commit exactly as [`CkptEngine::observe`] would
    /// issue it at a trigger right now (teardown tests truncate the
    /// result at every byte offset).
    pub fn plan_next(&self, dev: &Device) -> CommitPlan {
        match self.config.strategy {
            StrategyKind::Differential => self.plan_delta(dev),
            _ => self.plan_full(Snapshot::capture(dev)),
        }
    }

    /// Plans a full-image commit of `snap` into the inactive arena half.
    fn plan_full(&self, snap: Snapshot) -> CommitPlan {
        let half = match self.arena {
            Some(a) => 1 - a.half,
            None => 0,
        };
        let seq = self.seq + 1;
        let image = snap.image_bytes();
        let hdr = {
            let mut h = Header {
                seq,
                kind: KIND_FULL,
                half,
                delta_off: 0,
                delta_len: 0,
                digest: 0,
            };
            h.digest = fnv64(&[&h.prefix_bytes(), &image]);
            h
        };
        let mut writes = Vec::with_capacity(image.len() + 20);
        let base = base_addr(half);
        for (i, &b) in image.iter().enumerate() {
            writes.push((base + i as u16, b));
        }
        let slot = if seq.is_multiple_of(2) { HDR0 } else { HDR1 };
        for (i, &b) in hdr.bytes().iter().enumerate() {
            writes.push((slot + i as u16, b));
        }
        CommitPlan {
            writes,
            seq,
            arena: Arena { half, log_used: 0 },
            rebased: true,
            snapshot: snap,
        }
    }

    /// Plans a delta commit: the cumulative dirty-word set against the
    /// current base, falling back to a rebase (full image into the other
    /// half) when there is no base yet or the record would overflow the
    /// log.
    fn plan_delta(&self, dev: &Device) -> CommitPlan {
        let snap = Snapshot::capture(dev);
        let Some(arena) = self.arena else {
            return self.plan_full(snap);
        };
        let dirty = dev.mem().dirty_word_addrs();
        let rec_len = CTX_BYTES + 2 + 4 * dirty.len();
        if arena.log_used as usize + rec_len > LOG_BYTES as usize {
            return self.plan_full(snap);
        }
        let mut rec = Vec::with_capacity(rec_len);
        rec.extend_from_slice(&snap.ctx_bytes());
        rec.extend_from_slice(&(dirty.len() as u16).to_le_bytes());
        for &addr in &dirty {
            let idx = (addr - SRAM_START) as usize;
            rec.extend_from_slice(&addr.to_le_bytes());
            rec.push(snap.sram[idx]);
            rec.push(snap.sram[idx + 1]);
        }
        let seq = self.seq + 1;
        let base = peek_span(dev.mem(), base_addr(arena.half), IMAGE_BYTES);
        let hdr = {
            let mut h = Header {
                seq,
                kind: KIND_DELTA,
                half: arena.half,
                delta_off: arena.log_used,
                delta_len: rec_len as u16,
                digest: 0,
            };
            h.digest = fnv64(&[&h.prefix_bytes(), &base, &rec]);
            h
        };
        let mut writes = Vec::with_capacity(rec_len + 20);
        let at = log_addr(arena.half) + arena.log_used;
        for (i, &b) in rec.iter().enumerate() {
            writes.push((at + i as u16, b));
        }
        let slot = if seq.is_multiple_of(2) { HDR0 } else { HDR1 };
        for (i, &b) in hdr.bytes().iter().enumerate() {
            writes.push((slot + i as u16, b));
        }
        CommitPlan {
            writes,
            seq,
            arena: Arena {
                half: arena.half,
                log_used: arena.log_used + rec_len as u16,
            },
            rebased: false,
            snapshot: snap,
        }
    }

    /// Applies a planned commit: writes every byte in order, then
    /// advances the engine's record state and notifies the strategy.
    pub fn apply_plan(&mut self, mem: &mut Memory, plan: &CommitPlan) {
        for &(addr, b) in &plan.writes {
            mem.write_byte(addr, b);
        }
        self.seq = plan.seq;
        self.arena = Some(plan.arena);
        self.stats.commits += 1;
        self.stats.bytes_written += plan.writes.len() as u64;
        if plan.rebased {
            self.stats.full_dumps += 1;
        } else {
            self.stats.delta_commits += 1;
        }
        self.strategy.after_commit(mem, plan.rebased);
    }

    /// Restores the committed record onto a freshly turned-on device.
    /// Returns whether a record was found (otherwise the boot proceeds
    /// cold from the reset vector).
    pub fn restore(&mut self, dev: &mut Device) -> bool {
        let Some((hdr, snap, delta_words, read)) = read_valid(dev.mem()) else {
            self.stats.cold_boots += 1;
            self.seq = 0;
            self.arena = None;
            self.strategy.attach(dev.mem_mut());
            return false;
        };
        snap.install(dev);
        self.seq = hdr.seq;
        self.arena = Some(Arena {
            half: hdr.half,
            log_used: hdr.delta_off + hdr.delta_len,
        });
        self.staged = None;
        self.next_trigger = dev.total_instructions() + self.config.interval;
        self.stats.restores += 1;
        self.stats.restore_bytes += read + 2 * 20;
        self.strategy.after_restore(dev.mem_mut(), &delta_words);
        true
    }

    /// The snapshot the committed record in `mem` would restore, with
    /// its sequence number — the oracle the teardown tests compare
    /// against. Pure: reads FRAM only.
    pub fn committed_snapshot(mem: &Memory) -> Option<(u32, Snapshot)> {
        read_valid(mem).map(|(hdr, snap, _, _)| (hdr.seq, snap))
    }
}

// The engine serializes for System snapshots (time travel across a
// bench that runs the zoo). Strategy internals ride along via the
// trait's save/load hooks.
impl Serialize for CkptEngine {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (Value::Str("config".into()), self.config.to_value()),
            (
                Value::Str("next_trigger".into()),
                self.next_trigger.to_value(),
            ),
            (Value::Str("seq".into()), self.seq.to_value()),
            (Value::Str("arena".into()), self.arena.to_value()),
            (Value::Str("staged".into()), self.staged.to_value()),
            (Value::Str("stats".into()), self.stats.to_value()),
            (Value::Str("strategy".into()), self.strategy.save()),
        ])
    }
}

impl Deserialize for CkptEngine {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| DeError::new(format!("CkptEngine state missing `{name}`")))
        };
        let config = CkptConfig::from_value(field("config")?)?;
        let mut engine = CkptEngine::new(config);
        engine.next_trigger = u64::from_value(field("next_trigger")?)?;
        engine.seq = u32::from_value(field("seq")?)?;
        engine.arena = <Option<Arena>>::from_value(field("arena")?)?;
        engine.staged = <Option<Snapshot>>::from_value(field("staged")?)?;
        engine.stats = CkptStats::from_value(field("stats")?)?;
        engine.strategy.load(field("strategy")?)?;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::DeviceConfig;

    #[test]
    fn zoo_region_fits_top_of_fram() {
        const { assert!(ZOO_ORG >= 0xD400, "clear of the target-side runtime") };
        assert!(
            u32::from(ZOO_END) <= u32::from(edb_mcu::mem::IRQ_VECTOR),
            "zoo end {ZOO_END:#06x} must stay below the vectors"
        );
        assert_eq!(IMAGE_BYTES, 36 + 2048);
    }

    fn test_device() -> Device {
        let mut dev = Device::new(DeviceConfig::wisp5());
        // A program image is irrelevant for plan/restore mechanics; give
        // the reset vector something mapped.
        dev.mem_mut().poke_word(edb_mcu::mem::RESET_VECTOR, 0x4400);
        dev
    }

    fn scribble(dev: &mut Device, salt: u16) {
        let cpu = dev.cpu_mut();
        for (i, r) in cpu.regs.iter_mut().enumerate() {
            *r = salt.wrapping_mul(31).wrapping_add(i as u16);
        }
        cpu.pc = 0x4400 + salt;
        let mem = dev.mem_mut();
        for i in 0..64u16 {
            mem.poke_word(SRAM_START + 2 * i, salt.wrapping_add(i));
        }
    }

    #[test]
    fn full_commit_and_restore_round_trip() {
        let mut dev = test_device();
        let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::FullDump));
        engine.attach(dev.mem_mut());
        scribble(&mut dev, 7);
        let expect = Snapshot::capture(&dev);
        let plan = engine.plan_next(&dev);
        engine.apply_plan(dev.mem_mut(), &plan);
        dev.mem_mut().power_cycle();
        let (seq, got) = CkptEngine::committed_snapshot(dev.mem()).expect("committed");
        assert_eq!(seq, 1);
        assert_eq!(got, expect);
        assert!(engine.restore(&mut dev));
        assert_eq!(Snapshot::capture(&dev).sram, expect.sram);
        assert_eq!(dev.cpu().pc, expect.pc);
        assert_eq!(dev.cpu().regs, expect.regs);
    }

    #[test]
    fn differential_deltas_chain_to_the_base() {
        let mut dev = test_device();
        let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::Differential));
        engine.attach(dev.mem_mut());
        assert!(dev.mem().dirty_tracking(), "probe armed");
        scribble(&mut dev, 1);
        // First commit: no base yet -> rebase (full image).
        let plan = engine.plan_next(&dev);
        assert!(plan.rebased());
        engine.apply_plan(dev.mem_mut(), &plan);
        assert!(
            dev.mem().dirty_word_addrs().is_empty(),
            "rebase reseeds the probe"
        );
        // Touch three words; the next commit is a small delta.
        dev.mem_mut().poke_word(SRAM_START + 10, 0xAAAA);
        dev.mem_mut().poke_word(SRAM_START + 20, 0xBBBB);
        dev.cpu_mut().regs[3] = 0x1234;
        let expect = Snapshot::capture(&dev);
        let plan = engine.plan_next(&dev);
        assert!(!plan.rebased());
        assert!(
            plan.writes().len() < 100,
            "delta much smaller than the {IMAGE_BYTES}-byte image: {}",
            plan.writes().len()
        );
        engine.apply_plan(dev.mem_mut(), &plan);
        let (seq, got) = CkptEngine::committed_snapshot(dev.mem()).expect("committed");
        assert_eq!(seq, 2);
        assert_eq!(got, expect, "base + delta reconstructs the full state");
    }

    #[test]
    fn delta_log_overflow_rebases_into_the_other_half() {
        let mut dev = test_device();
        let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::Differential));
        engine.attach(dev.mem_mut());
        scribble(&mut dev, 1);
        let mut rebases = 0;
        let mut last = Snapshot::capture(&dev);
        for round in 0..64u16 {
            // Dirty a sliding window of words so deltas accumulate.
            for k in 0..24u16 {
                dev.mem_mut()
                    .poke_word(SRAM_START + 2 * ((round * 7 + k) % 512), round ^ k);
            }
            last = Snapshot::capture(&dev);
            let plan = engine.plan_next(&dev);
            if plan.rebased() {
                rebases += 1;
            }
            engine.apply_plan(dev.mem_mut(), &plan);
            let (_, got) = CkptEngine::committed_snapshot(dev.mem()).expect("committed");
            assert_eq!(got, last, "round {round}");
        }
        assert!(rebases >= 2, "log must have filled at least twice");
        // Restore still lands on the latest state.
        dev.mem_mut().power_cycle();
        assert!(engine.restore(&mut dev));
        assert_eq!(Snapshot::capture(&dev), last);
    }

    #[test]
    fn engine_state_round_trips_through_serde() {
        let mut dev = test_device();
        let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::Speculative));
        engine.attach(dev.mem_mut());
        scribble(&mut dev, 9);
        engine.staged = Some(Snapshot::capture(&dev));
        let plan = engine.plan_next(&dev);
        engine.apply_plan(dev.mem_mut(), &plan);
        let v = engine.to_value();
        let back = CkptEngine::from_value(&v).expect("round-trips");
        assert_eq!(back.seq(), engine.seq());
        assert_eq!(back.stats(), engine.stats());
        assert_eq!(back.staged, engine.staged);
        assert_eq!(back.arena, engine.arena);
        assert_eq!(back.config(), engine.config());
    }

    #[test]
    fn strategy_kind_names_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StrategyKind::parse("nope"), None);
    }
}
