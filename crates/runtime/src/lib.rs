//! A Mementos-style checkpointing runtime for intermittent programs.
//!
//! §2 of the EDB paper assumes "a checkpointing mechanism that
//! periodically collects a checkpoint of volatile execution context
//! (i.e., register file and stack) like prior work" (Mementos,
//! QuickRecall, Idetic). This crate is that substrate: a double-buffered
//! checkpoint of the register file and live stack into FRAM, with an
//! atomic single-word commit, written in IVM-16 assembly so the runtime
//! itself executes intermittently — and can be interrupted by a power
//! failure at any instruction, leaving the *previous* checkpoint intact.
//!
//! # Usage
//!
//! Point the reset vector at `__cp_boot`, give the runtime your
//! first-boot entry label, and call `__cp_checkpoint` wherever a
//! checkpoint should be collected:
//!
//! ```
//! use edb_runtime::runtime_asm;
//! use edb_mcu::asm::assemble;
//!
//! let app = format!(r#"
//!     .org 0x4400
//! init:
//!     movi sp, 0x2400
//!     movi r0, 0
//! loop:
//!     add  r0, 1
//!     call __cp_checkpoint     ; survive the next power failure
//!     jmp  loop
//! {runtime}
//!     .org 0xFFFE
//!     .word __cp_boot
//! "#, runtime = runtime_asm("init"));
//! let image = assemble(&app)?;
//! assert!(image.symbol("__cp_checkpoint").is_some());
//! # Ok::<(), edb_mcu::asm::AsmError>(())
//! ```
//!
//! # Semantics and limits
//!
//! * `__cp_checkpoint` saves `r0`–`r10`, `r14`, `sp`, and the live stack
//!   (between `sp` and [`STACK_TOP`]); `r11`–`r13` are clobbered (they
//!   are the runtime's scratch registers, like the caller-saved set of a
//!   C ABI). Flags are *not* preserved — collect checkpoints where flags
//!   are dead, as compilers do.
//! * On reboot, `__cp_boot` restores the most recently *committed*
//!   checkpoint and control resumes immediately after the
//!   `call __cp_checkpoint` that collected it. With no committed
//!   checkpoint, control goes to the app's init label.
//! * The stack image is capped at [`MAX_STACK_BYTES`]; deeper stacks are
//!   a programming error in this small runtime.
//! * The commit is a single FRAM word write, so a power failure anywhere
//!   in the runtime preserves a consistent (old or new) checkpoint —
//!   the property the paper's Figure 3 relies on when execution "resumes
//!   from the checkpoint".

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt;
pub mod tasks;

use edb_mcu::Image;

/// Top of the target stack (one past the last SRAM byte).
pub const STACK_TOP: u16 = 0x2400;

/// Maximum stack image a checkpoint can hold, bytes.
pub const MAX_STACK_BYTES: u16 = 128;

/// FRAM address of the checkpoint area.
pub const CHECKPOINT_ORG: u16 = 0xD000;

/// The selector values marking buffer 0 / buffer 1 as committed.
pub const SEL_BUF0: u16 = 0xA0;
/// See [`SEL_BUF0`].
pub const SEL_BUF1: u16 = 0xA1;

/// Bytes per checkpoint buffer: sp + len + 12 registers + stack image.
pub const BUFFER_BYTES: u16 = 2 + 2 + 24 + MAX_STACK_BYTES;

/// Generates the runtime's assembly. `init_label` is where control goes
/// on a boot with no committed checkpoint.
pub fn runtime_asm(init_label: &str) -> String {
    format!(
        r#"
; ------------------------------------------------------------------
; edb-runtime: Mementos-style double-buffered checkpointing
; ------------------------------------------------------------------
.org {org:#06x}
__cp_sel:  .word 0
__cp_buf0: .space {buf}
__cp_buf1: .space {buf}

; Boot path: restore the committed checkpoint, or fall through to init.
__cp_boot:
    movi r12, __cp_sel
    ld   r12, [r12]
    cmpi r12, {sel0:#04x}
    jz   __cpb_use0
    cmpi r12, {sel1:#04x}
    jz   __cpb_use1
    jmp  {init}
__cpb_use0:
    movi r13, __cp_buf0
    jmp  __cp_restore
__cpb_use1:
    movi r13, __cp_buf1
    jmp  __cp_restore

; Restore from the buffer at r13 and return into the checkpointed
; program (the saved stack holds the return address).
__cp_restore:
    ld   sp,  [r13 + 0]
    ld   r12, [r13 + 2]        ; stack words
    mov  r11, sp
    mov  r14, r13
    add  r14, 28
__cpr_loop:
    cmpi r12, 0
    jz   __cpr_regs
    ld   r10, [r14]
    st   [r11], r10
    add  r14, 2
    add  r11, 2
    sub  r12, 1
    jmp  __cpr_loop
__cpr_regs:
    ld   r0,  [r13 + 4]
    ld   r1,  [r13 + 6]
    ld   r2,  [r13 + 8]
    ld   r3,  [r13 + 10]
    ld   r4,  [r13 + 12]
    ld   r5,  [r13 + 14]
    ld   r6,  [r13 + 16]
    ld   r7,  [r13 + 18]
    ld   r8,  [r13 + 20]
    ld   r9,  [r13 + 22]
    ld   r10, [r13 + 24]
    ld   r14, [r13 + 26]
    ret

; Collect a checkpoint into the inactive buffer, then commit it with a
; single word write. Clobbers r11-r13.
__cp_checkpoint:
    ; r13 <- inactive buffer base
    movi r12, __cp_sel
    ld   r12, [r12]
    cmpi r12, {sel0:#04x}
    jz   __cpc_to1
    movi r13, __cp_buf0
    jmp  __cpc_save
__cpc_to1:
    movi r13, __cp_buf1
__cpc_save:
    st   [r13 + 0], sp
    movi r12, {stack_top:#06x}
    sub  r12, sp
    shr  r12, 1                ; live stack size in words (incl. ret addr)
    st   [r13 + 2], r12
    st   [r13 + 4], r0
    st   [r13 + 6], r1
    st   [r13 + 8], r2
    st   [r13 + 10], r3
    st   [r13 + 12], r4
    st   [r13 + 14], r5
    st   [r13 + 16], r6
    st   [r13 + 18], r7
    st   [r13 + 20], r8
    st   [r13 + 22], r9
    st   [r13 + 24], r10
    st   [r13 + 26], r14
    ; Copy the live stack. The image length was computed from sp, so
    ; nothing may be pushed during the copy; r10 serves as the data temp
    ; (its live value is already in the buffer and is re-read at commit).
    mov  r11, sp               ; r11 = source cursor
    mov  r12, r13
    add  r12, 28               ; r12 = destination cursor
    ld   r13, [r13 + 2]        ; r13 = word count (base recomputed later)
__cpc_loop:
    cmpi r13, 0
    jz   __cpc_commit
    ld   r10, [r11]
    st   [r12], r10
    add  r11, 2
    add  r12, 2
    sub  r13, 1
    jmp  __cpc_loop
__cpc_commit:
    ; recompute the buffer we just filled and restore r10's live value
    movi r12, __cp_sel
    ld   r12, [r12]
    cmpi r12, {sel0:#04x}
    jz   __cpc_commit1
    ; committed buffer was buf0
    movi r13, __cp_buf0
    ld   r10, [r13 + 24]
    movi r12, __cp_sel
    movi r13, {sel0:#04x}
    st   [r12], r13
    ret
__cpc_commit1:
    movi r13, __cp_buf1
    ld   r10, [r13 + 24]
    movi r12, __cp_sel
    movi r13, {sel1:#04x}
    st   [r12], r13
    ret
"#,
        org = CHECKPOINT_ORG,
        buf = BUFFER_BYTES,
        sel0 = SEL_BUF0,
        sel1 = SEL_BUF1,
        stack_top = STACK_TOP,
        init = init_label,
    )
}

/// Host-side view of the checkpoint area in an assembled image, for
/// tests and the debug console.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointLayout {
    /// Address of the selector word.
    pub sel: u16,
    /// Address of buffer 0.
    pub buf0: u16,
    /// Address of buffer 1.
    pub buf1: u16,
}

impl CheckpointLayout {
    /// Extracts the layout from an image built with [`runtime_asm`].
    pub fn from_image(image: &Image) -> Option<Self> {
        Some(CheckpointLayout {
            sel: image.symbol("__cp_sel")?,
            buf0: image.symbol("__cp_buf0")?,
            buf1: image.symbol("__cp_buf1")?,
        })
    }

    /// Which buffer is committed in `mem`, if any.
    pub fn committed(&self, mem: &edb_mcu::Memory) -> Option<u8> {
        match mem.peek_word(self.sel) {
            SEL_BUF0 => Some(0),
            SEL_BUF1 => Some(1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{SimTime, TheveninSource};
    use edb_mcu::asm::assemble;
    use edb_mcu::{Cpu, Memory, NullBus};

    /// A register-resident counter that only survives via checkpoints.
    fn checkpointed_counter() -> String {
        format!(
            r#"
            .equ MIRROR, 0x6000
            .org 0x4400
            init:
                movi sp, 0x2400
                movi r0, 0
            loop:
                add  r0, 1
                movi r1, MIRROR
                st   [r1], r0          ; publish for inspection
                call __cp_checkpoint
                jmp  loop
            {runtime}
            .org 0xFFFE
            .word __cp_boot
            "#,
            runtime = runtime_asm("init")
        )
    }

    #[test]
    fn runtime_assembles_with_all_symbols() {
        let image = assemble(&checkpointed_counter()).expect("assembles");
        let layout = CheckpointLayout::from_image(&image).expect("layout");
        assert_eq!(layout.sel, CHECKPOINT_ORG);
        assert!(layout.buf1 > layout.buf0);
    }

    #[test]
    fn first_boot_takes_init_path() {
        let image = assemble(&checkpointed_counter()).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..200 {
            cpu.step(&mut mem, &mut bus);
        }
        assert!(mem.peek_word(0x6000) >= 1, "counter must start counting");
    }

    #[test]
    fn checkpoint_and_restore_round_trip_on_continuous_power() {
        let image = assemble(&checkpointed_counter()).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        // Run enough to take several checkpoints.
        for _ in 0..5_000 {
            cpu.step(&mut mem, &mut bus);
        }
        let counted = mem.peek_word(0x6000);
        assert!(counted > 5, "counter advanced to {counted}");
        let layout = CheckpointLayout::from_image(&image).expect("layout");
        assert!(layout.committed(&mem).is_some(), "a checkpoint committed");

        // Simulate a reboot: volatile state gone, FRAM kept.
        mem.power_cycle();
        cpu.reset(&mem);
        for _ in 0..400 {
            cpu.step(&mut mem, &mut bus);
        }
        let resumed = mem.peek_word(0x6000);
        assert!(
            resumed > counted.saturating_sub(2),
            "resumed counter {resumed} must continue from checkpoint {counted}"
        );
    }

    #[test]
    fn counter_makes_monotonic_progress_across_real_power_failures() {
        let image = assemble(&checkpointed_counter()).expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut src = TheveninSource::new(3.2, 1500.0);
        let mut last = 0u16;
        let end = SimTime::from_ms(500);
        let mut checked = 0;
        while dev.now() < end {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge == Some(edb_energy::PowerEdge::TurnOn) && dev.reboots() > 0 {
                // Just after a reboot the mirror must not regress by more
                // than one un-checkpointed iteration.
                let v = dev.mem().peek_word(0x6000);
                assert!(
                    v + 2 >= last,
                    "counter regressed across reboot: {last} -> {v}"
                );
                checked += 1;
            }
            last = last.max(dev.mem().peek_word(0x6000));
        }
        assert!(dev.reboots() >= 2, "need real power failures");
        assert!(checked >= 2, "need post-reboot checks");
        assert!(last > 100, "counter made progress: {last}");
    }

    #[test]
    fn restored_checkpoint_executes_patched_code() {
        // Firmware update across a power failure: the counter's
        // increment instruction is patched in nonvolatile memory while
        // the device is off, and the checkpoint-restored execution must
        // run the NEW bytes. This is the runtime-level counterpart of
        // the CPU's self-modifying-code test: the increment has been
        // executed thousands of times, so its predecoded entry is warm,
        // and FRAM entries deliberately *survive* a power cycle (the
        // bytes are nonvolatile) — only the write probe can invalidate
        // it. The patch touches the second (immediate) word of the
        // two-word `add`, so a cache that only probed first words would
        // keep serving the stale stride.
        let src = format!(
            r#"
            .equ MIRROR, 0x6000
            .org 0x4400
            init:
                movi sp, 0x2400
                movi r0, 0
            loop:
            hook:
                add  r0, 1             ; stride; reflashed to 5 below
                movi r1, MIRROR
                st   [r1], r0          ; publish for inspection
                call __cp_checkpoint
                jmp  loop
            {runtime}
            .org 0xFFFE
            .word __cp_boot
            "#,
            runtime = runtime_asm("init")
        );
        let image = assemble(&src).expect("assembles");
        let hook = image.symbol("hook").expect("hook symbol");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..5_000 {
            cpu.step(&mut mem, &mut bus);
        }
        let layout = CheckpointLayout::from_image(&image).expect("layout");
        assert!(layout.committed(&mem).is_some(), "a checkpoint committed");
        let before = mem.peek_word(0x6000);
        assert!(before > 5, "counter advanced to {before}");

        // Power fails; the image is reflashed while off.
        mem.power_cycle();
        assert_eq!(mem.peek_word(hook + 2), 1, "imm word is where we think");
        mem.write_word(hook + 2, 5);
        cpu.reset(&mem);

        // Watch two consecutive mirror updates after the restore: their
        // difference is the stride the restored execution actually ran.
        let mut seen = Vec::new();
        let mut last = mem.peek_word(0x6000);
        for _ in 0..2_000 {
            cpu.step(&mut mem, &mut bus);
            let v = mem.peek_word(0x6000);
            if v != last {
                seen.push(v);
                last = v;
                if seen.len() == 2 {
                    break;
                }
            }
        }
        assert_eq!(seen.len(), 2, "restored run kept counting");
        assert_eq!(
            seen[1] - seen[0],
            5,
            "restored execution must run the patched stride"
        );
        assert!(
            seen[0] + 1 >= before,
            "restore resumed from the checkpoint: {before} -> {}",
            seen[0]
        );
    }

    #[test]
    fn interrupted_checkpoint_preserves_previous_one() {
        // Run on continuous power, stop the CPU mid-checkpoint (at a
        // random instruction inside __cp_checkpoint), clear volatile
        // state, and verify the restore still lands on a consistent
        // counter value.
        let image = assemble(&checkpointed_counter()).expect("assembles");
        let cp_start = image.symbol("__cp_checkpoint").expect("symbol");
        let cp_end = image.symbol("__cpc_commit1").expect("symbol");
        for cut_after in [3usize, 7, 11, 19, 23] {
            let mut mem = Memory::new();
            image.load_into(&mut mem);
            let mut cpu = Cpu::new();
            cpu.reset(&mem);
            let mut bus = NullBus;
            // Reach a steady state with committed checkpoints.
            for _ in 0..5_000 {
                cpu.step(&mut mem, &mut bus);
            }
            let before = mem.peek_word(0x6000);
            // Now run until we are inside the checkpoint routine, then a
            // few more instructions, then "power fails".
            let mut inside = 0;
            for _ in 0..5_000 {
                cpu.step(&mut mem, &mut bus);
                if cpu.pc >= cp_start && cpu.pc < cp_end {
                    inside += 1;
                    if inside >= cut_after {
                        break;
                    }
                }
            }
            assert!(inside > 0, "never entered the checkpoint routine");
            mem.power_cycle();
            cpu.reset(&mem);
            for _ in 0..400 {
                cpu.step(&mut mem, &mut bus);
            }
            let after = mem.peek_word(0x6000);
            assert!(
                after + 2 >= before,
                "cut at {cut_after}: counter went {before} -> {after}"
            );
        }
    }
}
