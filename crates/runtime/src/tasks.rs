//! A DINO-style task-atomic runtime: checkpointing *plus* versioning of
//! non-volatile data.
//!
//! §6.2 of the EDB paper: "DINO characterized the intermittent execution
//! model and addressed these consistency issues with a task-based
//! programming and execution model that selectively preserves both
//! non-volatile and volatile memory across power failures." Plain
//! checkpointing (this crate's root module) protects registers and
//! stack, but non-volatile writes made *after* the checkpoint survive a
//! reboot while the volatile context rolls back — exactly the mixed
//! state that drives the paper's Figure 3/6 bugs.
//!
//! The task runtime closes that hole: `__tk_boundary` snapshots a
//! declared set of protected non-volatile words into a shadow buffer
//! tied to the checkpoint's double-buffer commit, so one `__cp_sel`
//! write atomically commits *both* the volatile context and the
//! non-volatile version. On reboot, the shadow rolls the protected words
//! back to the last boundary before execution resumes — whole loop
//! iterations become atomic with respect to power failures.
//!
//! # Usage
//!
//! ```
//! use edb_runtime::tasks::task_runtime_asm;
//! use edb_mcu::asm::assemble;
//!
//! // Protect two NV words; boundary at the top of every iteration.
//! let app = format!(r#"
//!     .org 0x4400
//! init:
//!     movi sp, 0x2400
//! loop:
//!     call __tk_boundary
//!     movi r1, 0x6000
//!     ld   r0, [r1]
//!     add  r0, 1
//!     st   [r1], r0
//!     jmp  loop
//! {runtime}
//!     .org 0xFFFE
//!     .word __tk_boot
//! "#, runtime = task_runtime_asm("init", &[0x6000, 0x6002]));
//! let image = assemble(&app)?;
//! assert!(image.symbol("__tk_boundary").is_some());
//! # Ok::<(), edb_mcu::asm::AsmError>(())
//! ```

use crate::{runtime_asm, SEL_BUF0, SEL_BUF1};
use std::fmt::Write as _;

/// FRAM address of the task runtime's shadow area.
pub const SHADOW_ORG: u16 = 0xDA00;

/// Generates the task runtime: the checkpointing core plus shadow
/// versioning of `protected` non-volatile word addresses.
///
/// Point the reset vector at `__tk_boot` and call `__tk_boundary` at
/// every task boundary. Like `__cp_checkpoint`, the boundary clobbers
/// `r11`–`r13`.
///
/// # Panics
///
/// Panics if more than 64 words are protected (the shadow area is
/// statically sized).
pub fn task_runtime_asm(init_label: &str, protected: &[u16]) -> String {
    assert!(
        protected.len() <= 64,
        "at most 64 protected words ({} given)",
        protected.len()
    );
    let shadow_bytes = (protected.len().max(1) * 2) as u16;

    let mut save_lines = String::new();
    for (i, addr) in protected.iter().enumerate() {
        let off = i * 2;
        let _ = writeln!(save_lines, "    movi r11, {addr:#06x}");
        let _ = writeln!(save_lines, "    ld   r12, [r11]");
        let _ = writeln!(save_lines, "    st   [r13 + {off}], r12");
    }
    let mut restore_lines = String::new();
    for (i, addr) in protected.iter().enumerate() {
        let off = i * 2;
        let _ = writeln!(restore_lines, "    ld   r12, [r13 + {off}]");
        let _ = writeln!(restore_lines, "    movi r11, {addr:#06x}");
        let _ = writeln!(restore_lines, "    st   [r11], r12");
    }

    format!(
        r#"
; ------------------------------------------------------------------
; edb-runtime tasks: DINO-style NV versioning over the checkpoint core
; ------------------------------------------------------------------
.org {shadow_org:#06x}
__tk_shadow0: .space {shadow_bytes}
__tk_shadow1: .space {shadow_bytes}

; Task boundary: version the protected NV words into the inactive
; shadow, then collect a checkpoint — the checkpoint's single-word
; commit publishes both. Clobbers r11-r13.
__tk_boundary:
    movi r12, __cp_sel
    ld   r12, [r12]
    cmpi r12, {sel0:#04x}
    jz   __tkb_to1
    movi r13, __tk_shadow0
    jmp  __tkb_copy
__tkb_to1:
    movi r13, __tk_shadow1
__tkb_copy:
{save_lines}
    call __cp_checkpoint
    ret

; Boot: roll the protected NV words back to the committed version, then
; restore the matching volatile checkpoint. First boot falls through to
; the application's init label.
__tk_boot:
    movi sp, 0x2400
    movi r12, __cp_sel
    ld   r12, [r12]
    cmpi r12, {sel0:#04x}
    jz   __tkb_use0
    cmpi r12, {sel1:#04x}
    jz   __tkb_use1
    jmp  {init}
__tkb_use0:
    movi r13, __tk_shadow0
    call __tk_nv_restore
    movi r13, __cp_buf0
    jmp  __cp_restore
__tkb_use1:
    movi r13, __tk_shadow1
    call __tk_nv_restore
    movi r13, __cp_buf1
    jmp  __cp_restore

; Restore the protected words from the shadow at r13.
__tk_nv_restore:
{restore_lines}
    ret

{core}
"#,
        shadow_org = SHADOW_ORG,
        sel0 = SEL_BUF0,
        sel1 = SEL_BUF1,
        init = init_label,
        core = runtime_asm(init_label),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{Fading, SimTime, TheveninSource};
    use edb_mcu::asm::assemble;

    /// A two-word "bank transfer" that is only correct if both writes
    /// commit atomically: ping-pong 1 unit between A and B forever, with
    /// the invariant A + B == 1000 at every task boundary.
    fn transfer_app(with_boundary: bool) -> edb_mcu::Image {
        let boundary = if with_boundary {
            "call __tk_boundary"
        } else {
            "nop"
        };
        let src = format!(
            r#"
            .equ ACCT_A, 0x6000
            .equ ACCT_B, 0x6002
            .equ MAGIC,  0x6004
            .org 0x4400
            init:
                movi sp, 0x2400
                movi r1, MAGIC
                ld   r0, [r1]
                cmpi r0, 0x77AA
                jz   go
                movi r2, 1000
                movi r3, ACCT_A
                st   [r3], r2
                movi r2, 0
                movi r3, ACCT_B
                st   [r3], r2
                movi r0, 0x77AA
                st   [r1], r0
            go:
            loop:
                {boundary}
                movi r1, ACCT_A
                ld   r2, [r1]
                cmpi r2, 0
                jz   refill_a
                ; debit A, credit B — a non-atomic pair
                sub  r2, 1
                st   [r1], r2
                movi r1, ACCT_B
                ld   r3, [r1]
                add  r3, 1
                st   [r1], r3
                jmp  loop
            refill_a:
                ; move one back the other way (also non-atomic)
                movi r1, ACCT_B
                ld   r3, [r1]
                sub  r3, 1
                st   [r1], r3
                movi r1, ACCT_A
                ld   r2, [r1]
                add  r2, 1
                st   [r1], r2
                jmp  loop
            {runtime}
            .org 0xFFFE
            .word __tk_boot
            "#,
            runtime = task_runtime_asm("init", &[0x6000, 0x6002]),
        );
        assemble(&src).expect("transfer app assembles")
    }

    /// Counts invariant violations observed 1 ms after each turn-on —
    /// late enough for the boot-time rollback to have run, early enough
    /// that the loop is at (or just past) a boundary.
    fn invariant_violations(image: &edb_mcu::Image, seed: u64) -> (u32, u64) {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(image);
        let mut src = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed);
        let mut violations = 0u32;
        let mut check_at: Option<SimTime> = None;
        while dev.now() < SimTime::from_secs(3) {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge == Some(edb_energy::PowerEdge::TurnOn) && dev.reboots() > 0 {
                check_at = Some(dev.now() + SimTime::from_ms(1));
            }
            if let Some(t) = check_at {
                if dev.now() >= t {
                    check_at = None;
                    if dev.powered() && dev.mem().peek_word(0x6004) == 0x77AA {
                        let a = dev.mem().peek_word(0x6000);
                        let b = dev.mem().peek_word(0x6002);
                        if a as u32 + b as u32 != 1000 {
                            violations += 1;
                        }
                    }
                }
            }
        }
        (violations, dev.total_instructions())
    }

    #[test]
    fn task_runtime_assembles_with_symbols() {
        let image = transfer_app(true);
        for sym in [
            "__tk_boundary",
            "__tk_boot",
            "__tk_shadow0",
            "__cp_checkpoint",
        ] {
            assert!(image.symbol(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn without_boundaries_the_invariant_breaks_under_intermittence() {
        // The bare app points its vector at __tk_boot but never collects
        // a boundary, so every reboot restarts at init with whatever
        // half-committed NV state the failure left: A+B drifts.
        let image = transfer_app(false);
        let mut total_violations = 0;
        for seed in 0..3 {
            total_violations += invariant_violations(&image, seed).0;
        }
        assert!(
            total_violations > 0,
            "the non-atomic transfer must be observed broken"
        );
    }

    #[test]
    fn boundaries_make_iterations_atomic() {
        let image = transfer_app(true);
        for seed in 0..3 {
            let (violations, instructions) = invariant_violations(&image, seed);
            assert_eq!(violations, 0, "seed {seed}: invariant broke");
            assert!(instructions > 100_000, "seed {seed}: made real progress");
        }
    }

    #[test]
    fn continuous_power_behaviour_is_unchanged() {
        let image = transfer_app(true);
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut supply = TheveninSource::new(3.0, 10.0);
        while dev.now() < SimTime::from_secs(1) {
            dev.step(&mut supply, 0.0);
        }
        let a = dev.mem().peek_word(0x6000);
        let b = dev.mem().peek_word(0x6002);
        assert_eq!(a as u32 + b as u32, 1000, "invariant holds continuously");
        assert!(dev.total_instructions() > 1_000_000);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn protected_set_is_bounded() {
        let many: Vec<u16> = (0..65).map(|i| 0x6000 + i * 2).collect();
        let _ = task_runtime_asm("init", &many);
    }
}
