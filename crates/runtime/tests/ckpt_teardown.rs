//! Adversarial teardown of the checkpoint-strategy zoo.
//!
//! In the style of the wire-fault suite: a discharge is injected at
//! *every byte offset* of a commit's FRAM write sequence, and the
//! restore must land bit-for-bit on the pre-checkpoint oracle. A commit
//! record is only as atomic as its worst truncation point, so every
//! truncation point is tried, for every strategy in the zoo.

use edb_device::{Device, DeviceConfig};
use edb_energy::{PowerEdge, TheveninSource};
use edb_mcu::asm::assemble;
use edb_mcu::SRAM_START;
use edb_runtime::ckpt::{CkptConfig, CkptEngine, Snapshot, StrategyKind};

/// A register-resident counter mirrored into SRAM: all progress is
/// volatile, so only a checkpoint restore can preserve it.
fn counter_app() -> edb_mcu::Image {
    assemble(
        r#"
        .org 0x4400
    init:
        movi sp, 0x2400
        movi r0, 0
        movi r1, 0x1C10
    loop:
        add  r0, 1
        st   [r1], r0
        jmp  loop
        .org 0xFFFE
        .word init
    "#,
    )
    .expect("counter app assembles")
}

/// A powered device running the counter, with `engine` attached and
/// observing every step.
fn running_device(engine: &mut CkptEngine) -> (Device, TheveninSource) {
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&counter_app());
    engine.attach(dev.mem_mut());
    let mut src = TheveninSource::new(3.2, 1500.0);
    dev.set_v_cap(3.0);
    while !dev.powered() {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
    }
    (dev, src)
}

/// Steps until `n` more instructions retire, feeding the engine.
fn run_instructions(dev: &mut Device, src: &mut TheveninSource, engine: &mut CkptEngine, n: u64) {
    let until = dev.total_instructions() + n;
    while dev.total_instructions() < until {
        let step = dev.step(src, 0.0);
        engine.observe(dev, step.power_edge);
    }
}

/// Exhaustive memory-level teardown: for several successive commits,
/// apply every proper prefix of the commit's byte writes to a clone,
/// brown it out, and require the surviving record to be the prior
/// oracle bit-for-bit.
fn exhaustive_teardown(kind: StrategyKind) {
    let mut engine = CkptEngine::new(CkptConfig::new(kind).interval(64));
    let (mut dev, mut src) = running_device(&mut engine);
    let mut offsets_torn = 0usize;
    for round in 0..4 {
        run_instructions(&mut dev, &mut src, &mut engine, 40);
        let oracle = CkptEngine::committed_snapshot(dev.mem());
        let plan = engine.plan_next(&dev);
        let fresh = (plan.seq(), plan.snapshot().clone());
        for k in 0..plan.writes().len() {
            let mut torn = dev.mem().clone();
            for &(addr, byte) in &plan.writes()[..k] {
                torn.write_byte(addr, byte);
            }
            torn.power_cycle(); // the discharge: volatile state gone
            let got = CkptEngine::committed_snapshot(&torn);
            if got != oracle {
                // The only other survivable outcome: the stale tail of
                // the header slot happened to equal the new digest, in
                // which case the *complete new* record is what
                // validates — still a consistent image.
                assert_eq!(
                    got,
                    Some(fresh.clone()),
                    "{kind} round {round}: torn commit at byte {k} of {} \
                     left neither the oracle nor the new record",
                    plan.writes().len()
                );
                assert!(
                    k + 8 >= plan.writes().len(),
                    "{kind} round {round}: new record validated at byte {k} \
                     with more than the digest tail unwritten"
                );
            }
            offsets_torn += 1;
        }
        engine.apply_plan(dev.mem_mut(), &plan);
        assert_eq!(
            CkptEngine::committed_snapshot(dev.mem()),
            Some(fresh),
            "{kind} round {round}: completed commit must be the new record"
        );
    }
    assert!(
        offsets_torn > 2000,
        "{kind}: teardown must have covered full-image commits ({offsets_torn})"
    );
}

#[test]
fn full_dump_survives_discharge_at_every_commit_byte() {
    exhaustive_teardown(StrategyKind::FullDump);
}

#[test]
fn differential_survives_discharge_at_every_commit_byte() {
    exhaustive_teardown(StrategyKind::Differential);
}

#[test]
fn speculative_survives_discharge_at_every_commit_byte() {
    exhaustive_teardown(StrategyKind::Speculative);
}

/// Device-level teardown: the discharge goes through the real
/// supervisor (capacitor yanked to 1.0 V mid-commit), and the restore
/// goes through the real turn-on path. Every byte offset of one live
/// commit is tried.
fn device_teardown(kind: StrategyKind) {
    let mut engine = CkptEngine::new(CkptConfig::new(kind).interval(64));
    let (mut dev, mut src) = running_device(&mut engine);
    run_instructions(&mut dev, &mut src, &mut engine, 400);
    let (oracle_seq, oracle) = CkptEngine::committed_snapshot(dev.mem())
        .expect("400 instructions at interval 64 must have committed");
    let plan = engine.plan_next(&dev);
    for k in 0..plan.writes().len() {
        let mut d = dev.clone();
        let mut e = engine.clone();
        for &(addr, byte) in &plan.writes()[..k] {
            d.mem_mut().write_byte(addr, byte);
        }
        // Yank the capacitor mid-commit; the supervisor browns out.
        d.set_v_cap(1.0);
        let mut saw = None;
        for _ in 0..8 {
            let step = d.step(&mut src, 0.0);
            e.observe(&mut d, step.power_edge);
            if step.power_edge.is_some() {
                saw = step.power_edge;
                break;
            }
        }
        assert_eq!(saw, Some(PowerEdge::BrownOut), "offset {k}");
        // Recharge; the turn-on edge restores before any instruction.
        d.set_v_cap(3.0);
        let mut restored = false;
        for _ in 0..8 {
            let step = d.step(&mut src, 0.0);
            e.observe(&mut d, step.power_edge);
            if step.power_edge == Some(PowerEdge::TurnOn) {
                restored = true;
                break;
            }
        }
        assert!(restored, "offset {k}: device must turn back on");
        let got = Snapshot::capture(&d);
        if got != oracle {
            assert_eq!(
                (e.seq(), &got),
                (plan.seq(), plan.snapshot()),
                "{kind}: torn commit at byte {k} restored neither image"
            );
        } else {
            assert_eq!(e.seq(), oracle_seq, "offset {k}");
        }
    }
}

#[test]
fn full_dump_device_restore_matches_oracle_at_every_offset() {
    device_teardown(StrategyKind::FullDump);
}

#[test]
fn differential_device_restore_matches_oracle_at_every_offset() {
    device_teardown(StrategyKind::Differential);
}

/// Satellite: back-to-back brown-outs. A second power failure arriving
/// immediately after (or during) a restore must still land on the same
/// committed image — restore reads only FRAM, so it is idempotent.
#[test]
fn back_to_back_brownouts_restore_identically() {
    let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::FullDump).interval(64));
    let (mut dev, mut src) = running_device(&mut engine);
    run_instructions(&mut dev, &mut src, &mut engine, 300);
    let (seq, oracle) = CkptEngine::committed_snapshot(dev.mem()).expect("committed");

    // First failure and recovery.
    dev.set_v_cap(1.0);
    loop {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if step.power_edge == Some(PowerEdge::BrownOut) {
            break;
        }
    }
    dev.set_v_cap(3.0);
    loop {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if step.power_edge == Some(PowerEdge::TurnOn) {
            break;
        }
    }
    assert_eq!(Snapshot::capture(&dev), oracle, "first restore");
    assert_eq!(engine.seq(), seq);
    let restores_after_first = engine.stats().restores;

    // Second failure lands at most one instruction after the restore.
    dev.set_v_cap(1.0);
    loop {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if step.power_edge == Some(PowerEdge::BrownOut) {
            break;
        }
    }
    dev.set_v_cap(3.0);
    loop {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if step.power_edge == Some(PowerEdge::TurnOn) {
            break;
        }
    }
    assert_eq!(Snapshot::capture(&dev), oracle, "second restore identical");
    assert_eq!(engine.stats().restores, restores_after_first + 1);

    // And the program still makes forward progress afterwards.
    let before = Snapshot::capture(&dev).regs[0];
    run_instructions(&mut dev, &mut src, &mut engine, 64);
    assert!(
        dev.cpu().regs[0] > before,
        "counter advances after recovery"
    );
}

/// Satellite: a power failure *during* the restore itself. Model the
/// torn restore directly — a prefix of the snapshot's SRAM bytes is
/// installed, then the brown-out erases them — and require the next
/// restore to reproduce the oracle exactly.
#[test]
fn power_failure_during_restore_is_survivable() {
    let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::Differential).interval(64));
    let (mut dev, mut src) = running_device(&mut engine);
    run_instructions(&mut dev, &mut src, &mut engine, 300);
    let (_, oracle) = CkptEngine::committed_snapshot(dev.mem()).expect("committed");

    for torn_at in [0usize, 1, 37, 512, oracle.sram.len() - 1] {
        let mut d = dev.clone();
        let mut e = engine.clone();
        d.mem_mut().power_cycle();
        // Restore gets torn after `torn_at` SRAM bytes...
        for (i, &b) in oracle.sram[..torn_at].iter().enumerate() {
            d.mem_mut().write_byte(SRAM_START + i as u16, b);
        }
        // ...and the second brown-out erases the partial install.
        d.mem_mut().power_cycle();
        assert!(e.restore(&mut d), "torn at {torn_at}: record still valid");
        assert_eq!(
            Snapshot::capture(&d),
            oracle,
            "torn at {torn_at}: second restore must be bit-identical"
        );
    }
}

/// The speculative strategy in vivo: natural harvested-power sags take
/// the capacitor through the knee, committing staged snapshots, and the
/// counter makes forward progress across real reboots.
#[test]
fn speculative_commits_at_the_knee_under_natural_power() {
    let mut engine = CkptEngine::new(CkptConfig::new(StrategyKind::Speculative).interval(64));
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&counter_app());
    engine.attach(dev.mem_mut());
    let mut src = TheveninSource::new(3.2, 1500.0);
    let mut best = 0u16;
    for _ in 0..2_000_000 {
        let step = dev.step(&mut src, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if dev.powered() {
            best = best.max(dev.cpu().regs[0]);
        }
        if dev.reboots() >= 3 {
            break;
        }
    }
    let stats = engine.stats();
    assert!(dev.reboots() >= 3, "harvested power must be intermittent");
    assert!(stats.staged > 0, "triggers must stage snapshots");
    assert!(stats.commits > 0, "the knee must commit staged snapshots");
    assert!(stats.restores > 0, "turn-ons must restore");
    assert!(
        best > 1000,
        "counter must accumulate progress across reboots (reached {best})"
    );
}
