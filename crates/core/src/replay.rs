//! Deterministic record/replay and time travel for debug sessions.
//!
//! Everything below the [`DebugSession`] API is a pure function of the
//! session spec and the seed, so a recording needs only three things to
//! reconstruct *any* instant of a run:
//!
//! 1. the rebuildable [`SessionSpec`] (device, world, seeds, firmware),
//! 2. the sequence of typed [`SessionOp`]s the frontend issued — the
//!    run's only inputs, and
//! 3. periodic full-state snapshots (every `stride` operations)
//!    so replay can restore near a target instant instead of
//!    re-executing from the beginning.
//!
//! On top of that substrate sit the time-travel verbs —
//! [`DebugSession::goto_time`], [`DebugSession::step_back`],
//! [`DebugSession::reverse_continue`] — and the divergence checker
//! [`verify`], which re-executes a whole recording and asserts *bit*
//! identity (IEEE-754 bit patterns included) against every recorded
//! snapshot and digest.
//!
//! Worlds that serialize completely (every plain harvester) snapshot in
//! full; RFID worlds record state *digests* only and travel by
//! re-execution from the start. The container format itself — canonical
//! value encoding, FNV-digested chunks — lives in the `edb-replay`
//! crate.

use crate::debugger::{DebugRequest, EdbConfig, RequestId};
use crate::error::EdbError;
use crate::fleet::{FleetConfig, FleetSim};
use crate::session::{DebugSession, SessionBuilder};
use crate::wiring::ChannelFaultConfig;
use edb_device::DeviceConfig;
use edb_energy::{
    ConstantCurrent, Fading, SimTime, SolarHarvester, TheveninSource, TraceHarvester,
};
pub use edb_replay::Recording;
use edb_replay::{value_digest, Entry};
use edb_runtime::ckpt::CkptConfig;
use serde::{DeError, Deserialize, Serialize, Value};

// ---------------------------------------------------------------------
// The rebuildable session spec
// ---------------------------------------------------------------------

/// A rebuildable description of a harvester — enough to reconstruct the
/// exact energy environment from a recording in a fresh process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HarvesterSpec {
    /// [`ConstantCurrent`].
    Constant {
        /// Source current, amps.
        amps: f64,
    },
    /// [`TheveninSource`] — the stiff bench supply.
    Thevenin {
        /// Open-circuit voltage, volts.
        v_oc: f64,
        /// Source resistance, ohms.
        r_src: f64,
    },
    /// [`SolarHarvester`].
    Solar {
        /// Peak open-circuit voltage, volts.
        v_oc_peak: f64,
        /// Source resistance, ohms.
        r_src: f64,
        /// Occlusion period, seconds.
        period_s: f64,
        /// Occlusion RNG seed.
        seed: u64,
    },
    /// [`Fading`] multipath over a Thévenin source — the standard
    /// harvested supply of the experiment harnesses
    /// (`Fading::new(TheveninSource::new(v_oc, r_src), sigma, seed)`).
    FadingThevenin {
        /// Inner open-circuit voltage, volts.
        v_oc: f64,
        /// Inner source resistance, ohms.
        r_src: f64,
        /// Log-normal fade sigma.
        sigma: f64,
        /// Fade RNG seed.
        seed: u64,
    },
    /// [`TraceHarvester`] — recorded `(time, open-circuit volts)`
    /// samples, embedded so the recording is self-contained.
    Trace {
        /// The trace samples.
        samples: Vec<(SimTime, f64)>,
        /// Source resistance, ohms.
        r_src: f64,
    },
}

impl HarvesterSpec {
    /// The standard harvested supply used across the experiment
    /// harnesses: 5 % log-normal fading over a 3.2 V / 1.5 kΩ Thévenin
    /// source (the fig. 7 energy environment).
    pub fn harvested(seed: u64) -> Self {
        HarvesterSpec::FadingThevenin {
            v_oc: 3.2,
            r_src: 1500.0,
            sigma: 0.05,
            seed,
        }
    }

    /// Applies this spec to a [`SessionBuilder`].
    fn install(&self, builder: SessionBuilder) -> SessionBuilder {
        match self {
            HarvesterSpec::Constant { amps } => builder.harvester(ConstantCurrent::new(*amps)),
            HarvesterSpec::Thevenin { v_oc, r_src } => {
                builder.harvester(TheveninSource::new(*v_oc, *r_src))
            }
            HarvesterSpec::Solar {
                v_oc_peak,
                r_src,
                period_s,
                seed,
            } => builder.harvester(SolarHarvester::new(*v_oc_peak, *r_src, *period_s, *seed)),
            HarvesterSpec::FadingThevenin {
                v_oc,
                r_src,
                sigma,
                seed,
            } => builder.harvester(Fading::new(
                TheveninSource::new(*v_oc, *r_src),
                *sigma,
                *seed,
            )),
            HarvesterSpec::Trace { samples, r_src } => {
                builder.harvester(TraceHarvester::new(samples.clone(), *r_src))
            }
        }
    }
}

/// The energy world of a recorded session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorldSpec {
    /// A plain harvester; supports full-state snapshots.
    Harvester {
        /// Which harvester.
        spec: HarvesterSpec,
    },
    /// An RFID reader's carrier at `distance_m` metres; recordings of
    /// this world are digest-only (see [`crate::System::supports_snapshots`]).
    Rfid {
        /// Reader distance, metres.
        distance_m: f64,
    },
}

/// The session's firmware, carried as source inside the recording so
/// replay never depends on files outside the container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Firmware {
    /// Assembly source.
    pub source: String,
    /// Whether to wrap with the `libEDB` runtime
    /// ([`crate::libedb::wrap_program`]) before assembling, matching
    /// [`SessionBuilder::firmware`] (`true`) vs a raw image (`false`).
    pub wrap: bool,
}

/// Everything needed to rebuild a [`DebugSession`] bit-identically:
/// the initial image plus every seed. This is the `Spec` chunk of a
/// recording.
#[derive(Debug, Clone, Deserialize)]
pub struct SessionSpec {
    /// Target device configuration.
    pub device: DeviceConfig,
    /// The energy world.
    pub world: WorldSpec,
    /// Bench seed (ADC noise, retry backoff, RF channel).
    pub seed: u64,
    /// Debugger firmware parameters.
    pub edb: EdbConfig,
    /// Debug-UART fault injection, if any.
    pub channel_fault: Option<ChannelFaultConfig>,
    /// Firmware to flash, if any.
    pub firmware: Option<Firmware>,
    /// Host-side checkpoint strategy, if one is attached — recorded so
    /// reproducers replay under the same zoo member.
    pub ckpt: Option<CkptConfig>,
}

// Hand-written so specs without a checkpoint engine keep the historical
// byte layout (the `ckpt` key appears only when set; the derived
// Deserialize reads a missing key as `None`).
impl Serialize for SessionSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (Value::Str("device".into()), self.device.to_value()),
            (Value::Str("world".into()), self.world.to_value()),
            (Value::Str("seed".into()), self.seed.to_value()),
            (Value::Str("edb".into()), self.edb.to_value()),
            (
                Value::Str("channel_fault".into()),
                self.channel_fault.to_value(),
            ),
            (Value::Str("firmware".into()), self.firmware.to_value()),
        ];
        if self.ckpt.is_some() {
            fields.push((Value::Str("ckpt".into()), self.ckpt.to_value()));
        }
        Value::Map(fields)
    }
}

impl SessionSpec {
    /// The default bench: a WISP-class target on the stiff Thévenin
    /// supply, EDB in the prototype configuration, `source` wrapped with
    /// the `libEDB` runtime.
    pub fn bench(source: &str) -> Self {
        SessionSpec {
            device: DeviceConfig::wisp5(),
            world: WorldSpec::Harvester {
                spec: HarvesterSpec::Thevenin {
                    v_oc: 3.2,
                    r_src: 1500.0,
                },
            },
            seed: 0,
            edb: EdbConfig::prototype(),
            channel_fault: None,
            firmware: Some(Firmware {
                source: source.to_string(),
                wrap: true,
            }),
            ckpt: None,
        }
    }

    /// Runs the session under a checkpoint-strategy-zoo engine
    /// ([`edb_runtime::ckpt`]); the strategy rides in the recording.
    pub fn with_checkpoint_strategy(mut self, ckpt: CkptConfig) -> Self {
        self.ckpt = Some(ckpt);
        self
    }

    /// Like [`SessionSpec::bench`] but on the harvested (fading)
    /// supply of the experiment harnesses.
    pub fn harvested(source: &str, seed: u64) -> Self {
        SessionSpec {
            world: WorldSpec::Harvester {
                spec: HarvesterSpec::harvested(seed),
            },
            seed,
            ..SessionSpec::bench(source)
        }
    }

    /// Builds the session this spec describes.
    pub fn build(&self) -> Result<DebugSession, EdbError> {
        let mut builder = SessionBuilder::new()
            .device(self.device)
            .seed(self.seed)
            .edb_config(self.edb);
        builder = match &self.world {
            WorldSpec::Harvester { spec } => spec.install(builder),
            WorldSpec::Rfid { distance_m } => builder.rfid(*distance_m),
        };
        if let Some(fault) = self.channel_fault {
            builder = builder.channel_fault(fault);
        }
        if let Some(ckpt) = self.ckpt {
            builder = builder.with_checkpoint_strategy(ckpt);
        }
        if let Some(fw) = &self.firmware {
            builder = if fw.wrap {
                builder.firmware(&fw.source)
            } else {
                let image = edb_mcu::asm::assemble(&fw.source).map_err(|e| EdbError::Device {
                    detail: format!("firmware does not assemble: {e}"),
                })?;
                builder.image(image)
            };
        }
        builder.build()
    }

    /// Builds the session *and* starts recording it with the given
    /// snapshot stride (full state every `stride` operations; clamped to
    /// at least 1). The spec is embedded in the tape, so the resulting
    /// recording replays in a fresh process.
    pub fn record(&self, stride: u64) -> Result<DebugSession, EdbError> {
        let mut session = self.build()?;
        session.start_recording(Some(self), stride);
        Ok(session)
    }
}

// ---------------------------------------------------------------------
// Session operations: the run's only inputs
// ---------------------------------------------------------------------

/// One typed operation against the [`DebugSession`] surface — the unit
/// of the recording tape. Applying the same ops to a session built from
/// the same spec reproduces the same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionOp {
    /// [`DebugSession::advance`].
    Advance {
        /// Duration, nanoseconds.
        ns: u64,
    },
    /// [`DebugSession::step`], `n` times.
    Step {
        /// Step count.
        n: u64,
    },
    /// [`DebugSession::run_until_session`].
    RunUntilSession {
        /// Timeout, nanoseconds.
        timeout_ns: u64,
    },
    /// [`DebugSession::perform`].
    Perform {
        /// The typed request.
        request: DebugRequest,
    },
    /// [`DebugSession::submit`].
    Submit {
        /// The typed request.
        request: DebugRequest,
    },
    /// [`DebugSession::poll`].
    Poll {
        /// The polled request ID.
        id: RequestId,
    },
    /// [`DebugSession::resume`].
    Resume,
    /// [`DebugSession::charge_to`].
    ChargeTo {
        /// Target level, volts.
        volts: f64,
    },
    /// [`DebugSession::discharge_to`].
    DischargeTo {
        /// Target level, volts.
        volts: f64,
    },
    /// [`DebugSession::set_breakpoint`].
    SetBreakpoint {
        /// Breakpoint ID.
        id: u8,
        /// Optional energy condition, volts.
        energy: Option<f64>,
    },
    /// [`DebugSession::clear_breakpoint`].
    ClearBreakpoint {
        /// Breakpoint ID.
        id: u8,
    },
    /// [`DebugSession::arm_energy_guard`].
    ArmEnergyGuard {
        /// Threshold, volts.
        volts: f64,
    },
}

impl SessionOp {
    /// Re-executes this operation against `session`. Results and errors
    /// are discarded: determinism guarantees the same outcomes recur,
    /// and the divergence checker asserts it through state digests.
    pub fn apply(&self, session: &mut DebugSession) {
        match self {
            SessionOp::Advance { ns } => session.advance(SimTime::from_ns(*ns)),
            SessionOp::Step { n } => {
                for _ in 0..*n {
                    session.step();
                }
            }
            SessionOp::RunUntilSession { timeout_ns } => {
                let _ = session.run_until_session(SimTime::from_ns(*timeout_ns));
            }
            SessionOp::Perform { request } => {
                let _ = session.perform(*request);
            }
            SessionOp::Submit { request } => {
                let _ = session.submit(*request);
            }
            SessionOp::Poll { id } => {
                let _ = session.poll(*id);
            }
            SessionOp::Resume => {
                let _ = session.resume();
            }
            SessionOp::ChargeTo { volts } => {
                let _ = session.charge_to(*volts);
            }
            SessionOp::DischargeTo { volts } => {
                let _ = session.discharge_to(*volts);
            }
            SessionOp::SetBreakpoint { id, energy } => {
                let _ = session.set_breakpoint(*id, *energy);
            }
            SessionOp::ClearBreakpoint { id } => {
                let _ = session.clear_breakpoint(*id);
            }
            SessionOp::ArmEnergyGuard { volts } => {
                let _ = session.arm_energy_guard(*volts);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The in-memory tape
// ---------------------------------------------------------------------

/// The live recording attached to a [`DebugSession`]: entries in tape
/// order plus the snapshot-stride counter.
#[derive(Debug)]
pub(crate) struct Tape {
    spec: Option<Value>,
    stride: u64,
    start_ns: u64,
    entries: Vec<Entry>,
    ops_since_boundary: u64,
}

/// Appends an `Op` entry for `op` (stamped with the *pre-execution*
/// time). Called at the top of every recorded `DebugSession` method;
/// no-op when the session is not recording.
pub(crate) fn tape_op(session: &mut DebugSession, op: &SessionOp) {
    if session.tape.is_none() {
        return;
    }
    let now_ns = session.now().as_ns();
    let value = op.to_value();
    let tape = session.tape.as_mut().expect("checked above");
    tape.entries.push(Entry::Op { now_ns, value });
}

/// Marks an operation boundary: counts the op and, every `stride` ops,
/// appends a full-state snapshot (or a digest, for worlds that cannot
/// serialize). Called at the bottom of every recorded method.
pub(crate) fn tape_boundary(session: &mut DebugSession) {
    let Some(tape) = session.tape.as_mut() else {
        return;
    };
    tape.ops_since_boundary += 1;
    if tape.ops_since_boundary < tape.stride {
        return;
    }
    push_boundary(session);
}

/// Unconditionally appends a snapshot/digest boundary entry and resets
/// the stride counter.
fn push_boundary(session: &mut DebugSession) {
    if session.tape.is_none() {
        return;
    }
    let now_ns = session.now().as_ns();
    let entry = match snapshot_state(session) {
        Some(state) => Entry::Snapshot { now_ns, state },
        None => Entry::Digest {
            now_ns,
            digest: session.system().state_digest(),
        },
    };
    let tape = session.tape.as_mut().expect("checked above");
    tape.ops_since_boundary = 0;
    tape.entries.push(entry);
}

/// The full serialized session state: the bench plus the session-level
/// bookkeeping (breakpoint list, guard thresholds). `None` for worlds
/// that cannot snapshot.
fn snapshot_state(session: &DebugSession) -> Option<Value> {
    let sys = session.system().save_state()?;
    Some(Value::Map(vec![
        (Value::Str("sys".into()), sys),
        (
            Value::Str("breakpoints".into()),
            session.breakpoints().to_value(),
        ),
        (
            Value::Str("guards".into()),
            session.energy_guards().to_vec().to_value(),
        ),
    ]))
}

/// Restores state captured by [`snapshot_state`].
fn restore_snapshot(session: &mut DebugSession, state: &Value) -> Result<(), DeError> {
    let field = |name: &str| {
        state
            .get_field(name)
            .ok_or_else(|| DeError::new(format!("session snapshot missing `{name}`")))
    };
    session.system_mut().restore_state(field("sys")?)?;
    let breakpoints = <Vec<(u8, Option<f64>)>>::from_value(field("breakpoints")?)?;
    let guards = <Vec<f64>>::from_value(field("guards")?)?;
    session.restore_bookkeeping(breakpoints.into_iter().collect(), guards);
    Ok(())
}

// ---------------------------------------------------------------------
// Recording control and time travel on DebugSession
// ---------------------------------------------------------------------

impl DebugSession {
    /// Starts recording this session: every subsequent operation through
    /// the session surface lands on the tape, with a full-state snapshot
    /// (or digest) every `stride` operations (clamped to at least 1).
    /// An initial boundary is taken immediately so time travel can reach
    /// the recording start.
    ///
    /// Pass the spec the session was built from so the recording can
    /// replay in a fresh process ([`SessionSpec::record`] does both in
    /// one call); without it, the recording verifies only in-process.
    pub fn start_recording(&mut self, spec: Option<&SessionSpec>, stride: u64) {
        self.tape = Some(Tape {
            spec: spec.map(Serialize::to_value),
            stride: stride.max(1),
            start_ns: self.now().as_ns(),
            entries: Vec::new(),
            ops_since_boundary: 0,
        });
        push_boundary(self);
    }

    /// Whether a recording is active.
    pub fn is_recording(&self) -> bool {
        self.tape.is_some()
    }

    /// Stops recording and returns the finished [`Recording`], sealed
    /// with a final boundary and the end-of-tape state digest. `None`
    /// when no recording was active.
    pub fn stop_recording(&mut self) -> Option<Recording> {
        // Seal with a final boundary so the last stretch of ops is
        // covered by a snapshot, then stamp the End digest.
        if self.tape.is_some() {
            push_boundary(self);
        }
        let end = (self.now().as_ns(), self.system().state_digest());
        self.tape.take().map(|tape| Recording {
            spec: tape.spec,
            stride: tape.stride,
            start_ns: tape.start_ns,
            entries: tape.entries,
            end: Some(end),
        })
    }

    /// A copy of the recording as it stands, sealed at the current
    /// state, without stopping the tape. `None` when not recording.
    pub fn export_recording(&self) -> Option<Recording> {
        let tape = self.tape.as_ref()?;
        Some(Recording {
            spec: tape.spec.clone(),
            stride: tape.stride,
            start_ns: tape.start_ns,
            entries: tape.entries.clone(),
            end: Some((self.now().as_ns(), self.system().state_digest())),
        })
    }

    /// Travels to simulated time `target`.
    ///
    /// Forward travel is plain [`advance`](DebugSession::advance).
    /// Backward travel restores the nearest recorded snapshot at or
    /// before `target` (or rebuilds from the embedded spec when none
    /// exists — always the case for digest-only RFID recordings) and
    /// re-executes the recorded operations forward. An `Advance` or
    /// `RunUntilSession` that straddles `target` is split exactly at
    /// `target` (both are pure stepping); an op of any other kind that
    /// began before `target` — a command exchange, a charge loop —
    /// re-executes in full, so the session lands at that op's
    /// completion time. The tape is
    /// truncated at the landing point: the future beyond it is
    /// discarded and new operations extend the new timeline.
    ///
    /// Returns the time actually landed on. Requires an active
    /// recording.
    pub fn goto_time(&mut self, target: SimTime) -> Result<SimTime, EdbError> {
        if self.tape.is_none() {
            return Err(EdbError::NoRecording { op: "goto_time" });
        }
        let now = self.now();
        if target >= now {
            if target > now {
                self.advance(SimTime::from_ns(target.as_ns() - now.as_ns()));
            }
            return Ok(self.now());
        }
        let target_ns = target.as_ns();
        let tape = self.tape.take().expect("checked above");
        if target_ns < tape.start_ns {
            let start_ns = tape.start_ns;
            self.tape = Some(tape);
            return Err(EdbError::Replay {
                detail: format!(
                    "target {target_ns} ns precedes the recording start ({start_ns} ns)"
                ),
            });
        }

        // The latest full snapshot at or before the target.
        let mut restore_idx = None;
        for (i, entry) in tape.entries.iter().enumerate() {
            if let Entry::Snapshot { now_ns, .. } = entry {
                if *now_ns <= target_ns {
                    restore_idx = Some(i);
                }
            }
        }

        // The prefix of the tape that survives, and the ops to re-run.
        let keep = match restore_idx {
            Some(i) => i + 1,
            // No usable snapshot: keep only the leading boundary entries
            // and rebuild the session from its spec.
            None => tape
                .entries
                .iter()
                .take_while(|e| !matches!(e, Entry::Op { .. }))
                .count(),
        };
        let replay_ops: Vec<SessionOp> = tape.entries[keep..]
            .iter()
            .filter_map(|entry| match entry {
                Entry::Op { now_ns, value } if *now_ns < target_ns => {
                    SessionOp::from_value(value).ok()
                }
                _ => None,
            })
            .collect();

        match restore_idx {
            Some(i) => {
                let Entry::Snapshot { state, .. } = &tape.entries[i] else {
                    unreachable!("restore_idx points at a snapshot");
                };
                restore_snapshot(self, state).map_err(|e| EdbError::Replay {
                    detail: format!("snapshot restore failed: {e}"),
                })?;
            }
            None => {
                let spec_value = tape.spec.as_ref().ok_or_else(|| EdbError::Replay {
                    detail: "no snapshot covers the target and the recording carries no spec"
                        .into(),
                })?;
                let spec = SessionSpec::from_value(spec_value).map_err(|e| EdbError::Replay {
                    detail: format!("embedded spec does not decode: {e}"),
                })?;
                *self = spec.build()?;
            }
        }

        // Re-install the truncated tape, then re-execute forward. The
        // re-executed ops re-record, so the tape's entries (and boundary
        // snapshots) regrow exactly as they stood the first time.
        let mut tape = tape;
        tape.entries.truncate(keep);
        tape.ops_since_boundary = 0;
        self.tape = Some(tape);
        for op in replay_ops {
            match op {
                SessionOp::Advance { ns } => {
                    let remaining = target_ns.saturating_sub(self.now().as_ns());
                    let ns = ns.min(remaining);
                    if ns > 0 {
                        self.advance(SimTime::from_ns(ns));
                    }
                }
                // Waiting for a session is pure stepping, so the state
                // at any instant inside it equals a plain advance:
                // clamping the timeout to the target reproduces the
                // prefix exactly and stops on time.
                SessionOp::RunUntilSession { timeout_ns } => {
                    let remaining = target_ns.saturating_sub(self.now().as_ns());
                    let timeout = timeout_ns.min(remaining);
                    if timeout > 0 {
                        let _ = self.run_until_session(SimTime::from_ns(timeout));
                    }
                }
                other => other.apply(self),
            }
        }
        // Land exactly on the target when it falls in open time.
        let short = target_ns.saturating_sub(self.now().as_ns());
        if short > 0 {
            self.advance(SimTime::from_ns(short));
        }
        Ok(self.now())
    }

    /// Steps backward `n` CPU cycles (clamped to the recording start).
    /// Returns the time landed on. Requires an active recording.
    pub fn step_back(&mut self, n: u64) -> Result<SimTime, EdbError> {
        if self.tape.is_none() {
            return Err(EdbError::NoRecording { op: "step_back" });
        }
        let cycle_ns = (1e9 / self.system().device().config().clock_hz).round() as u64;
        let back = n.max(1).saturating_mul(cycle_ns.max(1));
        let start_ns = self.tape.as_ref().map_or(0, |t| t.start_ns);
        let target = self.now().as_ns().saturating_sub(back).max(start_ns);
        self.goto_time(SimTime::from_ns(target))
    }

    /// Runs *backward* to the most recent debugger stop event —
    /// breakpoint hit, energy breakpoint, or assert failure — strictly
    /// before the current time. Returns the time landed on, or `None`
    /// (and does not move) when no earlier stop event exists. Requires
    /// an active recording.
    pub fn reverse_continue(&mut self) -> Result<Option<SimTime>, EdbError> {
        if self.tape.is_none() {
            return Err(EdbError::NoRecording {
                op: "reverse_continue",
            });
        }
        let now_ns = self.now().as_ns();
        let stop = self
            .events()
            .iter()
            .rev()
            .find(|e| {
                e.at.as_ns() < now_ns
                    && matches!(e.event.tag(), "breakpoint" | "energy-breakpoint" | "assert")
            })
            .map(|e| e.at);
        match stop {
            Some(at) => Ok(Some(self.goto_time(at)?)),
            None => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------
// Whole-recording replay and divergence checking
// ---------------------------------------------------------------------

/// A replayed run disagreed with its recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Recorded sim time of the diverging entry.
    pub now_ns: u64,
    /// Index of the diverging entry in [`Recording::entries`] (or
    /// `entries.len()` for the End digest).
    pub entry_index: usize,
    /// What disagreed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at entry {} ({} ns): {}",
            self.entry_index, self.now_ns, self.detail
        )
    }
}

/// What [`verify`] checked when a recording replayed divergence-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Operations re-executed.
    pub ops: usize,
    /// Full snapshots compared bit-for-bit.
    pub snapshots: usize,
    /// Digest boundaries compared.
    pub digests: usize,
    /// Sim time at the end of the tape, nanoseconds.
    pub end_ns: u64,
}

fn divergence(now_ns: u64, entry_index: usize, detail: impl Into<String>) -> EdbError {
    EdbError::Replay {
        detail: Divergence {
            now_ns,
            entry_index,
            detail: detail.into(),
        }
        .to_string(),
    }
}

/// Rebuilds the recorded session from its embedded spec, positioned at
/// the start of the tape (restoring the leading snapshot when the
/// recording began mid-run).
fn session_at_start(recording: &Recording) -> Result<DebugSession, EdbError> {
    let spec_value = recording.spec.as_ref().ok_or_else(|| EdbError::Replay {
        detail: "recording carries no session spec".into(),
    })?;
    let spec = SessionSpec::from_value(spec_value).map_err(|e| EdbError::Replay {
        detail: format!("embedded spec does not decode: {e}"),
    })?;
    let mut session = spec.build()?;
    if recording.start_ns != session.now().as_ns() {
        // The recording began mid-run: the first entry must be a full
        // snapshot to stand the session up at the start of the tape.
        match recording.entries.first() {
            Some(Entry::Snapshot { state, .. }) => {
                restore_snapshot(&mut session, state).map_err(|e| EdbError::Replay {
                    detail: format!("leading snapshot restore failed: {e}"),
                })?;
            }
            _ => {
                return Err(EdbError::Replay {
                    detail: format!(
                        "recording starts at {} ns but has no leading snapshot",
                        recording.start_ns
                    ),
                });
            }
        }
    }
    Ok(session)
}

/// Re-executes `recording` end to end without divergence checking and
/// returns the session at the end of the tape.
pub fn replay(recording: &Recording) -> Result<DebugSession, EdbError> {
    let mut session = session_at_start(recording)?;
    for entry in &recording.entries {
        if let Entry::Op { value, .. } = entry {
            let op = SessionOp::from_value(value).map_err(|e| EdbError::Replay {
                detail: format!("recorded op does not decode: {e}"),
            })?;
            op.apply(&mut session);
        }
    }
    Ok(session)
}

/// Re-executes `recording` end to end, asserting **bit identity**
/// against every recorded boundary: full snapshots compare as canonical
/// encodings (architectural state, memory images, and the energy
/// trajectory down to IEEE-754 bit patterns), digest boundaries compare
/// state digests, op entries compare their timestamps, and the End
/// chunk seals the final state.
pub fn verify(recording: &Recording) -> Result<VerifyReport, EdbError> {
    let mut session = session_at_start(recording)?;
    let mut report = VerifyReport {
        ops: 0,
        snapshots: 0,
        digests: 0,
        end_ns: 0,
    };
    let started_mid_run = recording.start_ns != 0;
    for (i, entry) in recording.entries.iter().enumerate() {
        match entry {
            Entry::Op { now_ns, value } => {
                let now = session.now().as_ns();
                if now != *now_ns {
                    return Err(divergence(
                        *now_ns,
                        i,
                        format!("op began at {now} ns on replay, {now_ns} ns when recorded"),
                    ));
                }
                let op = SessionOp::from_value(value).map_err(|e| EdbError::Replay {
                    detail: format!("recorded op does not decode: {e}"),
                })?;
                op.apply(&mut session);
                report.ops += 1;
            }
            Entry::Snapshot { now_ns, state } => {
                if i == 0 && started_mid_run {
                    // The leading snapshot stood the session up; nothing
                    // to compare against yet.
                    continue;
                }
                let now = session.now().as_ns();
                if now != *now_ns {
                    return Err(divergence(
                        *now_ns,
                        i,
                        format!("snapshot at {now} ns on replay, {now_ns} ns when recorded"),
                    ));
                }
                let live = snapshot_state(&session)
                    .ok_or_else(|| divergence(*now_ns, i, "world no longer supports snapshots"))?;
                if value_digest(&live) != value_digest(state) {
                    return Err(divergence(
                        *now_ns,
                        i,
                        snapshot_mismatch_detail(state, &live),
                    ));
                }
                report.snapshots += 1;
            }
            Entry::Digest { now_ns, digest } => {
                let now = session.now().as_ns();
                if now != *now_ns {
                    return Err(divergence(
                        *now_ns,
                        i,
                        format!("digest at {now} ns on replay, {now_ns} ns when recorded"),
                    ));
                }
                let live = session.system().state_digest();
                if live != *digest {
                    return Err(divergence(
                        *now_ns,
                        i,
                        format!("state digest {live:#018x} != recorded {digest:#018x}"),
                    ));
                }
                report.digests += 1;
            }
        }
    }
    let (end_ns, end_digest) = recording.end.ok_or_else(|| EdbError::Replay {
        detail: "recording has no End seal".into(),
    })?;
    let now = session.now().as_ns();
    if now != end_ns {
        return Err(divergence(
            end_ns,
            recording.entries.len(),
            format!("tape ends at {now} ns on replay, {end_ns} ns when recorded"),
        ));
    }
    let live = session.system().state_digest();
    if live != end_digest {
        return Err(divergence(
            end_ns,
            recording.entries.len(),
            format!("final state digest {live:#018x} != recorded {end_digest:#018x}"),
        ));
    }
    report.end_ns = end_ns;
    Ok(report)
}

/// Names the top-level snapshot fields that disagree, so a divergence
/// report says *where* (device vs debugger vs harvester) instead of
/// just *that*.
fn snapshot_mismatch_detail(recorded: &Value, live: &Value) -> String {
    let mut parts = Vec::new();
    for name in ["sys", "breakpoints", "guards"] {
        match (recorded.get_field(name), live.get_field(name)) {
            (Some(a), Some(b)) if value_digest(a) != value_digest(b) => {
                if name == "sys" {
                    for sub in ["device", "edb", "symbols", "obs", "world"] {
                        if let (Some(sa), Some(sb)) = (a.get_field(sub), b.get_field(sub)) {
                            if value_digest(sa) != value_digest(sb) {
                                parts.push(format!("sys.{sub}"));
                            }
                        }
                    }
                } else {
                    parts.push(name.to_string());
                }
            }
            (Some(_), Some(_)) => {}
            _ => parts.push(format!("{name} (missing)")),
        }
    }
    if parts.is_empty() {
        "snapshot encodings differ".to_string()
    } else {
        format!("snapshot fields differ: {}", parts.join(", "))
    }
}

// ---------------------------------------------------------------------
// Fleet recordings: the `fleet_*` RPC surface on the replay tape
// ---------------------------------------------------------------------

/// One recorded fleet operation — the only inputs a fleet session has
/// (everything inside [`FleetSim`] is a pure function of the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetOp {
    /// Advance by carrier milliseconds (`fleet_run {ms}`).
    RunMs(u64),
    /// Advance by inventory slots (`fleet_run {slots}`).
    RunSlots(u64),
}

/// The rebuildable spec embedded in a fleet recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// The fleet configuration.
    pub config: FleetConfig,
    /// The trial seed.
    pub seed: u64,
}

impl FleetSpec {
    /// Builds the simulation this spec describes.
    pub fn build(&self) -> FleetSim {
        FleetSim::new(self.config, self.seed)
    }
}

/// Digest of a fleet simulation's observable state: the aggregate
/// stats plus every tag's electrical state (capacitor bits, mode,
/// inventory flag, power cycles), folded through the canonical value
/// encoding. Two sims digest equal iff a replay is bit-faithful at the
/// level the RPC surface can observe.
pub fn fleet_digest(sim: &FleetSim) -> u64 {
    let stats = sim.stats();
    let mut tags = Vec::with_capacity(stats.tags as usize);
    for g in 0..stats.tags as usize {
        if let Some(t) = sim.tag_status(g) {
            tags.push(Value::Seq(vec![
                Value::F64(t.v_cap),
                Value::Bool(t.powered),
                Value::Bool(t.inventoried),
                Value::Bool(t.ever_read),
                Value::U64(u64::from(t.power_cycles)),
                Value::F64(t.active_secs),
            ]));
        }
    }
    let state = Value::Map(vec![
        (Value::Str("now_ns".into()), Value::U64(sim.now().as_ns())),
        (
            Value::Str("q".into()),
            Value::U64(u64::from(sim.reader().q())),
        ),
        (Value::Str("rounds".into()), Value::U64(stats.gen2.rounds)),
        (Value::Str("slots".into()), Value::U64(stats.gen2.slots())),
        (Value::Str("epcs".into()), Value::U64(stats.gen2.epcs_read)),
        (
            Value::Str("collisions".into()),
            Value::U64(stats.gen2.collision_slots),
        ),
        (
            Value::Str("unique".into()),
            Value::U64(stats.unique_tags_read),
        ),
        (
            Value::Str("tag_cycles".into()),
            Value::F64(stats.tag_cycles),
        ),
        (Value::Str("tags".into()), Value::Seq(tags)),
    ]);
    value_digest(&state)
}

/// Applies one recorded op to a live simulation — the single advance
/// path shared by the RPC handler and replay, so both execute
/// identically.
pub fn apply_fleet_op(sim: &mut FleetSim, op: FleetOp) {
    match op {
        FleetOp::RunMs(ms) => {
            let until = SimTime::from_ns(sim.now().as_ns() + ms * 1_000_000);
            while sim.now() < until {
                sim.step_slot();
            }
        }
        FleetOp::RunSlots(slots) => {
            for _ in 0..slots {
                sim.step_slot();
            }
        }
    }
}

/// The live tape of one fleet session: spec, recorded ops, and a state
/// digest at every op boundary. Sealed into a [`Recording`] by
/// [`export`](FleetTape::export) at any time.
#[derive(Debug, Clone)]
pub struct FleetTape {
    spec: FleetSpec,
    start_ns: u64,
    entries: Vec<Entry>,
}

impl FleetTape {
    /// Starts a tape for a freshly built sim, stamping the initial
    /// boundary digest.
    pub fn new(spec: FleetSpec, sim: &FleetSim) -> Self {
        FleetTape {
            spec,
            start_ns: sim.now().as_ns(),
            entries: vec![Entry::Digest {
                now_ns: sim.now().as_ns(),
                digest: fleet_digest(sim),
            }],
        }
    }

    /// Records one op and applies it to the sim, sealing the boundary
    /// with a post-op digest.
    pub fn run(&mut self, sim: &mut FleetSim, op: FleetOp) {
        self.entries.push(Entry::Op {
            now_ns: sim.now().as_ns(),
            value: op.to_value(),
        });
        apply_fleet_op(sim, op);
        self.entries.push(Entry::Digest {
            now_ns: sim.now().as_ns(),
            digest: fleet_digest(sim),
        });
    }

    /// Ops recorded so far.
    pub fn op_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Entry::Op { .. }))
            .count()
    }

    /// Seals a copy of the tape into a verifiable recording (digest
    /// boundaries at every op; no full snapshots — fleets rebuild from
    /// the embedded spec).
    pub fn export(&self, sim: &FleetSim) -> Recording {
        Recording {
            spec: Some(self.spec.to_value()),
            stride: 1,
            start_ns: self.start_ns,
            entries: self.entries.clone(),
            end: Some((sim.now().as_ns(), fleet_digest(sim))),
        }
    }
}

/// Replays a fleet recording from its embedded spec and checks every
/// boundary digest and the end-of-tape digest. Returns the number of
/// ops verified.
pub fn verify_fleet(recording: &Recording) -> Result<usize, String> {
    let spec_value = recording
        .spec
        .as_ref()
        .ok_or("recording has no embedded fleet spec")?;
    let spec = FleetSpec::from_value(spec_value).map_err(|e| format!("bad fleet spec: {e}"))?;
    let mut sim = spec.build();
    let mut ops = 0usize;
    for (k, entry) in recording.entries.iter().enumerate() {
        match entry {
            Entry::Op { value, .. } => {
                let op =
                    FleetOp::from_value(value).map_err(|e| format!("entry {k}: bad op: {e}"))?;
                apply_fleet_op(&mut sim, op);
                ops += 1;
            }
            Entry::Digest { now_ns, digest } => {
                if sim.now().as_ns() != *now_ns || fleet_digest(&sim) != *digest {
                    return Err(format!(
                        "entry {k}: replay diverged after {ops} op(s) \
                         (at {} ns, recorded {} ns)",
                        sim.now().as_ns(),
                        now_ns
                    ));
                }
            }
            Entry::Snapshot { .. } => {
                return Err(format!("entry {k}: fleet recordings are digest-only"));
            }
        }
    }
    if let Some((end_ns, end_digest)) = recording.end {
        if sim.now().as_ns() != end_ns || fleet_digest(&sim) != end_digest {
            return Err(format!("end-of-tape digest mismatch after {ops} op(s)"));
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debugger::DebugRequest;

    #[test]
    fn fleet_recordings_replay_and_verify() {
        let spec = FleetSpec {
            config: FleetConfig::standard(40),
            seed: 9,
        };
        let mut sim = spec.build();
        let mut tape = FleetTape::new(spec, &sim);
        tape.run(&mut sim, FleetOp::RunMs(300));
        tape.run(&mut sim, FleetOp::RunSlots(50));
        tape.run(&mut sim, FleetOp::RunMs(200));
        assert_eq!(tape.op_count(), 3);
        let rec = tape.export(&sim);

        // The container round-trips and replays divergence-free.
        let back = Recording::from_bytes(&rec.to_bytes()).expect("parses");
        assert_eq!(verify_fleet(&back), Ok(3));

        // Tampering is caught: drop the tail, keep the end digest.
        let mut broken = back.clone();
        broken.entries.truncate(broken.entries.len() - 2);
        assert!(verify_fleet(&broken).is_err());
    }

    const ASSERT_APP: &str = r#"
        .org 0x4400
    main:
        movi sp, 0x2400
        movi r1, 0x6000
        movi r0, 0x1101
        st   [r1], r0
    again:
        movi r0, 1
        call __edb_assert_fail
        jmp  again
        .org 0xFFFE
        .word main
        "#;

    /// A recorded interactive run with a little of everything: charge,
    /// session open, reads, a write, resume, plain time.
    fn recorded_run(stride: u64) -> (DebugSession, SessionSpec) {
        let spec = SessionSpec::bench(ASSERT_APP);
        let mut s = spec.record(stride).expect("builds");
        let _ = s.charge_to(2.45);
        assert!(s.run_until_session(SimTime::from_secs(2)));
        let _ = s.perform(DebugRequest::ReadWord { addr: 0x6000 });
        let _ = s.perform(DebugRequest::WriteWord {
            addr: 0x6002,
            value: 0xBEEF,
        });
        let _ = s.perform(DebugRequest::ReadWord { addr: 0x6002 });
        let _ = s.resume();
        s.advance(SimTime::from_ms(20));
        (s, spec)
    }

    #[test]
    fn recording_replays_divergence_free() {
        for stride in [1, 3, 64] {
            let (mut s, _) = recorded_run(stride);
            let rec = s.stop_recording().expect("was recording");
            assert!(rec.op_count() > 5, "stride {stride}: ops recorded");
            let report = verify(&rec).unwrap_or_else(|e| panic!("stride {stride}: {e}"));
            assert_eq!(report.ops, rec.op_count());
            assert!(report.snapshots >= 1, "stride {stride}");
        }
    }

    #[test]
    fn recordings_are_byte_stable_across_passes() {
        let rec_a = {
            let (mut s, _) = recorded_run(4);
            s.stop_recording().expect("recording")
        };
        let rec_b = {
            let (mut s, _) = recorded_run(4);
            s.stop_recording().expect("recording")
        };
        assert_eq!(
            rec_a.to_bytes(),
            rec_b.to_bytes(),
            "two passes over the same spec must serialize identically"
        );
    }

    #[test]
    fn tampered_recording_fails_verification() {
        let (mut s, _) = recorded_run(2);
        let mut rec = s.stop_recording().expect("recording");
        // Corrupt one recorded digest/snapshot boundary.
        let idx = rec
            .entries
            .iter()
            .rposition(|e| matches!(e, Entry::Snapshot { .. }))
            .expect("has a snapshot");
        if let Entry::Snapshot { state, .. } = &mut rec.entries[idx] {
            *state = Value::Map(vec![(Value::Str("sys".into()), Value::Null)]);
        }
        let err = verify(&rec).expect_err("tamper must be caught");
        assert!(err.to_string().contains("divergence"), "{err}");
    }

    #[test]
    fn goto_time_lands_exactly_and_truncates_forward() {
        let (mut s, _) = recorded_run(4);
        let end = s.now();
        let target = SimTime::from_ns(end.as_ns() / 2);
        let landed = s.goto_time(target).expect("travels");
        assert!(
            landed.as_ns() >= target.as_ns(),
            "landed {landed:?} before target {target:?}"
        );
        assert!(landed < end, "went backward");
        assert_eq!(s.now(), landed);
        // The new timeline extends from the landing point and still
        // verifies end to end.
        s.advance(SimTime::from_ms(5));
        let rec = s.stop_recording().expect("recording survived travel");
        verify(&rec).expect("new timeline verifies");
    }

    #[test]
    fn goto_time_back_to_start_matches_a_fresh_session() {
        let (mut s, spec) = recorded_run(4);
        let landed = s.goto_time(SimTime::ZERO).expect("travels to start");
        assert_eq!(landed, SimTime::ZERO);
        let fresh = spec.build().expect("builds");
        assert_eq!(
            s.system().state_digest(),
            fresh.system().state_digest(),
            "travelling to t=0 must reproduce the pristine bench"
        );
    }

    #[test]
    fn step_back_moves_strictly_backward() {
        let (mut s, _) = recorded_run(4);
        let before = s.now();
        let landed = s.step_back(1000).expect("steps back");
        assert!(landed < before, "{landed:?} !< {before:?}");
        assert_eq!(s.now(), landed);
    }

    #[test]
    fn reverse_continue_returns_to_the_assert_stop() {
        let (mut s, _) = recorded_run(4);
        let stop = s
            .reverse_continue()
            .expect("travels")
            .expect("an assert fired earlier in this run");
        assert_eq!(s.now(), stop);
        // The stop event is the latest assert strictly before the old
        // now; the event log (restored + re-executed) still contains it
        // at exactly that time.
        assert!(
            s.events()
                .iter()
                .any(|e| e.at == stop && e.event.tag() == "assert"),
            "assert event present at the landing time"
        );
    }

    #[test]
    fn time_travel_requires_a_recording() {
        let mut s = SessionSpec::bench(ASSERT_APP).build().expect("builds");
        assert!(matches!(
            s.goto_time(SimTime::ZERO),
            Err(EdbError::NoRecording { op: "goto_time" })
        ));
        assert!(matches!(
            s.step_back(1),
            Err(EdbError::NoRecording { op: "step_back" })
        ));
        assert!(matches!(
            s.reverse_continue(),
            Err(EdbError::NoRecording {
                op: "reverse_continue"
            })
        ));
    }

    #[test]
    fn divergent_replay_names_the_layer() {
        // Bit-flip the recorded capacitor voltage inside a snapshot: the
        // divergence report must point at the device.
        let (mut s, _) = recorded_run(1);
        let rec = s.stop_recording().expect("recording");
        let mut bad = rec.clone();
        let idx = bad
            .entries
            .iter()
            .rposition(|e| matches!(e, Entry::Snapshot { .. }))
            .expect("has snapshots");
        if let Entry::Snapshot { state, .. } = &mut bad.entries[idx] {
            flip_first_f64(state);
        }
        let err = verify(&bad).expect_err("must diverge");
        assert!(err.to_string().contains("sys."), "{err}");
    }

    fn flip_first_f64(v: &mut Value) -> bool {
        match v {
            Value::F64(x) => {
                *x = f64::from_bits(x.to_bits() ^ 1);
                true
            }
            Value::Seq(items) => items.iter_mut().any(flip_first_f64),
            Value::Map(pairs) => pairs.iter_mut().any(|(_, val)| flip_first_f64(val)),
            _ => false,
        }
    }

    #[test]
    fn spec_round_trips_through_value() {
        let spec = SessionSpec::harvested(ASSERT_APP, 7);
        let back = SessionSpec::from_value(&spec.to_value()).expect("round-trips");
        assert_eq!(back.seed, 7);
        assert_eq!(back.world, spec.world);
        assert_eq!(back.firmware, spec.firmware);
    }
}
