//! The debugger: passive monitoring, active energy manipulation, and the
//! intermittence-aware debugging primitives.
//!
//! [`Edb`] is the host/board side of the system. Its only *electrical*
//! influence on the target flows through [`Edb::electrical_current`] —
//! the charge/discharge circuit plus the sub-µA wiring leakage — so
//! energy-interference-freedom is checkable by comparing runs with and
//! without the debugger attached. Its *informational* inputs are the
//! wire-observable [`DeviceEvent`]s and the debug-signal/UART queues; its
//! decisions run on a periodic firmware tick with realistic latency.

use crate::adc::Adc;
use crate::charge::{ChargeCircuit, ChargeMode, LevelController};
use crate::error::EdbError;
use crate::events::{DebugEvent, EventLog};
use crate::protocol::{self, HostCommand, ReplyDecoder};
use crate::wiring::{ChannelFault, ChannelFaultConfig, LineStates, Wiring};
use edb_device::{Device, DeviceEvent};
use edb_energy::{PowerEdge, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Debugger firmware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdbConfig {
    /// Passive energy-trace sampling period.
    pub adc_sample_period: SimTime,
    /// Firmware main-loop period — the latency with which signals are
    /// noticed and acknowledged.
    pub tick_period: SimTime,
    /// Charge/discharge control-loop sampling period.
    pub control_period: SimTime,
    /// Early-stop margin when restoring energy after a breakpoint or
    /// assert session, volts. Conservative (positive) so a resumed target
    /// never finds *less* energy than it saved — the source of Table 3's
    /// positive mean ΔV.
    pub restore_guard_band: f64,
    /// Early-stop margin for energy-guard exits, volts. Kept tight (a
    /// small positive bias) because guard exits happen constantly and
    /// their error must not accumulate into application-visible energy.
    pub guard_band: f64,
    /// Whether passive energy samples are logged as events.
    pub energy_trace: bool,
    /// Whether GPIO/UART/I²C events are logged.
    pub io_trace: bool,
    /// RNG seed for the ADC and wiring instances.
    pub seed: u64,
    /// Per-attempt sim-time deadline for a framed debug command: if no
    /// checksum-valid reply completes within this window, the command is
    /// re-sent (or aborted once the retry budget runs out).
    pub cmd_timeout: SimTime,
    /// Bounded re-sends after a command's first attempt.
    pub cmd_retries: u32,
    /// Minimum backoff before a re-send. Sized to cover the worst-case
    /// tail of a torn reply still pacing out of the target's UART, so
    /// stale bytes arrive (and are discarded) *during* the backoff
    /// instead of rotating into the retry's reply decoder.
    pub retry_flush: SimTime,
}

impl EdbConfig {
    /// The prototype defaults.
    pub fn prototype() -> Self {
        EdbConfig {
            adc_sample_period: SimTime::from_us(200),
            tick_period: SimTime::from_us(20),
            control_period: SimTime::from_us(150),
            restore_guard_band: 0.055,
            guard_band: 0.004,
            energy_trace: true,
            io_trace: true,
            seed: 0xEDB,
            cmd_timeout: SimTime::from_ms(5),
            cmd_retries: 3,
            // Four reply bytes at the ~174 µs/byte debug-UART pacing.
            retry_flush: SimTime::from_us(700),
        }
    }
}

impl Default for EdbConfig {
    fn default() -> Self {
        EdbConfig::prototype()
    }
}

/// Why an interactive session is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// A `libEDB` assertion failed (keep-alive engaged).
    Assert {
        /// Assertion site ID.
        id: u8,
    },
    /// An internal code breakpoint hit.
    Breakpoint {
        /// Breakpoint ID.
        id: u8,
    },
    /// An energy breakpoint (threshold crossing) fired.
    EnergyBreakpoint,
    /// The console requested a session on demand.
    Console,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mode {
    /// Watching only.
    Passive,
    /// Inside an energy-guarded region: tethered, level saved.
    Guard { saved: f64 },
    /// Discharging back to the pre-guard level; ack stays up until done.
    GuardRestore { saved: f64 },
    /// Interactive session: tethered, target in its service loop.
    Session { kind: SessionKind, saved: f64 },
    /// Post-session restore: discharging to the saved level before
    /// releasing the target.
    SessionRestore { saved: f64 },
}

/// An in-flight framed debug-UART exchange with the target.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InFlight {
    /// The submitted request this exchange resolves.
    id: RequestId,
    /// The command being exchanged.
    cmd: HostCommand,
    /// Incremental reply parser (reset on every retry and torn attempt).
    decoder: ReplyDecoder,
    /// Send attempts so far (1 = first try).
    attempts: u32,
    /// When the current attempt times out.
    attempt_deadline: SimTime,
    /// Backoff: when to send the next attempt (None while one is live).
    resend_at: Option<SimTime>,
    /// The target browned out mid-exchange; the command is parked until
    /// it re-enters its service loop (a new session opens).
    await_service: bool,
    /// While parked: give up if no service loop appears by then.
    park_deadline: SimTime,
}

/// How the last framed command exchange ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionOutcome {
    /// The first attempt completed with a checksum-valid reply.
    Completed,
    /// Completed after `retries` re-sends (timeouts or corrupt replies).
    Retried {
        /// Number of re-sends beyond the first attempt.
        retries: u32,
    },
    /// The target browned out mid-command and never re-entered its
    /// service loop within the recovery window.
    AbortedByBrownout,
    /// Gave up for another reason (retry budget exhausted, persistent
    /// corruption).
    Aborted {
        /// The surfaced error.
        error: EdbError,
    },
}

/// Handle for a submitted [`DebugRequest`], returned by [`Edb::submit`]
/// and redeemed with [`Edb::poll`]. IDs are monotonically increasing per
/// debugger instance; a later `submit` supersedes an earlier one (the
/// wire protocol runs one exchange at a time).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

/// A typed debugger operation over the framed debug-UART protocol — the
/// request half of the engine API. Each variant maps 1:1 onto a wire
/// [`HostCommand`] that expects a reply (`CMD_CONTINUE` is fire-and-
/// forget and is driven by [`Edb::resume`], not a request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DebugRequest {
    /// Read one word of target memory.
    ReadWord {
        /// Target address (even).
        addr: u16,
    },
    /// Write one word of target memory and await the acknowledge.
    WriteWord {
        /// Target address (even).
        addr: u16,
        /// Word to store.
        value: u16,
    },
    /// Ask the target where execution will resume (the service loop's
    /// return address).
    GetPc,
}

impl DebugRequest {
    /// The wire command this request is carried by.
    pub fn host_command(&self) -> HostCommand {
        match *self {
            DebugRequest::ReadWord { addr } => HostCommand::Read { addr },
            DebugRequest::WriteWord { addr, value } => HostCommand::Write { addr, value },
            DebugRequest::GetPc => HostCommand::GetPc,
        }
    }

    /// The typed request carried by `cmd`, or `None` for `CMD_CONTINUE`
    /// (which expects no reply and is not a tracked exchange).
    pub fn from_host_command(cmd: HostCommand) -> Option<Self> {
        match cmd {
            HostCommand::Read { addr } => Some(DebugRequest::ReadWord { addr }),
            HostCommand::Write { addr, value } => Some(DebugRequest::WriteWord { addr, value }),
            HostCommand::GetPc => Some(DebugRequest::GetPc),
            HostCommand::Continue => None,
        }
    }

    /// The wire-protocol name of the command (`READ`, `WRITE`, `GET_PC`).
    pub fn name(&self) -> &'static str {
        self.host_command().name()
    }
}

/// The typed completion of a [`DebugRequest`] — the response half of the
/// engine API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DebugResponse {
    /// A read's value.
    Word {
        /// The word read from target memory.
        value: u16,
    },
    /// A write's checksum-valid acknowledge.
    WriteAck,
    /// The target's resume address.
    Pc {
        /// Where execution will resume after the session closes.
        pc: u16,
    },
}

impl DebugResponse {
    /// Builds the typed response for `cmd` from the raw reply word.
    fn from_wire(cmd: HostCommand, word: u16) -> Self {
        match cmd {
            HostCommand::Read { .. } => DebugResponse::Word { value: word },
            HostCommand::Write { .. } => DebugResponse::WriteAck,
            HostCommand::GetPc | HostCommand::Continue => DebugResponse::Pc { pc: word },
        }
    }

    /// The raw reply word this response was decoded from (a write's
    /// acknowledge renders as the protocol `ACK` byte) — the bridge for
    /// callers that fold wire words into digests.
    pub fn word(&self) -> u16 {
        match *self {
            DebugResponse::Word { value } => value,
            DebugResponse::WriteAck => u16::from(protocol::ACK),
            DebugResponse::Pc { pc } => pc,
        }
    }
}

/// What [`Edb::poll`] found for a given [`RequestId`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionPoll<T> {
    /// The exchange is still on the wire (or parked across a brown-out).
    Pending {
        /// Send attempts so far.
        attempts: u32,
    },
    /// The exchange finished: a typed response, or a typed error.
    /// Consumed by the poll that observes it.
    Ready(Result<T, EdbError>),
    /// The ID does not name the live exchange: its result was already
    /// consumed, or a later [`Edb::submit`] preempted it.
    Superseded,
}

/// A finished exchange waiting for its [`Edb::poll`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Finished {
    id: RequestId,
    cmd: HostCommand,
    result: Result<u16, EdbError>,
}

/// A pending energy breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct EnergyBreakpoint {
    threshold: f64,
    armed: bool,
}

/// The Energy-interference-free Debugger.
///
/// Construct, [`attach`](Edb::attach) to an assembled image (so the
/// debugger knows `libEDB`'s breakpoint-mask address), then let the
/// system harness drive [`Edb::electrical_current`], [`Edb::observe`] and
/// [`Edb::tick`] every device step. Higher-level operations (charge,
/// breakpoints, memory reads) are exposed for the console and the
/// experiment harnesses.
#[derive(Debug, Serialize, Deserialize)]
pub struct Edb {
    config: EdbConfig,
    adc: Adc,
    wiring: Wiring,
    circuit: ChargeCircuit,
    log: EventLog,
    mode: Mode,
    controller: Option<LevelController>,
    /// Completion flag for console-initiated charge/discharge.
    level_op_done: bool,
    next_tick: SimTime,
    next_adc: SimTime,
    last_reading: f64,
    /// Breakpoint ID → optional energy condition. Ordered so that a
    /// serialized snapshot of the debugger is canonical (iteration order
    /// is part of the recording's byte identity).
    code_breakpoints: BTreeMap<u8, Option<f64>>,
    energy_breakpoints: Vec<EnergyBreakpoint>,
    watch_enabled: BTreeSet<u8>,
    watch_all: bool,
    printf_buf: Vec<u8>,
    inflight: Option<InFlight>,
    /// Monotonic source for [`RequestId`]s.
    next_request: u64,
    /// The finished exchange waiting to be consumed by [`Edb::poll`].
    finished: Option<Finished>,
    last_outcome: Option<SessionOutcome>,
    /// Injectable noise on both directions of the debug UART.
    channel_fault: Option<ChannelFault>,
    /// Backoff RNG — seeded from the config, drawn ONLY when a retry is
    /// scheduled, so fault-free runs consume zero draws and stay
    /// bit-identical to the golden manifests.
    retry_rng: StdRng,
    bkpt_mask_addr: Option<u16>,
    /// Charge delivered through the tether/charge circuit, coulombs
    /// (instrumentation).
    charge_delivered: f64,
    /// Memoized passive wire drain for the last-seen line states —
    /// `Wiring::drain_amps` is deterministic in the states, so the
    /// (states → amps) pair caches the common all-idle case.
    drain_cache: Option<(LineStates, f64)>,
}

impl Edb {
    /// Creates a debugger with the given configuration.
    pub fn new(config: EdbConfig) -> Self {
        Edb {
            adc: Adc::new(config.seed),
            wiring: Wiring::standard(config.seed.wrapping_add(1)),
            circuit: ChargeCircuit::new(),
            log: EventLog::new(),
            mode: Mode::Passive,
            controller: None,
            level_op_done: false,
            next_tick: SimTime::ZERO,
            next_adc: SimTime::ZERO,
            last_reading: 0.0,
            code_breakpoints: BTreeMap::new(),
            energy_breakpoints: Vec::new(),
            watch_enabled: BTreeSet::new(),
            watch_all: true,
            printf_buf: Vec::new(),
            inflight: None,
            next_request: 0,
            finished: None,
            last_outcome: None,
            channel_fault: None,
            retry_rng: StdRng::seed_from_u64(config.seed.wrapping_add(0x5EED)),
            bkpt_mask_addr: None,
            charge_delivered: 0.0,
            drain_cache: None,
            config,
        }
    }

    /// Records image metadata (the `libEDB` breakpoint-mask address).
    pub fn attach(&mut self, image: &edb_mcu::Image) {
        self.bkpt_mask_addr = crate::libedb::bkpt_mask_addr(image);
    }

    /// The configuration.
    pub fn config(&self) -> EdbConfig {
        self.config
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Mutable event log access (experiments clear it between phases).
    pub fn log_mut(&mut self) -> &mut EventLog {
        &mut self.log
    }

    /// The most recent ADC reading of `Vcap`, volts.
    pub fn last_reading(&self) -> f64 {
        self.last_reading
    }

    /// Whether an interactive session is open (including the
    /// energy-restore phase before the target is released).
    pub fn session_active(&self) -> bool {
        matches!(
            self.mode,
            Mode::Session { .. } | Mode::SessionRestore { .. }
        )
    }

    /// Whether the target is inside an energy-guarded region.
    pub fn in_guard(&self) -> bool {
        matches!(self.mode, Mode::Guard { .. } | Mode::GuardRestore { .. })
    }

    /// Whether a console-initiated charge/discharge just completed
    /// (cleared by the next level operation).
    pub fn level_op_done(&self) -> bool {
        self.level_op_done
    }

    /// Total charge delivered into the target, coulombs.
    pub fn charge_delivered(&self) -> f64 {
        self.charge_delivered
    }

    /// The charge-circuit mode right now (instrumentation).
    pub fn charge_mode(&self) -> ChargeMode {
        self.circuit.mode()
    }

    // ---------------------------------------------------------------
    // Console-facing operations
    // ---------------------------------------------------------------

    /// Begins charging the target to `volts` (Table 1's `charge` command).
    pub fn start_charge(&mut self, volts: f64, now: SimTime) {
        self.controller = Some(LevelController::raise(
            volts,
            self.config.control_period,
            0.0,
            now,
        ));
        self.level_op_done = false;
    }

    /// Begins discharging the target to `volts` (`discharge` command).
    pub fn start_discharge(&mut self, volts: f64, now: SimTime) {
        self.controller = Some(LevelController::lower(
            volts,
            self.config.control_period,
            0.0,
            now,
        ));
        self.level_op_done = false;
    }

    /// Enables an internal code breakpoint, optionally conditioned on the
    /// energy level (`break en id [energy]` — a *combined* breakpoint).
    /// Writes the target-side enable mask through the back channel.
    pub fn enable_breakpoint(&mut self, dev: &mut Device, id: u8, energy: Option<f64>) {
        self.code_breakpoints.insert(id, energy);
        self.sync_bkpt_mask(dev);
    }

    /// Disables an internal code breakpoint.
    pub fn disable_breakpoint(&mut self, dev: &mut Device, id: u8) {
        self.code_breakpoints.remove(&id);
        self.sync_bkpt_mask(dev);
    }

    fn sync_bkpt_mask(&mut self, dev: &mut Device) {
        if let Some(addr) = self.bkpt_mask_addr {
            let mask = self
                .code_breakpoints
                .keys()
                .fold(0u16, |m, &id| m | (1 << (id as u16 & 0xF)));
            dev.mem_mut().poke_word(addr, mask);
        }
    }

    /// Arms an energy breakpoint at `threshold` volts.
    pub fn arm_energy_breakpoint(&mut self, threshold: f64) {
        self.energy_breakpoints.push(EnergyBreakpoint {
            threshold,
            armed: true,
        });
    }

    /// Disarms all energy breakpoints at `threshold` (±1 mV).
    pub fn disarm_energy_breakpoint(&mut self, threshold: f64) {
        self.energy_breakpoints
            .retain(|b| (b.threshold - threshold).abs() > 1e-3);
    }

    /// Enables a watchpoint ID (when any ID has been explicitly enabled,
    /// only enabled IDs are logged; by default all are).
    pub fn enable_watchpoint(&mut self, id: u8) {
        self.watch_all = false;
        self.watch_enabled.insert(id);
    }

    /// Disables a watchpoint ID.
    pub fn disable_watchpoint(&mut self, id: u8) {
        self.watch_all = false;
        self.watch_enabled.remove(&id);
    }

    /// Installs (or clears) the injectable channel-fault model on both
    /// directions of the debug UART.
    pub fn set_channel_fault(&mut self, config: Option<ChannelFaultConfig>) {
        self.channel_fault = config.map(ChannelFault::new);
    }

    /// The channel-fault configuration, if fault injection is on.
    pub fn channel_fault_config(&self) -> Option<ChannelFaultConfig> {
        self.channel_fault.as_ref().map(ChannelFault::config)
    }

    /// Submits a typed request, starting its framed exchange on the
    /// wire. The target must be parked in its service loop (session
    /// active). Redeem the returned [`RequestId`] with [`Edb::poll`];
    /// the state machine re-sends on timeout or corruption with bounded,
    /// deterministic backoff, and surfaces a typed [`EdbError`] when the
    /// retry budget runs out. A prior in-flight request is preempted
    /// (logged, discarded — its ID polls as `Superseded`).
    pub fn submit(&mut self, dev: &mut Device, request: DebugRequest, now: SimTime) -> RequestId {
        self.preempt_stale(now);
        let id = self.next_request_id();
        let cmd = request.host_command();
        let decoder = ReplyDecoder::new(cmd).expect("every DebugRequest expects a reply");
        self.inflight = Some(InFlight {
            id,
            cmd,
            decoder,
            attempts: 0,
            attempt_deadline: now,
            resend_at: None,
            await_service: false,
            park_deadline: now,
        });
        self.send_attempt(dev, now);
        id
    }

    /// Polls the outcome of the exchange named by `id`: still pending,
    /// finished with a typed response or error (consumed by this call),
    /// or superseded — the result was already consumed, or a later
    /// [`Edb::submit`] preempted the request.
    pub fn poll(&mut self, id: RequestId) -> SessionPoll<DebugResponse> {
        if self.finished.as_ref().is_some_and(|fin| fin.id == id) {
            let fin = self.finished.take().expect("checked above");
            return SessionPoll::Ready(
                fin.result
                    .map(|word| DebugResponse::from_wire(fin.cmd, word)),
            );
        }
        match &self.inflight {
            Some(fl) if fl.id == id => SessionPoll::Pending {
                attempts: fl.attempts,
            },
            _ => SessionPoll::Superseded,
        }
    }

    /// Logs and discards a stale in-flight exchange, and clears the
    /// finished slot and outcome, making way for a new submission.
    fn preempt_stale(&mut self, now: SimTime) {
        if let Some(stale) = self.inflight.take() {
            self.log.push(
                now,
                DebugEvent::CommandAborted {
                    cmd: stale.cmd.name().to_string(),
                    error: "preempted by a new command".to_string(),
                },
            );
        }
        self.finished = None;
        self.last_outcome = None;
    }

    /// Draws the next monotonic request ID.
    fn next_request_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        id
    }

    /// Abandons the in-flight command, if any, and discards an
    /// unconsumed finished result. Returns how many send attempts had
    /// been made.
    pub fn cancel_command(&mut self) -> u32 {
        self.finished = None;
        self.inflight.take().map_or(0, |fl| fl.attempts)
    }

    /// How the most recent framed exchange ended — `None` while one is
    /// still in flight, or before any ran.
    pub fn last_outcome(&self) -> Option<&SessionOutcome> {
        self.last_outcome.as_ref()
    }

    /// Pushes host→target bytes through the (optional) noisy channel.
    fn push_host_bytes(&mut self, dev: &mut Device, bytes: &[u8]) {
        for &raw in bytes {
            let (delivered, n) = match &mut self.channel_fault {
                Some(fault) => fault.corrupt(raw),
                None => ([raw, 0], 1),
            };
            dev.peripherals
                .debug
                .rx_from_debugger
                .extend(delivered[..n].iter().copied());
        }
    }

    /// Releases the target's service loop with a framed `CMD_CONTINUE`.
    fn send_continue(&mut self, dev: &mut Device) {
        let frame = HostCommand::Continue.encode();
        self.push_host_bytes(dev, &frame);
    }

    fn send_attempt(&mut self, dev: &mut Device, now: SimTime) {
        let (frame, cmd, attempts) = {
            let Some(fl) = &mut self.inflight else {
                return;
            };
            fl.attempts += 1;
            fl.decoder.reset();
            fl.resend_at = None;
            fl.attempt_deadline = now + self.config.cmd_timeout;
            (fl.cmd.encode(), fl.cmd.name(), fl.attempts)
        };
        if attempts > 1 {
            self.log.push(
                now,
                DebugEvent::CommandRetry {
                    cmd: cmd.to_string(),
                    attempt: attempts,
                },
            );
        }
        self.push_host_bytes(dev, &frame);
    }

    /// Schedules a retry with deterministic backoff, or aborts with
    /// `error` once the budget (`1 + cmd_retries` attempts) is spent.
    fn retry_or_abort(&mut self, now: SimTime, error: EdbError) {
        let budget = self.config.cmd_retries + 1;
        let exhausted = self
            .inflight
            .as_ref()
            .is_some_and(|fl| fl.attempts >= budget);
        if exhausted {
            self.abort_inflight(now, error);
            return;
        }
        if let Some(fl) = &mut self.inflight {
            fl.decoder.reset();
            // Deterministic backoff: the flush window (so any stale
            // bytes of the torn attempt drain into the swallow path
            // first) plus 1–4 firmware ticks of seeded jitter, drawn
            // only on this (faulty) path — clean runs never touch it.
            let ticks = self.retry_rng.gen_range(1..=4u64);
            fl.resend_at = Some(
                now + self.config.retry_flush
                    + SimTime::from_ns(self.config.tick_period.as_ns() * ticks),
            );
        }
    }

    fn abort_inflight(&mut self, now: SimTime, error: EdbError) {
        let Some(fl) = self.inflight.take() else {
            return;
        };
        self.log.push(
            now,
            DebugEvent::CommandAborted {
                cmd: fl.cmd.name().to_string(),
                error: error.to_string(),
            },
        );
        self.last_outcome = Some(match &error {
            EdbError::AbortedByBrownout { .. } => SessionOutcome::AbortedByBrownout,
            _ => SessionOutcome::Aborted {
                error: error.clone(),
            },
        });
        self.finished = Some(Finished {
            id: fl.id,
            cmd: fl.cmd,
            result: Err(error),
        });
    }

    /// Drives the in-flight command's deadlines: parked commands give up
    /// past their recovery window, backoffs fire their re-send, and live
    /// attempts time out into [`Edb::retry_or_abort`].
    fn service_inflight(&mut self, dev: &mut Device, now: SimTime) {
        enum Due {
            ParkExpired(&'static str),
            Resend,
            AttemptTimeout(&'static str, u32),
        }
        let due = {
            let Some(fl) = &self.inflight else {
                return;
            };
            if fl.await_service {
                if now >= fl.park_deadline {
                    Due::ParkExpired(fl.cmd.name())
                } else {
                    return;
                }
            } else if let Some(at) = fl.resend_at {
                if now >= at {
                    Due::Resend
                } else {
                    return;
                }
            } else if now >= fl.attempt_deadline {
                Due::AttemptTimeout(fl.cmd.name(), fl.attempts)
            } else {
                return;
            }
        };
        match due {
            Due::ParkExpired(cmd) => {
                self.abort_inflight(now, EdbError::AbortedByBrownout { cmd });
            }
            Due::Resend => self.send_attempt(dev, now),
            Due::AttemptTimeout(cmd, attempts) => {
                self.retry_or_abort(now, EdbError::CommandTimeout { cmd, attempts });
            }
        }
    }

    /// Resumes the target from an interactive session: restores the saved
    /// energy level, then releases the service loop.
    pub fn resume(&mut self, now: SimTime) {
        if let Mode::Session { saved, .. } = self.mode {
            self.controller = Some(LevelController::lower(
                saved,
                self.config.control_period,
                self.config.restore_guard_band,
                now,
            ));
            self.mode = Mode::SessionRestore { saved };
        }
    }

    // ---------------------------------------------------------------
    // Harness-facing hooks
    // ---------------------------------------------------------------

    /// The debugger's net electrical contribution to the target's storage
    /// capacitor right now (amps, positive = charging), given the
    /// ground-truth node voltage and line states. This is the *only*
    /// electrical path from debugger to target.
    pub fn electrical_current(&mut self, v_cap: f64, states: LineStates, dt: f64) -> f64 {
        let drain = self.drain_for(states);
        self.electrical_current_with_drain(v_cap, drain, dt)
    }

    /// The passive wire drain for the given line states, memoized.
    /// `Wiring::drain_amps` is a pure function of the states, so a
    /// repeated lookup returns the identical `f64`.
    pub fn drain_for(&mut self, states: LineStates) -> f64 {
        match self.drain_cache {
            Some((cached, amps)) if cached == states => amps,
            _ => {
                let amps = self.wiring.drain_amps(states);
                self.drain_cache = Some((states, amps));
                amps
            }
        }
    }

    /// [`Edb::electrical_current`] with a precomputed drain (from
    /// [`Edb::drain_for`]): the batched span path hoists the drain
    /// lookup out of the per-quantum closure, which is sound because
    /// line states cannot change within a span.
    pub fn electrical_current_with_drain(&mut self, v_cap: f64, drain: f64, dt: f64) -> f64 {
        let circuit = self.circuit.current_into(v_cap);
        if circuit > 0.0 {
            self.charge_delivered += circuit * dt;
        }
        circuit - drain
    }

    /// The next instant at which [`Edb::tick`] does anything at all —
    /// before this, a `tick` call is provably a no-op (the ADC schedule
    /// and the firmware tick are both in the future), so the batched
    /// span path may skip the calls entirely.
    pub fn next_wakeup(&self) -> SimTime {
        self.next_adc.min(self.next_tick)
    }

    /// Ingests one device step's wire-observable events.
    pub fn observe(&mut self, dev: &Device, events: &[DeviceEvent], at: SimTime) {
        for event in events {
            match event {
                DeviceEvent::CodeMarker { id } => {
                    if self.watch_all || self.watch_enabled.contains(id) {
                        let v = self.adc.read_volts(dev.v_cap());
                        self.log
                            .push(at, DebugEvent::Watchpoint { id: *id, v_cap: v });
                    }
                }
                DeviceEvent::GpioChange { old, new } => {
                    if self.config.io_trace {
                        self.log.push(
                            at,
                            DebugEvent::Gpio {
                                old: *old,
                                new: *new,
                            },
                        );
                    }
                }
                DeviceEvent::UartByte { byte } => {
                    if self.config.io_trace {
                        self.log.push(at, DebugEvent::UartByte { byte: *byte });
                    }
                }
                DeviceEvent::I2c(txn) => {
                    if self.config.io_trace {
                        self.log.push(
                            at,
                            DebugEvent::I2c {
                                x: txn.sample.x,
                                y: txn.sample.y,
                                z: txn.sample.z,
                            },
                        );
                    }
                }
                DeviceEvent::CpuFault(f) => {
                    self.log.push(
                        at,
                        DebugEvent::TargetFault {
                            description: f.to_string(),
                        },
                    );
                }
                // Debug-UART and signal traffic is handled on the tick.
                DeviceEvent::DbgUartByte { .. }
                | DeviceEvent::DebugSignal { .. }
                | DeviceEvent::AdcSelfSample { .. }
                | DeviceEvent::RfTx(_) => {}
            }
        }
    }

    /// Logs a power edge. On a brown-out, additionally tears down any
    /// open session (the target fell out of its service loop; the link
    /// queues died with the power) and parks the in-flight command so it
    /// re-arms when the target next enters a service loop — or aborts
    /// with a typed error if that never happens.
    pub fn observe_power_edge(&mut self, dev: &mut Device, edge: PowerEdge, at: SimTime) {
        let ev = match edge {
            PowerEdge::TurnOn => DebugEvent::TurnOn,
            PowerEdge::BrownOut => DebugEvent::BrownOut,
        };
        self.log.push(at, ev);
        if !matches!(edge, PowerEdge::BrownOut) {
            return;
        }
        if self.session_active() {
            self.log.push(
                at,
                DebugEvent::SessionAborted {
                    reason: "target browned out mid-session".to_string(),
                },
            );
            dev.peripherals.debug.set_session_active(false);
            self.circuit.set_mode(ChargeMode::Idle);
            self.controller = None;
            self.mode = Mode::Passive;
        }
        if let Some(fl) = &mut self.inflight {
            // Torn exchange: whatever reply bytes were in flight are
            // gone. Discard the partial parse and wait for the target's
            // next service-loop entry, bounded by a recovery window.
            fl.decoder.reset();
            fl.resend_at = None;
            fl.await_service = true;
            fl.park_deadline = at
                + SimTime::from_ns(
                    self.config.cmd_timeout.as_ns() * (u64::from(self.config.cmd_retries) + 2),
                );
        }
    }

    /// Logs an RFID message observed on the monitored RF lines, decoding
    /// it independently of the target.
    pub fn observe_rfid(&mut self, bytes: &[u8], downlink: bool, at: SimTime) {
        let label = if downlink {
            edb_rfid::Command::decode(bytes)
                .map(|c| c.label().to_string())
                .unwrap_or_else(|_| "CORRUPT".to_string())
        } else {
            edb_rfid::TagReply::decode(bytes)
                .map(|r| r.label().to_string())
                .unwrap_or_else(|_| "CORRUPT".to_string())
        };
        let valid = label != "CORRUPT";
        self.log.push(
            at,
            DebugEvent::Rfid {
                label,
                downlink,
                valid,
            },
        );
    }

    /// The debugger firmware loop: run once per device step; internally
    /// rate-limited to the configured tick period (plus the ADC schedule).
    pub fn tick(&mut self, dev: &mut Device, now: SimTime) {
        // Passive ADC sampling runs on its own schedule.
        if now >= self.next_adc {
            self.next_adc = now + self.config.adc_sample_period;
            let v = self.adc.read_volts(dev.v_cap());
            self.last_reading = v;
            if self.config.energy_trace {
                let v_reg = self.adc.read_volts(dev.v_reg());
                self.log
                    .push(now, DebugEvent::EnergySample { v_cap: v, v_reg });
            }
            self.check_energy_breakpoints(dev, now, v);
        }

        if now < self.next_tick {
            return;
        }
        self.next_tick = now + self.config.tick_period;

        self.drain_signals(dev, now);
        self.drain_uart(dev, now);
        self.service_inflight(dev, now);
        self.run_controller(dev, now);
    }

    fn check_energy_breakpoints(&mut self, dev: &mut Device, now: SimTime, v: f64) {
        if !matches!(self.mode, Mode::Passive) {
            return;
        }
        let mut fire_at: Option<f64> = None;
        for bp in &mut self.energy_breakpoints {
            if bp.armed && dev.powered() && v <= bp.threshold {
                bp.armed = false;
                fire_at = Some(bp.threshold);
                break;
            }
            if !bp.armed && v > bp.threshold + 0.05 {
                bp.armed = true; // re-arm with hysteresis
            }
        }
        if let Some(threshold) = fire_at {
            self.log.push(
                now,
                DebugEvent::EnergyBreakpoint {
                    threshold,
                    v_cap: v,
                },
            );
            self.open_session(dev, now, SessionKind::EnergyBreakpoint, v);
            dev.raise_irq();
        }
    }

    fn open_session(&mut self, dev: &mut Device, now: SimTime, kind: SessionKind, saved: f64) {
        self.circuit.set_mode(ChargeMode::Tether);
        dev.peripherals.debug.set_session_active(true);
        self.mode = Mode::Session { kind, saved };
        self.log.push(
            now,
            DebugEvent::SessionOpened {
                reason: format!("{kind:?}"),
            },
        );
        // A command parked by a brown-out re-arms now: the target is
        // back in a service loop, so re-send on the next tick.
        if let Some(fl) = &mut self.inflight {
            if fl.await_service {
                fl.await_service = false;
                fl.resend_at = Some(now);
            }
        }
    }

    /// Opens a console-requested session by interrupting the target, as
    /// the `break` console command does on demand.
    pub fn open_console_session(&mut self, dev: &mut Device, now: SimTime) {
        let v = self.adc.read_volts(dev.v_cap());
        self.open_session(dev, now, SessionKind::Console, v);
        dev.raise_irq();
    }

    fn drain_signals(&mut self, dev: &mut Device, now: SimTime) {
        while let Some(word) = dev.peripherals.debug.signals.pop_front() {
            let (code, id) = protocol::decode_signal(word);
            match code {
                protocol::SIG_ASSERT => {
                    // Keep-alive: tether before the target can brown out.
                    let v = self.adc.read_volts(dev.v_cap());
                    self.log.push(now, DebugEvent::AssertFailed { id });
                    self.open_session(dev, now, SessionKind::Assert { id }, v);
                }
                protocol::SIG_BREAKPOINT => {
                    let v = self.adc.read_volts(dev.v_cap());
                    let enabled = match self.code_breakpoints.get(&id) {
                        Some(None) => true,
                        Some(Some(threshold)) => v <= *threshold,
                        None => false,
                    };
                    if enabled {
                        self.log
                            .push(now, DebugEvent::BreakpointHit { id, v_cap: v });
                        self.open_session(dev, now, SessionKind::Breakpoint { id }, v);
                    } else {
                        // Not interesting: release the service loop.
                        self.send_continue(dev);
                    }
                }
                protocol::SIG_GUARD_BEGIN => {
                    let saved = self.adc.read_volts(dev.v_cap());
                    self.circuit.set_mode(ChargeMode::Tether);
                    dev.peripherals.debug.set_ack(true);
                    self.mode = Mode::Guard { saved };
                    self.log
                        .push(now, DebugEvent::GuardEnter { saved_v: saved });
                }
                protocol::SIG_GUARD_END => {
                    if let Mode::Guard { saved } = self.mode {
                        if self.controller.is_some() {
                            // A console-initiated level operation was in
                            // flight; the guard's mandatory restore
                            // pre-empts it.
                            self.level_op_done = true;
                        }
                        self.controller = Some(LevelController::lower(
                            saved,
                            self.config.control_period,
                            self.config.guard_band,
                            now,
                        ));
                        self.mode = Mode::GuardRestore { saved };
                    }
                }
                _ => {}
            }
        }
    }

    fn drain_uart(&mut self, dev: &mut Device, now: SimTime) {
        while let Some(raw) = dev.peripherals.debug.tx_to_debugger.pop_front() {
            let (delivered, n) = match &mut self.channel_fault {
                Some(fault) => fault.corrupt(raw),
                None => ([raw, 0], 1),
            };
            for &byte in &delivered[..n] {
                self.ingest_target_byte(byte, now);
            }
        }
    }

    /// Routes one target→host byte: into the in-flight reply decoder
    /// when an exchange is live, discarded when the exchange is parked
    /// or backing off (stale bytes of a torn attempt), otherwise into
    /// the printf line buffer.
    fn ingest_target_byte(&mut self, byte: u8, now: SimTime) {
        enum Step {
            Printf,
            Swallowed,
            Complete { word: u16, attempts: u32 },
            BadAck { cmd: &'static str, word: u16 },
            Corrupt { cmd: &'static str, detail: String },
        }
        let step = match &mut self.inflight {
            None => Step::Printf,
            Some(fl) if fl.await_service || fl.resend_at.is_some() => Step::Swallowed,
            Some(fl) => match fl.decoder.push(byte) {
                None => Step::Swallowed,
                Some(Ok(word)) => {
                    let write = matches!(fl.cmd, HostCommand::Write { .. });
                    if write && word != u16::from(protocol::ACK) {
                        Step::BadAck {
                            cmd: fl.cmd.name(),
                            word,
                        }
                    } else {
                        Step::Complete {
                            word,
                            attempts: fl.attempts,
                        }
                    }
                }
                Some(Err(e)) => Step::Corrupt {
                    cmd: fl.cmd.name(),
                    detail: e.to_string(),
                },
            },
        };
        match step {
            Step::Swallowed => {}
            Step::Printf => {
                if byte == b'\n' {
                    let line = String::from_utf8_lossy(&self.printf_buf).into_owned();
                    self.printf_buf.clear();
                    self.log.push(now, DebugEvent::Printf { line });
                } else {
                    self.printf_buf.push(byte);
                }
            }
            Step::Complete { word, attempts } => {
                let fl = self
                    .inflight
                    .take()
                    .expect("a Complete step has an exchange");
                self.finished = Some(Finished {
                    id: fl.id,
                    cmd: fl.cmd,
                    result: Ok(word),
                });
                self.last_outcome = Some(if attempts <= 1 {
                    SessionOutcome::Completed
                } else {
                    SessionOutcome::Retried {
                        retries: attempts - 1,
                    }
                });
            }
            Step::BadAck { cmd, word } => {
                self.retry_or_abort(
                    now,
                    EdbError::CorruptReply {
                        cmd,
                        detail: format!("acknowledge byte {word:#06x}"),
                    },
                );
            }
            Step::Corrupt { cmd, detail } => {
                self.retry_or_abort(now, EdbError::CorruptReply { cmd, detail });
            }
        }
    }

    fn run_controller(&mut self, dev: &mut Device, now: SimTime) {
        let Some(mut ctl) = self.controller else {
            return;
        };
        // The controller owns the circuit while active — except a session
        // tether, which only SessionRestore may override.
        self.circuit.set_mode(ctl.desired_mode());
        let truth = dev.v_cap();
        let adc = &mut self.adc;
        let finished = ctl.update(now, &mut || adc.read_volts(truth));
        self.controller = Some(ctl);
        if finished {
            self.controller = None;
            // A finished level operation must not tear down an active
            // tether (assert keep-alive or energy guard).
            let fallback = match self.mode {
                Mode::Session { .. } | Mode::Guard { .. } => ChargeMode::Tether,
                _ => ChargeMode::Idle,
            };
            self.circuit.set_mode(fallback);
            let v = self.adc.read_volts(dev.v_cap());
            match self.mode {
                Mode::GuardRestore { .. } => {
                    dev.peripherals.debug.set_ack(false);
                    self.mode = Mode::Passive;
                    self.log.push(now, DebugEvent::GuardExit { restored_v: v });
                }
                Mode::SessionRestore { .. } => {
                    dev.peripherals.debug.set_session_active(false);
                    self.send_continue(dev);
                    self.mode = Mode::Passive;
                    self.log
                        .push(now, DebugEvent::SessionClosed { restored_v: v });
                }
                _ => {
                    self.level_op_done = true;
                    self.log.push(
                        now,
                        DebugEvent::LevelReached {
                            target: ctl.target,
                            v_cap: v,
                        },
                    );
                }
            }
        } else if matches!(self.mode, Mode::Session { .. } | Mode::Guard { .. }) {
            // A console charge/discharge during a tethered session or
            // guard must not fight the tether.
            self.circuit.set_mode(ChargeMode::Tether);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = EdbConfig::prototype();
        assert!(c.restore_guard_band > c.guard_band);
        assert!(c.tick_period < SimTime::from_ms(1));
    }

    #[test]
    fn watchpoint_filtering() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let dev = Device::new(edb_device::DeviceConfig::wisp5());
        let ev = [DeviceEvent::CodeMarker { id: 2 }];
        edb.observe(&dev, &ev, SimTime::from_ms(1));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 1);
        edb.enable_watchpoint(1); // now only ID 1 is logged
        edb.observe(&dev, &ev, SimTime::from_ms(2));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 1);
        edb.enable_watchpoint(2);
        edb.observe(&dev, &ev, SimTime::from_ms(3));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 2);
    }

    #[test]
    fn rfid_observation_validates_independently() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let good = edb_rfid::Command::Query { q: 0, session: 0 }.encode();
        edb.observe_rfid(&good, true, SimTime::from_ms(1));
        let mut bad = good.clone();
        bad[1] ^= 0x40;
        edb.observe_rfid(&bad, true, SimTime::from_ms(2));
        let events: Vec<_> = edb.log().with_tag("rfid").collect();
        assert_eq!(events.len(), 2);
        match (&events[0].event, &events[1].event) {
            (
                DebugEvent::Rfid {
                    label: a,
                    valid: va,
                    ..
                },
                DebugEvent::Rfid {
                    label: b,
                    valid: vb,
                    ..
                },
            ) => {
                assert_eq!(a, "CMD_QUERY");
                assert!(*va);
                assert_eq!(b, "CORRUPT");
                assert!(!*vb);
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn printf_lines_assemble_from_bytes() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let mut dev = Device::new(edb_device::DeviceConfig::wisp5());
        for &b in b"v=2a\n" {
            dev.peripherals.debug.tx_to_debugger.push_back(b);
        }
        edb.tick(&mut dev, SimTime::from_ms(1));
        assert_eq!(edb.log().printf_lines(), vec!["v=2a"]);
    }

    #[test]
    fn electrical_current_is_tiny_when_idle() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let i = edb.electrical_current(2.2, LineStates::default(), 1e-6);
        assert!(i.abs() < 1e-6, "idle influence {i} A must be sub-µA");
    }
}
