//! The debugger: passive monitoring, active energy manipulation, and the
//! intermittence-aware debugging primitives.
//!
//! [`Edb`] is the host/board side of the system. Its only *electrical*
//! influence on the target flows through [`Edb::electrical_current`] —
//! the charge/discharge circuit plus the sub-µA wiring leakage — so
//! energy-interference-freedom is checkable by comparing runs with and
//! without the debugger attached. Its *informational* inputs are the
//! wire-observable [`DeviceEvent`]s and the debug-signal/UART queues; its
//! decisions run on a periodic firmware tick with realistic latency.

use crate::adc::Adc;
use crate::charge::{ChargeCircuit, ChargeMode, LevelController};
use crate::events::{DebugEvent, EventLog};
use crate::protocol;
use crate::wiring::{LineStates, Wiring};
use edb_device::{Device, DeviceEvent};
use edb_energy::{PowerEdge, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Debugger firmware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdbConfig {
    /// Passive energy-trace sampling period.
    pub adc_sample_period: SimTime,
    /// Firmware main-loop period — the latency with which signals are
    /// noticed and acknowledged.
    pub tick_period: SimTime,
    /// Charge/discharge control-loop sampling period.
    pub control_period: SimTime,
    /// Early-stop margin when restoring energy after a breakpoint or
    /// assert session, volts. Conservative (positive) so a resumed target
    /// never finds *less* energy than it saved — the source of Table 3's
    /// positive mean ΔV.
    pub restore_guard_band: f64,
    /// Early-stop margin for energy-guard exits, volts. Kept tight (a
    /// small positive bias) because guard exits happen constantly and
    /// their error must not accumulate into application-visible energy.
    pub guard_band: f64,
    /// Whether passive energy samples are logged as events.
    pub energy_trace: bool,
    /// Whether GPIO/UART/I²C events are logged.
    pub io_trace: bool,
    /// RNG seed for the ADC and wiring instances.
    pub seed: u64,
}

impl EdbConfig {
    /// The prototype defaults.
    pub fn prototype() -> Self {
        EdbConfig {
            adc_sample_period: SimTime::from_us(200),
            tick_period: SimTime::from_us(20),
            control_period: SimTime::from_us(150),
            restore_guard_band: 0.055,
            guard_band: 0.004,
            energy_trace: true,
            io_trace: true,
            seed: 0xEDB,
        }
    }
}

impl Default for EdbConfig {
    fn default() -> Self {
        EdbConfig::prototype()
    }
}

/// Why an interactive session is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// A `libEDB` assertion failed (keep-alive engaged).
    Assert {
        /// Assertion site ID.
        id: u8,
    },
    /// An internal code breakpoint hit.
    Breakpoint {
        /// Breakpoint ID.
        id: u8,
    },
    /// An energy breakpoint (threshold crossing) fired.
    EnergyBreakpoint,
    /// The console requested a session on demand.
    Console,
}

#[derive(Debug, Clone, PartialEq)]
enum Mode {
    /// Watching only.
    Passive,
    /// Inside an energy-guarded region: tethered, level saved.
    Guard { saved: f64 },
    /// Discharging back to the pre-guard level; ack stays up until done.
    GuardRestore { saved: f64 },
    /// Interactive session: tethered, target in its service loop.
    Session { kind: SessionKind, saved: f64 },
    /// Post-session restore: discharging to the saved level before
    /// releasing the target.
    SessionRestore { saved: f64 },
}

/// An in-flight debug-UART exchange with the target.
#[derive(Debug, Clone)]
enum Pending {
    /// Awaiting `n` reply bytes for a read.
    Read { got: Vec<u8> },
    /// Awaiting the write acknowledge byte.
    Write,
}

/// A pending energy breakpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EnergyBreakpoint {
    threshold: f64,
    armed: bool,
}

/// The Energy-interference-free Debugger.
///
/// Construct, [`attach`](Edb::attach) to an assembled image (so the
/// debugger knows `libEDB`'s breakpoint-mask address), then let the
/// system harness drive [`Edb::electrical_current`], [`Edb::observe`] and
/// [`Edb::tick`] every device step. Higher-level operations (charge,
/// breakpoints, memory reads) are exposed for the console and the
/// experiment harnesses.
#[derive(Debug)]
pub struct Edb {
    config: EdbConfig,
    adc: Adc,
    wiring: Wiring,
    circuit: ChargeCircuit,
    log: EventLog,
    mode: Mode,
    controller: Option<LevelController>,
    /// Completion flag for console-initiated charge/discharge.
    level_op_done: bool,
    next_tick: SimTime,
    next_adc: SimTime,
    last_reading: f64,
    code_breakpoints: HashMap<u8, Option<f64>>,
    energy_breakpoints: Vec<EnergyBreakpoint>,
    watch_enabled: HashSet<u8>,
    watch_all: bool,
    printf_buf: Vec<u8>,
    pending: Option<Pending>,
    reply: VecDeque<u16>,
    bkpt_mask_addr: Option<u16>,
    /// Charge delivered through the tether/charge circuit, coulombs
    /// (instrumentation).
    charge_delivered: f64,
    /// Memoized passive wire drain for the last-seen line states —
    /// `Wiring::drain_amps` is deterministic in the states, so the
    /// (states → amps) pair caches the common all-idle case.
    drain_cache: Option<(LineStates, f64)>,
}

impl Edb {
    /// Creates a debugger with the given configuration.
    pub fn new(config: EdbConfig) -> Self {
        Edb {
            adc: Adc::new(config.seed),
            wiring: Wiring::standard(config.seed.wrapping_add(1)),
            circuit: ChargeCircuit::new(),
            log: EventLog::new(),
            mode: Mode::Passive,
            controller: None,
            level_op_done: false,
            next_tick: SimTime::ZERO,
            next_adc: SimTime::ZERO,
            last_reading: 0.0,
            code_breakpoints: HashMap::new(),
            energy_breakpoints: Vec::new(),
            watch_enabled: HashSet::new(),
            watch_all: true,
            printf_buf: Vec::new(),
            pending: None,
            reply: VecDeque::new(),
            bkpt_mask_addr: None,
            charge_delivered: 0.0,
            drain_cache: None,
            config,
        }
    }

    /// Records image metadata (the `libEDB` breakpoint-mask address).
    pub fn attach(&mut self, image: &edb_mcu::Image) {
        self.bkpt_mask_addr = crate::libedb::bkpt_mask_addr(image);
    }

    /// The configuration.
    pub fn config(&self) -> EdbConfig {
        self.config
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Mutable event log access (experiments clear it between phases).
    pub fn log_mut(&mut self) -> &mut EventLog {
        &mut self.log
    }

    /// The most recent ADC reading of `Vcap`, volts.
    pub fn last_reading(&self) -> f64 {
        self.last_reading
    }

    /// Whether an interactive session is open (including the
    /// energy-restore phase before the target is released).
    pub fn session_active(&self) -> bool {
        matches!(
            self.mode,
            Mode::Session { .. } | Mode::SessionRestore { .. }
        )
    }

    /// Whether the target is inside an energy-guarded region.
    pub fn in_guard(&self) -> bool {
        matches!(self.mode, Mode::Guard { .. } | Mode::GuardRestore { .. })
    }

    /// Whether a console-initiated charge/discharge just completed
    /// (cleared by the next level operation).
    pub fn level_op_done(&self) -> bool {
        self.level_op_done
    }

    /// Total charge delivered into the target, coulombs.
    pub fn charge_delivered(&self) -> f64 {
        self.charge_delivered
    }

    /// The charge-circuit mode right now (instrumentation).
    pub fn charge_mode(&self) -> ChargeMode {
        self.circuit.mode()
    }

    // ---------------------------------------------------------------
    // Console-facing operations
    // ---------------------------------------------------------------

    /// Begins charging the target to `volts` (Table 1's `charge` command).
    pub fn start_charge(&mut self, volts: f64, now: SimTime) {
        self.controller = Some(LevelController::raise(
            volts,
            self.config.control_period,
            0.0,
            now,
        ));
        self.level_op_done = false;
    }

    /// Begins discharging the target to `volts` (`discharge` command).
    pub fn start_discharge(&mut self, volts: f64, now: SimTime) {
        self.controller = Some(LevelController::lower(
            volts,
            self.config.control_period,
            0.0,
            now,
        ));
        self.level_op_done = false;
    }

    /// Enables an internal code breakpoint, optionally conditioned on the
    /// energy level (`break en id [energy]` — a *combined* breakpoint).
    /// Writes the target-side enable mask through the back channel.
    pub fn enable_breakpoint(&mut self, dev: &mut Device, id: u8, energy: Option<f64>) {
        self.code_breakpoints.insert(id, energy);
        self.sync_bkpt_mask(dev);
    }

    /// Disables an internal code breakpoint.
    pub fn disable_breakpoint(&mut self, dev: &mut Device, id: u8) {
        self.code_breakpoints.remove(&id);
        self.sync_bkpt_mask(dev);
    }

    fn sync_bkpt_mask(&mut self, dev: &mut Device) {
        if let Some(addr) = self.bkpt_mask_addr {
            let mask = self
                .code_breakpoints
                .keys()
                .fold(0u16, |m, &id| m | (1 << (id as u16 & 0xF)));
            dev.mem_mut().poke_word(addr, mask);
        }
    }

    /// Arms an energy breakpoint at `threshold` volts.
    pub fn arm_energy_breakpoint(&mut self, threshold: f64) {
        self.energy_breakpoints.push(EnergyBreakpoint {
            threshold,
            armed: true,
        });
    }

    /// Disarms all energy breakpoints at `threshold` (±1 mV).
    pub fn disarm_energy_breakpoint(&mut self, threshold: f64) {
        self.energy_breakpoints
            .retain(|b| (b.threshold - threshold).abs() > 1e-3);
    }

    /// Enables a watchpoint ID (when any ID has been explicitly enabled,
    /// only enabled IDs are logged; by default all are).
    pub fn enable_watchpoint(&mut self, id: u8) {
        self.watch_all = false;
        self.watch_enabled.insert(id);
    }

    /// Disables a watchpoint ID.
    pub fn disable_watchpoint(&mut self, id: u8) {
        self.watch_all = false;
        self.watch_enabled.remove(&id);
    }

    /// Starts a memory read over the debug protocol. The target must be
    /// in its service loop (session active). Poll [`Edb::take_reply`].
    pub fn start_read(&mut self, dev: &mut Device, addr: u16) {
        self.pending = Some(Pending::Read { got: Vec::new() });
        let q = &mut dev.peripherals.debug.rx_from_debugger;
        q.push_back(protocol::CMD_READ);
        q.push_back((addr & 0xFF) as u8);
        q.push_back((addr >> 8) as u8);
    }

    /// Asks the target where execution will resume (the service loop's
    /// return address). Poll [`Edb::take_reply`].
    pub fn start_get_pc(&mut self, dev: &mut Device) {
        self.pending = Some(Pending::Read { got: Vec::new() });
        dev.peripherals
            .debug
            .rx_from_debugger
            .push_back(protocol::CMD_GET_PC);
    }

    /// Starts a memory write over the debug protocol.
    pub fn start_write(&mut self, dev: &mut Device, addr: u16, value: u16) {
        self.pending = Some(Pending::Write);
        let q = &mut dev.peripherals.debug.rx_from_debugger;
        q.push_back(protocol::CMD_WRITE);
        q.push_back((addr & 0xFF) as u8);
        q.push_back((addr >> 8) as u8);
        q.push_back((value & 0xFF) as u8);
        q.push_back((value >> 8) as u8);
    }

    /// Takes a completed protocol reply (a read's word, or a write's
    /// acknowledge rendered as `0xAA`).
    pub fn take_reply(&mut self) -> Option<u16> {
        self.reply.pop_front()
    }

    /// Resumes the target from an interactive session: restores the saved
    /// energy level, then releases the service loop.
    pub fn resume(&mut self, now: SimTime) {
        if let Mode::Session { saved, .. } = self.mode {
            self.controller = Some(LevelController::lower(
                saved,
                self.config.control_period,
                self.config.restore_guard_band,
                now,
            ));
            self.mode = Mode::SessionRestore { saved };
        }
    }

    // ---------------------------------------------------------------
    // Harness-facing hooks
    // ---------------------------------------------------------------

    /// The debugger's net electrical contribution to the target's storage
    /// capacitor right now (amps, positive = charging), given the
    /// ground-truth node voltage and line states. This is the *only*
    /// electrical path from debugger to target.
    pub fn electrical_current(&mut self, v_cap: f64, states: LineStates, dt: f64) -> f64 {
        let drain = self.drain_for(states);
        self.electrical_current_with_drain(v_cap, drain, dt)
    }

    /// The passive wire drain for the given line states, memoized.
    /// `Wiring::drain_amps` is a pure function of the states, so a
    /// repeated lookup returns the identical `f64`.
    pub fn drain_for(&mut self, states: LineStates) -> f64 {
        match self.drain_cache {
            Some((cached, amps)) if cached == states => amps,
            _ => {
                let amps = self.wiring.drain_amps(states);
                self.drain_cache = Some((states, amps));
                amps
            }
        }
    }

    /// [`Edb::electrical_current`] with a precomputed drain (from
    /// [`Edb::drain_for`]): the batched span path hoists the drain
    /// lookup out of the per-quantum closure, which is sound because
    /// line states cannot change within a span.
    pub fn electrical_current_with_drain(&mut self, v_cap: f64, drain: f64, dt: f64) -> f64 {
        let circuit = self.circuit.current_into(v_cap);
        if circuit > 0.0 {
            self.charge_delivered += circuit * dt;
        }
        circuit - drain
    }

    /// The next instant at which [`Edb::tick`] does anything at all —
    /// before this, a `tick` call is provably a no-op (the ADC schedule
    /// and the firmware tick are both in the future), so the batched
    /// span path may skip the calls entirely.
    pub fn next_wakeup(&self) -> SimTime {
        self.next_adc.min(self.next_tick)
    }

    /// Ingests one device step's wire-observable events.
    pub fn observe(&mut self, dev: &Device, events: &[DeviceEvent], at: SimTime) {
        for event in events {
            match event {
                DeviceEvent::CodeMarker { id } => {
                    if self.watch_all || self.watch_enabled.contains(id) {
                        let v = self.adc.read_volts(dev.v_cap());
                        self.log
                            .push(at, DebugEvent::Watchpoint { id: *id, v_cap: v });
                    }
                }
                DeviceEvent::GpioChange { old, new } => {
                    if self.config.io_trace {
                        self.log.push(
                            at,
                            DebugEvent::Gpio {
                                old: *old,
                                new: *new,
                            },
                        );
                    }
                }
                DeviceEvent::UartByte { byte } => {
                    if self.config.io_trace {
                        self.log.push(at, DebugEvent::UartByte { byte: *byte });
                    }
                }
                DeviceEvent::I2c(txn) => {
                    if self.config.io_trace {
                        self.log.push(
                            at,
                            DebugEvent::I2c {
                                x: txn.sample.x,
                                y: txn.sample.y,
                                z: txn.sample.z,
                            },
                        );
                    }
                }
                DeviceEvent::CpuFault(f) => {
                    self.log.push(
                        at,
                        DebugEvent::TargetFault {
                            description: f.to_string(),
                        },
                    );
                }
                // Debug-UART and signal traffic is handled on the tick.
                DeviceEvent::DbgUartByte { .. }
                | DeviceEvent::DebugSignal { .. }
                | DeviceEvent::AdcSelfSample { .. }
                | DeviceEvent::RfTx(_) => {}
            }
        }
    }

    /// Logs a power edge.
    pub fn observe_power_edge(&mut self, edge: PowerEdge, at: SimTime) {
        let ev = match edge {
            PowerEdge::TurnOn => DebugEvent::TurnOn,
            PowerEdge::BrownOut => DebugEvent::BrownOut,
        };
        self.log.push(at, ev);
    }

    /// Logs an RFID message observed on the monitored RF lines, decoding
    /// it independently of the target.
    pub fn observe_rfid(&mut self, bytes: &[u8], downlink: bool, at: SimTime) {
        let label = if downlink {
            edb_rfid::Command::decode(bytes)
                .map(|c| c.label().to_string())
                .unwrap_or_else(|_| "CORRUPT".to_string())
        } else {
            edb_rfid::TagReply::decode(bytes)
                .map(|r| r.label().to_string())
                .unwrap_or_else(|_| "CORRUPT".to_string())
        };
        let valid = label != "CORRUPT";
        self.log.push(
            at,
            DebugEvent::Rfid {
                label,
                downlink,
                valid,
            },
        );
    }

    /// The debugger firmware loop: run once per device step; internally
    /// rate-limited to the configured tick period (plus the ADC schedule).
    pub fn tick(&mut self, dev: &mut Device, now: SimTime) {
        // Passive ADC sampling runs on its own schedule.
        if now >= self.next_adc {
            self.next_adc = now + self.config.adc_sample_period;
            let v = self.adc.read_volts(dev.v_cap());
            self.last_reading = v;
            if self.config.energy_trace {
                let v_reg = self.adc.read_volts(dev.v_reg());
                self.log
                    .push(now, DebugEvent::EnergySample { v_cap: v, v_reg });
            }
            self.check_energy_breakpoints(dev, now, v);
        }

        if now < self.next_tick {
            return;
        }
        self.next_tick = now + self.config.tick_period;

        self.drain_signals(dev, now);
        self.drain_uart(dev, now);
        self.run_controller(dev, now);
    }

    fn check_energy_breakpoints(&mut self, dev: &mut Device, now: SimTime, v: f64) {
        if !matches!(self.mode, Mode::Passive) {
            return;
        }
        let mut fire_at: Option<f64> = None;
        for bp in &mut self.energy_breakpoints {
            if bp.armed && dev.powered() && v <= bp.threshold {
                bp.armed = false;
                fire_at = Some(bp.threshold);
                break;
            }
            if !bp.armed && v > bp.threshold + 0.05 {
                bp.armed = true; // re-arm with hysteresis
            }
        }
        if let Some(threshold) = fire_at {
            self.log.push(
                now,
                DebugEvent::EnergyBreakpoint {
                    threshold,
                    v_cap: v,
                },
            );
            self.open_session(dev, now, SessionKind::EnergyBreakpoint, v);
            dev.raise_irq();
        }
    }

    fn open_session(&mut self, dev: &mut Device, now: SimTime, kind: SessionKind, saved: f64) {
        self.circuit.set_mode(ChargeMode::Tether);
        dev.peripherals.debug.set_session_active(true);
        self.mode = Mode::Session { kind, saved };
        self.log.push(
            now,
            DebugEvent::SessionOpened {
                reason: format!("{kind:?}"),
            },
        );
    }

    /// Opens a console-requested session by interrupting the target, as
    /// the `break` console command does on demand.
    pub fn open_console_session(&mut self, dev: &mut Device, now: SimTime) {
        let v = self.adc.read_volts(dev.v_cap());
        self.open_session(dev, now, SessionKind::Console, v);
        dev.raise_irq();
    }

    fn drain_signals(&mut self, dev: &mut Device, now: SimTime) {
        while let Some(word) = dev.peripherals.debug.signals.pop_front() {
            let (code, id) = protocol::decode_signal(word);
            match code {
                protocol::SIG_ASSERT => {
                    // Keep-alive: tether before the target can brown out.
                    let v = self.adc.read_volts(dev.v_cap());
                    self.log.push(now, DebugEvent::AssertFailed { id });
                    self.open_session(dev, now, SessionKind::Assert { id }, v);
                }
                protocol::SIG_BREAKPOINT => {
                    let v = self.adc.read_volts(dev.v_cap());
                    let enabled = match self.code_breakpoints.get(&id) {
                        Some(None) => true,
                        Some(Some(threshold)) => v <= *threshold,
                        None => false,
                    };
                    if enabled {
                        self.log
                            .push(now, DebugEvent::BreakpointHit { id, v_cap: v });
                        self.open_session(dev, now, SessionKind::Breakpoint { id }, v);
                    } else {
                        // Not interesting: release the service loop.
                        dev.peripherals
                            .debug
                            .rx_from_debugger
                            .push_back(protocol::CMD_CONTINUE);
                    }
                }
                protocol::SIG_GUARD_BEGIN => {
                    let saved = self.adc.read_volts(dev.v_cap());
                    self.circuit.set_mode(ChargeMode::Tether);
                    dev.peripherals.debug.set_ack(true);
                    self.mode = Mode::Guard { saved };
                    self.log
                        .push(now, DebugEvent::GuardEnter { saved_v: saved });
                }
                protocol::SIG_GUARD_END => {
                    if let Mode::Guard { saved } = self.mode {
                        if self.controller.is_some() {
                            // A console-initiated level operation was in
                            // flight; the guard's mandatory restore
                            // pre-empts it.
                            self.level_op_done = true;
                        }
                        self.controller = Some(LevelController::lower(
                            saved,
                            self.config.control_period,
                            self.config.guard_band,
                            now,
                        ));
                        self.mode = Mode::GuardRestore { saved };
                    }
                }
                _ => {}
            }
        }
    }

    fn drain_uart(&mut self, dev: &mut Device, now: SimTime) {
        while let Some(byte) = dev.peripherals.debug.tx_to_debugger.pop_front() {
            match &mut self.pending {
                Some(Pending::Read { got }) => {
                    got.push(byte);
                    if got.len() == 2 {
                        let word = got[0] as u16 | ((got[1] as u16) << 8);
                        self.reply.push_back(word);
                        self.pending = None;
                    }
                }
                Some(Pending::Write) => {
                    self.reply.push_back(byte as u16);
                    self.pending = None;
                }
                None => {
                    if byte == b'\n' {
                        let line = String::from_utf8_lossy(&self.printf_buf).into_owned();
                        self.printf_buf.clear();
                        self.log.push(now, DebugEvent::Printf { line });
                    } else {
                        self.printf_buf.push(byte);
                    }
                }
            }
        }
    }

    fn run_controller(&mut self, dev: &mut Device, now: SimTime) {
        let Some(mut ctl) = self.controller else {
            return;
        };
        // The controller owns the circuit while active — except a session
        // tether, which only SessionRestore may override.
        self.circuit.set_mode(ctl.desired_mode());
        let truth = dev.v_cap();
        let adc = &mut self.adc;
        let finished = ctl.update(now, &mut || adc.read_volts(truth));
        self.controller = Some(ctl);
        if finished {
            self.controller = None;
            // A finished level operation must not tear down an active
            // tether (assert keep-alive or energy guard).
            let fallback = match self.mode {
                Mode::Session { .. } | Mode::Guard { .. } => ChargeMode::Tether,
                _ => ChargeMode::Idle,
            };
            self.circuit.set_mode(fallback);
            let v = self.adc.read_volts(dev.v_cap());
            match self.mode {
                Mode::GuardRestore { .. } => {
                    dev.peripherals.debug.set_ack(false);
                    self.mode = Mode::Passive;
                    self.log.push(now, DebugEvent::GuardExit { restored_v: v });
                }
                Mode::SessionRestore { .. } => {
                    dev.peripherals.debug.set_session_active(false);
                    dev.peripherals
                        .debug
                        .rx_from_debugger
                        .push_back(protocol::CMD_CONTINUE);
                    self.mode = Mode::Passive;
                    self.log
                        .push(now, DebugEvent::SessionClosed { restored_v: v });
                }
                _ => {
                    self.level_op_done = true;
                    self.log.push(
                        now,
                        DebugEvent::LevelReached {
                            target: ctl.target,
                            v_cap: v,
                        },
                    );
                }
            }
        } else if matches!(self.mode, Mode::Session { .. } | Mode::Guard { .. }) {
            // A console charge/discharge during a tethered session or
            // guard must not fight the tether.
            self.circuit.set_mode(ChargeMode::Tether);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = EdbConfig::prototype();
        assert!(c.restore_guard_band > c.guard_band);
        assert!(c.tick_period < SimTime::from_ms(1));
    }

    #[test]
    fn watchpoint_filtering() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let dev = Device::new(edb_device::DeviceConfig::wisp5());
        let ev = [DeviceEvent::CodeMarker { id: 2 }];
        edb.observe(&dev, &ev, SimTime::from_ms(1));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 1);
        edb.enable_watchpoint(1); // now only ID 1 is logged
        edb.observe(&dev, &ev, SimTime::from_ms(2));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 1);
        edb.enable_watchpoint(2);
        edb.observe(&dev, &ev, SimTime::from_ms(3));
        assert_eq!(edb.log().with_tag("watchpoint").count(), 2);
    }

    #[test]
    fn rfid_observation_validates_independently() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let good = edb_rfid::Command::Query { q: 0, session: 0 }.encode();
        edb.observe_rfid(&good, true, SimTime::from_ms(1));
        let mut bad = good.clone();
        bad[1] ^= 0x40;
        edb.observe_rfid(&bad, true, SimTime::from_ms(2));
        let events: Vec<_> = edb.log().with_tag("rfid").collect();
        assert_eq!(events.len(), 2);
        match (&events[0].event, &events[1].event) {
            (
                DebugEvent::Rfid {
                    label: a,
                    valid: va,
                    ..
                },
                DebugEvent::Rfid {
                    label: b,
                    valid: vb,
                    ..
                },
            ) => {
                assert_eq!(a, "CMD_QUERY");
                assert!(*va);
                assert_eq!(b, "CORRUPT");
                assert!(!*vb);
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn printf_lines_assemble_from_bytes() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let mut dev = Device::new(edb_device::DeviceConfig::wisp5());
        for &b in b"v=2a\n" {
            dev.peripherals.debug.tx_to_debugger.push_back(b);
        }
        edb.tick(&mut dev, SimTime::from_ms(1));
        assert_eq!(edb.log().printf_lines(), vec!["v=2a"]);
    }

    #[test]
    fn electrical_current_is_tiny_when_idle() {
        let mut edb = Edb::new(EdbConfig::prototype());
        let i = edb.electrical_current(2.2, LineStates::default(), 1e-6);
        assert!(i.abs() < 1e-6, "idle influence {i} A must be sub-µA");
    }
}
