//! The wire protocol between the target-side `libEDB` and the debugger.
//!
//! Two channels cross the header between EDB and the target (Figure 5):
//!
//! 1. **The debug-signal line** (`DEBUG_SIGNAL` port): the target raises
//!    requests — assert failures, internal breakpoints, energy-guard
//!    boundaries — encoded as `code | (id << 4)`.
//! 2. **The debug UART**: a byte protocol for the interactive session.
//!    While the target sits in `libEDB`'s service loop, EDB can read and
//!    write target memory and finally tell it to continue.
//!
//! Both halves of the protocol — the Rust side here and the assembly side
//! in [`crate::libedb`] — are generated from these constants, so they
//! cannot drift apart.

/// Signal code: an `ASSERT` failed; `id` names the assertion site.
pub const SIG_ASSERT: u8 = 0x1;
/// Signal code: an internal (code) breakpoint; `id` names the breakpoint.
pub const SIG_BREAKPOINT: u8 = 0x2;
/// Signal code: entering an energy-guarded region.
pub const SIG_GUARD_BEGIN: u8 = 0x3;
/// Signal code: leaving an energy-guarded region.
pub const SIG_GUARD_END: u8 = 0x4;

/// Encodes a debug signal word.
pub fn encode_signal(code: u8, id: u8) -> u16 {
    (code & 0xF) as u16 | ((id as u16) << 4)
}

/// Decodes a debug signal word into `(code, id)`.
pub fn decode_signal(word: u16) -> (u8, u8) {
    ((word & 0xF) as u8, (word >> 4) as u8)
}

/// Debug-UART command byte: read a word of target memory.
/// Host sends `[CMD_READ, addr_lo, addr_hi]`; target replies
/// `[val_lo, val_hi]`.
pub const CMD_READ: u8 = 0x01;
/// Debug-UART command byte: write a word of target memory.
/// Host sends `[CMD_WRITE, addr_lo, addr_hi, val_lo, val_hi]`; target
/// replies `[ACK]`.
pub const CMD_WRITE: u8 = 0x02;
/// Debug-UART command byte: leave the service loop and resume execution.
pub const CMD_CONTINUE: u8 = 0x03;
/// Debug-UART command byte: read the CPU's saved program counter
/// (pushed by the service-loop entry); target replies `[pc_lo, pc_hi]`.
pub const CMD_GET_PC: u8 = 0x04;
/// The target's acknowledge byte for `CMD_WRITE`.
pub const ACK: u8 = 0xAA;

/// Renders the protocol constants as assembler `.equ` lines for
/// inclusion in target programs.
///
/// # Example
///
/// ```
/// let eq = edb_core::protocol::asm_equates();
/// assert!(eq.contains(".equ SIG_ASSERT, 0x01"));
/// assert!(eq.contains(".equ CMD_CONTINUE, 0x03"));
/// ```
pub fn asm_equates() -> String {
    let consts: &[(&str, u8)] = &[
        ("SIG_ASSERT", SIG_ASSERT),
        ("SIG_BREAKPOINT", SIG_BREAKPOINT),
        ("SIG_GUARD_BEGIN", SIG_GUARD_BEGIN),
        ("SIG_GUARD_END", SIG_GUARD_END),
        ("CMD_READ", CMD_READ),
        ("CMD_WRITE", CMD_WRITE),
        ("CMD_CONTINUE", CMD_CONTINUE),
        ("CMD_GET_PC", CMD_GET_PC),
        ("DBG_ACK_BYTE", ACK),
    ];
    let mut out = String::new();
    for (name, value) in consts {
        out.push_str(&format!(".equ {name}, {value:#04x}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_round_trip() {
        for code in [SIG_ASSERT, SIG_BREAKPOINT, SIG_GUARD_BEGIN, SIG_GUARD_END] {
            for id in [0u8, 1, 3, 7, 15] {
                let word = encode_signal(code, id);
                assert_eq!(decode_signal(word), (code, id));
            }
        }
    }

    #[test]
    fn signal_round_trip_is_total() {
        // Every representable (code, id) pair survives, including the
        // degenerate code 0 and the full 8-bit id range: the split is
        // 4 + 8 bits and the u16 has room for both.
        for code in 0u8..=0xF {
            for id in 0u8..=0xFF {
                let word = encode_signal(code, id);
                assert_eq!(decode_signal(word), (code, id), "code {code} id {id}");
                assert!(word <= 0x0FFF, "12-bit envelope");
            }
        }
        // Out-of-range codes are masked, never smeared into the id.
        assert_eq!(decode_signal(encode_signal(0xFF, 0)), (0xF, 0));
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [SIG_ASSERT, SIG_BREAKPOINT, SIG_GUARD_BEGIN, SIG_GUARD_END];
        let set: std::collections::HashSet<u8> = codes.into_iter().collect();
        assert_eq!(set.len(), codes.len());
        let cmds = [CMD_READ, CMD_WRITE, CMD_CONTINUE, CMD_GET_PC];
        let set: std::collections::HashSet<u8> = cmds.into_iter().collect();
        assert_eq!(set.len(), cmds.len());
    }

    #[test]
    fn equates_assemble() {
        let src = format!(
            "{}\n.org 0x4400\n movi r0, SIG_GUARD_BEGIN\n",
            asm_equates()
        );
        edb_mcu::asm::assemble(&src).expect("equates are valid assembly");
    }
}
