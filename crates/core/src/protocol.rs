//! The wire protocol between the target-side `libEDB` and the debugger.
//!
//! Two channels cross the header between EDB and the target (Figure 5):
//!
//! 1. **The debug-signal line** (`DEBUG_SIGNAL` port): the target raises
//!    requests — assert failures, internal breakpoints, energy-guard
//!    boundaries — encoded as `code | (id << 4)`.
//! 2. **The debug UART**: a byte protocol for the interactive session.
//!    While the target sits in `libEDB`'s service loop, EDB can read and
//!    write target memory and finally tell it to continue.
//!
//! Both halves of the protocol — the Rust side here and the assembly side
//! in [`crate::libedb`] — are generated from these constants, so they
//! cannot drift apart.
//!
//! # Framing
//!
//! The target can lose power at *any* byte of an exchange, so session
//! commands are framed and checksummed. A host→target command frame is
//!
//! ```text
//! [FRAME_HDR, CMD, LEN, payload..., CKSUM]
//! ```
//!
//! where [`FRAME_HDR`] carries the protocol version, `LEN` is the
//! payload length for `CMD`, and `CKSUM` is chosen so the mod-256 sum of
//! the *whole frame* is zero — a verification the target's assembly can
//! do with one running accumulator. The target buffers and verifies the
//! entire frame **before** executing any side effect, so a torn or
//! corrupted `CMD_WRITE` never half-applies. A target→host reply is
//!
//! ```text
//! [payload..., CKSUM]
//! ```
//!
//! with `CKSUM` the two's complement of `CMD + Σ (2i+1)·payload[i]`:
//! folding the command byte into the reply checksum means a stale reply
//! to a *different* command fails verification even when its payload
//! bytes survive intact, and the **position weights** (1, 3, 5, …) mean
//! a *rotation* of the same reply fails too. The weights matter: replies
//! carry no header byte, so when an attempt tears mid-reply and the host
//! retries, the stale tail of the old reply can land in front of the
//! fresh (byte-identical) one — under a plain sum, `[ck, lo, hi]`
//! validates exactly like `[lo, hi, ck]`. Odd weights break that
//! invariance while still detecting every single-bit flip (an odd
//! multiple of a power of two is never 0 mod 256).
//!
//! The `printf`, debug-signal, and energy-guard paths stay **unframed**:
//! they are one-way, loss-tolerant streams whose timing the experiment
//! manifests depend on.

/// Signal code: an `ASSERT` failed; `id` names the assertion site.
pub const SIG_ASSERT: u8 = 0x1;
/// Signal code: an internal (code) breakpoint; `id` names the breakpoint.
pub const SIG_BREAKPOINT: u8 = 0x2;
/// Signal code: entering an energy-guarded region.
pub const SIG_GUARD_BEGIN: u8 = 0x3;
/// Signal code: leaving an energy-guarded region.
pub const SIG_GUARD_END: u8 = 0x4;

/// Encodes a debug signal word.
pub fn encode_signal(code: u8, id: u8) -> u16 {
    (code & 0xF) as u16 | ((id as u16) << 4)
}

/// Decodes a debug signal word into `(code, id)`.
pub fn decode_signal(word: u16) -> (u8, u8) {
    ((word & 0xF) as u8, (word >> 4) as u8)
}

/// Debug-UART command byte: read a word of target memory.
/// Payload `[addr_lo, addr_hi]`; reply payload `[val_lo, val_hi]`.
pub const CMD_READ: u8 = 0x01;
/// Debug-UART command byte: write a word of target memory.
/// Payload `[addr_lo, addr_hi, val_lo, val_hi]`; reply payload `[ACK]`.
pub const CMD_WRITE: u8 = 0x02;
/// Debug-UART command byte: leave the service loop and resume execution.
/// Empty payload; no reply.
pub const CMD_CONTINUE: u8 = 0x03;
/// Debug-UART command byte: read the CPU's saved program counter
/// (pushed by the service-loop entry); reply payload `[pc_lo, pc_hi]`.
pub const CMD_GET_PC: u8 = 0x04;
/// The target's acknowledge byte for `CMD_WRITE`.
pub const ACK: u8 = 0xAA;

/// Wire-protocol version, carried in the low nibble of [`FRAME_HDR`].
pub const PROTO_VERSION: u8 = 1;
/// Command-frame header byte: `0xE0 | PROTO_VERSION`. Chosen outside
/// the command-byte and printable-ASCII ranges so a desynchronized
/// target can resynchronize by discarding bytes until it sees one.
pub const FRAME_HDR: u8 = 0xE0 | PROTO_VERSION;

/// `CMD_READ` payload length (address word).
pub const LEN_READ: u8 = 2;
/// `CMD_WRITE` payload length (address + value words).
pub const LEN_WRITE: u8 = 4;
/// `CMD_CONTINUE` payload length (none).
pub const LEN_CONTINUE: u8 = 0;
/// `CMD_GET_PC` payload length (none).
pub const LEN_GET_PC: u8 = 0;

/// The expected payload length for a command byte, or `None` for an
/// unknown command.
pub fn payload_len(cmd: u8) -> Option<u8> {
    match cmd {
        CMD_READ => Some(LEN_READ),
        CMD_WRITE => Some(LEN_WRITE),
        CMD_CONTINUE => Some(LEN_CONTINUE),
        CMD_GET_PC => Some(LEN_GET_PC),
        _ => None,
    }
}

/// The checksum byte that makes `bytes` sum to zero mod 256.
pub fn checksum(bytes: &[u8]) -> u8 {
    bytes
        .iter()
        .fold(0u8, |acc, &b| acc.wrapping_add(b))
        .wrapping_neg()
}

/// Whether a complete frame (including its trailing checksum byte) sums
/// to zero mod 256 — the validity test both sides apply.
pub fn frame_sums_to_zero(frame: &[u8]) -> bool {
    frame.iter().fold(0u8, |acc, &b| acc.wrapping_add(b)) == 0
}

/// One host→target session command, at the semantic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HostCommand {
    /// Read the word at `addr`.
    Read {
        /// Target address.
        addr: u16,
    },
    /// Write `value` to `addr`.
    Write {
        /// Target address.
        addr: u16,
        /// Word to store.
        value: u16,
    },
    /// Ask where execution will resume.
    GetPc,
    /// Release the service loop.
    Continue,
}

impl HostCommand {
    /// The wire command byte.
    pub fn cmd_byte(self) -> u8 {
        match self {
            HostCommand::Read { .. } => CMD_READ,
            HostCommand::Write { .. } => CMD_WRITE,
            HostCommand::GetPc => CMD_GET_PC,
            HostCommand::Continue => CMD_CONTINUE,
        }
    }

    /// A short stable name for errors and logs.
    pub fn name(self) -> &'static str {
        match self {
            HostCommand::Read { .. } => "READ",
            HostCommand::Write { .. } => "WRITE",
            HostCommand::GetPc => "GET_PC",
            HostCommand::Continue => "CONTINUE",
        }
    }

    /// The command's payload bytes (little-endian words).
    pub fn payload(self) -> Vec<u8> {
        match self {
            HostCommand::Read { addr } => vec![(addr & 0xFF) as u8, (addr >> 8) as u8],
            HostCommand::Write { addr, value } => vec![
                (addr & 0xFF) as u8,
                (addr >> 8) as u8,
                (value & 0xFF) as u8,
                (value >> 8) as u8,
            ],
            HostCommand::GetPc | HostCommand::Continue => Vec::new(),
        }
    }

    /// Encodes the full command frame:
    /// `[FRAME_HDR, CMD, LEN, payload..., CKSUM]`.
    pub fn encode(self) -> Vec<u8> {
        let payload = self.payload();
        let mut frame = Vec::with_capacity(payload.len() + 4);
        frame.push(FRAME_HDR);
        frame.push(self.cmd_byte());
        frame.push(payload.len() as u8);
        frame.extend_from_slice(&payload);
        frame.push(checksum(&frame));
        frame
    }

    /// Reply payload length in bytes (the reply also carries one
    /// trailing checksum byte); `None` for commands with no reply.
    pub fn reply_payload_len(self) -> Option<usize> {
        match self {
            HostCommand::Read { .. } | HostCommand::GetPc => Some(2),
            HostCommand::Write { .. } => Some(1),
            HostCommand::Continue => None,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first byte is not [`FRAME_HDR`].
    BadHeader {
        /// The byte that arrived instead.
        got: u8,
    },
    /// The command byte names no known command.
    UnknownCommand {
        /// The offending byte.
        cmd: u8,
    },
    /// The length byte disagrees with the command's payload length.
    LengthMismatch {
        /// The command byte.
        cmd: u8,
        /// The length byte that arrived.
        got: u8,
    },
    /// The frame does not sum to zero mod 256.
    BadChecksum,
    /// The frame ended before its declared length.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader { got } => write!(f, "bad frame header {got:#04x}"),
            FrameError::UnknownCommand { cmd } => write!(f, "unknown command {cmd:#04x}"),
            FrameError::LengthMismatch { cmd, got } => {
                write!(f, "bad length {got} for command {cmd:#04x}")
            }
            FrameError::BadChecksum => write!(f, "checksum mismatch"),
            FrameError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Decodes a complete command frame — the host-side mirror of the
/// target's assembly parser, used by tests and the fuzz engine to check
/// that the two cannot drift.
pub fn decode_command(frame: &[u8]) -> Result<HostCommand, FrameError> {
    let (&hdr, rest) = frame.split_first().ok_or(FrameError::Truncated)?;
    if hdr != FRAME_HDR {
        return Err(FrameError::BadHeader { got: hdr });
    }
    let (&cmd, rest) = rest.split_first().ok_or(FrameError::Truncated)?;
    let expected = payload_len(cmd).ok_or(FrameError::UnknownCommand { cmd })?;
    let (&len, rest) = rest.split_first().ok_or(FrameError::Truncated)?;
    if len != expected {
        return Err(FrameError::LengthMismatch { cmd, got: len });
    }
    if rest.len() < expected as usize + 1 {
        return Err(FrameError::Truncated);
    }
    if !frame_sums_to_zero(&frame[..expected as usize + 4]) {
        return Err(FrameError::BadChecksum);
    }
    let payload = &rest[..expected as usize];
    let word = |i: usize| payload[i] as u16 | ((payload[i + 1] as u16) << 8);
    Ok(match cmd {
        CMD_READ => HostCommand::Read { addr: word(0) },
        CMD_WRITE => HostCommand::Write {
            addr: word(0),
            value: word(2),
        },
        CMD_GET_PC => HostCommand::GetPc,
        _ => HostCommand::Continue,
    })
}

/// The position-weighted reply checksum: the two's complement of
/// `cmd + Σ (2i+1)·payload[i]` mod 256. The command byte binds the
/// reply to the command it answers; the odd position weights make a
/// rotated replay of a byte-identical reply fail verification (see the
/// module docs) while every single-bit flip stays detectable.
pub fn reply_checksum(cmd: u8, payload: &[u8]) -> u8 {
    payload
        .iter()
        .enumerate()
        .fold(cmd, |acc, (i, &b)| {
            acc.wrapping_add(b.wrapping_mul((2 * i + 1) as u8))
        })
        .wrapping_neg()
}

/// Encodes a target→host reply for `cmd`: `[payload..., CKSUM]` with the
/// checksum from [`reply_checksum`]. Used by tests and the fuzz engine
/// as the reference for what the target's assembly must emit.
pub fn encode_reply(cmd: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.push(reply_checksum(cmd, payload));
    out
}

/// Incremental decoder for one command's reply bytes.
///
/// Feed every debug-UART byte to [`ReplyDecoder::push`] while a command
/// is in flight; it returns `Some` exactly once — the decoded word, or a
/// [`FrameError::BadChecksum`] when the reply was corrupted in flight.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ReplyDecoder {
    cmd_byte: u8,
    expected: usize,
    buf: Vec<u8>,
}

impl ReplyDecoder {
    /// A decoder for `cmd`'s reply, or `None` for commands with no reply
    /// (`CMD_CONTINUE`).
    pub fn new(cmd: HostCommand) -> Option<Self> {
        cmd.reply_payload_len().map(|expected| ReplyDecoder {
            cmd_byte: cmd.cmd_byte(),
            expected,
            buf: Vec::with_capacity(expected + 1),
        })
    }

    /// Bytes buffered so far (partial-reply detection).
    pub fn bytes_seen(&self) -> usize {
        self.buf.len()
    }

    /// Discards buffered partial bytes (torn-reply recovery).
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Ingests one byte; returns the decoded word once the reply (payload
    /// plus checksum) is complete.
    pub fn push(&mut self, byte: u8) -> Option<Result<u16, FrameError>> {
        self.buf.push(byte);
        if self.buf.len() < self.expected + 1 {
            return None;
        }
        let expect = reply_checksum(self.cmd_byte, &self.buf[..self.expected]);
        if self.buf[self.expected] != expect {
            return Some(Err(FrameError::BadChecksum));
        }
        let word = match self.expected {
            1 => self.buf[0] as u16,
            _ => self.buf[0] as u16 | ((self.buf[1] as u16) << 8),
        };
        Some(Ok(word))
    }
}

/// Renders the protocol constants as assembler `.equ` lines for
/// inclusion in target programs — the single source both the Rust codec
/// and the `libEDB` assembly parser are generated from.
///
/// # Example
///
/// ```
/// let eq = edb_core::protocol::asm_equates();
/// assert!(eq.contains(".equ SIG_ASSERT, 0x01"));
/// assert!(eq.contains(".equ CMD_CONTINUE, 0x03"));
/// assert!(eq.contains(".equ FRAME_HDR, 0xe1"));
/// assert!(eq.contains(".equ LEN_WRITE, 0x04"));
/// ```
pub fn asm_equates() -> String {
    let consts: &[(&str, u8)] = &[
        ("SIG_ASSERT", SIG_ASSERT),
        ("SIG_BREAKPOINT", SIG_BREAKPOINT),
        ("SIG_GUARD_BEGIN", SIG_GUARD_BEGIN),
        ("SIG_GUARD_END", SIG_GUARD_END),
        ("CMD_READ", CMD_READ),
        ("CMD_WRITE", CMD_WRITE),
        ("CMD_CONTINUE", CMD_CONTINUE),
        ("CMD_GET_PC", CMD_GET_PC),
        ("DBG_ACK_BYTE", ACK),
        ("PROTO_VERSION", PROTO_VERSION),
        ("FRAME_HDR", FRAME_HDR),
        ("LEN_READ", LEN_READ),
        ("LEN_WRITE", LEN_WRITE),
        ("LEN_CONTINUE", LEN_CONTINUE),
        ("LEN_GET_PC", LEN_GET_PC),
    ];
    let mut out = String::new();
    for (name, value) in consts {
        out.push_str(&format!(".equ {name}, {value:#04x}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_round_trip() {
        for code in [SIG_ASSERT, SIG_BREAKPOINT, SIG_GUARD_BEGIN, SIG_GUARD_END] {
            for id in [0u8, 1, 3, 7, 15] {
                let word = encode_signal(code, id);
                assert_eq!(decode_signal(word), (code, id));
            }
        }
    }

    #[test]
    fn signal_round_trip_is_total() {
        // Every representable (code, id) pair survives, including the
        // degenerate code 0 and the full 8-bit id range: the split is
        // 4 + 8 bits and the u16 has room for both.
        for code in 0u8..=0xF {
            for id in 0u8..=0xFF {
                let word = encode_signal(code, id);
                assert_eq!(decode_signal(word), (code, id), "code {code} id {id}");
                assert!(word <= 0x0FFF, "12-bit envelope");
            }
        }
        // Out-of-range codes are masked, never smeared into the id.
        assert_eq!(decode_signal(encode_signal(0xFF, 0)), (0xF, 0));
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [SIG_ASSERT, SIG_BREAKPOINT, SIG_GUARD_BEGIN, SIG_GUARD_END];
        let set: std::collections::HashSet<u8> = codes.into_iter().collect();
        assert_eq!(set.len(), codes.len());
        let cmds = [CMD_READ, CMD_WRITE, CMD_CONTINUE, CMD_GET_PC];
        let set: std::collections::HashSet<u8> = cmds.into_iter().collect();
        assert_eq!(set.len(), cmds.len());
        // The header can never be mistaken for a command byte or ACK.
        assert!(!cmds.contains(&FRAME_HDR));
        assert_ne!(FRAME_HDR, ACK);
    }

    #[test]
    fn equates_assemble() {
        let src = format!(
            "{}\n.org 0x4400\n movi r0, SIG_GUARD_BEGIN\n movi r1, FRAME_HDR\n",
            asm_equates()
        );
        edb_mcu::asm::assemble(&src).expect("equates are valid assembly");
    }

    #[test]
    fn command_frames_round_trip() {
        for cmd in [
            HostCommand::Read { addr: 0x6000 },
            HostCommand::Write {
                addr: 0x6002,
                value: 0xBEEF,
            },
            HostCommand::GetPc,
            HostCommand::Continue,
        ] {
            let frame = cmd.encode();
            assert_eq!(frame[0], FRAME_HDR);
            assert!(frame_sums_to_zero(&frame), "{cmd:?}");
            assert_eq!(decode_command(&frame), Ok(cmd));
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // An additive mod-256 checksum detects *all* single-bit errors:
        // flipping bit k of any byte changes the sum by ±2^k mod 256,
        // never zero.
        let frame = HostCommand::Write {
            addr: 0x1234,
            value: 0xABCD,
        }
        .encode();
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_command(&bad).is_err(),
                    "flip byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn reply_decoder_accepts_the_reference_encoding() {
        let cmd = HostCommand::Read { addr: 0x6000 };
        let mut dec = ReplyDecoder::new(cmd).expect("reads have replies");
        let reply = encode_reply(cmd.cmd_byte(), &[0x34, 0x12]);
        let mut out = None;
        for b in reply {
            out = dec.push(b);
        }
        assert_eq!(out, Some(Ok(0x1234)));
    }

    #[test]
    fn reply_checksum_binds_the_command_byte() {
        // A byte-perfect READ reply must *fail* when the host is waiting
        // on a GET_PC: the command byte seeds the checksum, so stale
        // replies to a different command are rejected.
        let reply = encode_reply(CMD_READ, &[0x34, 0x12]);
        let mut dec = ReplyDecoder::new(HostCommand::GetPc).expect("has reply");
        let mut out = None;
        for b in reply {
            out = dec.push(b);
        }
        assert_eq!(out, Some(Err(FrameError::BadChecksum)));
    }

    #[test]
    fn rotated_reply_replay_is_rejected() {
        // The regression the session fuzzer found: an attempt tears with
        // its checksum byte still pacing out of the target; the host
        // retries, and the stale checksum lands in front of the fresh,
        // byte-identical reply. Under a plain additive checksum the
        // rotation [ck, lo, hi] validates exactly like [lo, hi, ck]; the
        // position weights must reject it (whenever lo != hi).
        for payload in [[0x0D, 0x1D], [0x34, 0x12], [0x00, 0xFF], [0xFE, 0xCA]] {
            let cmd = HostCommand::Read { addr: 0x6018 };
            let reply = encode_reply(cmd.cmd_byte(), &payload);
            let rotated = [reply[2], reply[0], reply[1]];
            let mut dec = ReplyDecoder::new(cmd).expect("has reply");
            let mut out = None;
            for b in rotated {
                out = dec.push(b);
            }
            assert_eq!(
                out,
                Some(Err(FrameError::BadChecksum)),
                "rotation of {payload:02x?} validated"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_in_a_reply_is_detected() {
        // Odd position weights keep the single-bit-flip guarantee: the
        // sum changes by ±(2i+1)·2^k, and an odd multiple of a power of
        // two is never 0 mod 256.
        let cmd = HostCommand::Read { addr: 0x6000 };
        let reply = encode_reply(cmd.cmd_byte(), &[0xA5, 0x5A]);
        for i in 0..reply.len() {
            for bit in 0..8 {
                let mut bad = reply.clone();
                bad[i] ^= 1 << bit;
                let mut dec = ReplyDecoder::new(cmd).expect("has reply");
                let mut out = None;
                for &b in &bad {
                    out = dec.push(b);
                }
                assert_eq!(
                    out,
                    Some(Err(FrameError::BadChecksum)),
                    "flip byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn continue_has_no_reply_decoder() {
        assert!(ReplyDecoder::new(HostCommand::Continue).is_none());
    }

    #[test]
    fn decoder_reset_discards_partial_bytes() {
        let cmd = HostCommand::Read { addr: 0 };
        let mut dec = ReplyDecoder::new(cmd).expect("has reply");
        assert!(dec.push(0x99).is_none());
        assert_eq!(dec.bytes_seen(), 1);
        dec.reset();
        assert_eq!(dec.bytes_seen(), 0);
        // A fresh, valid reply still decodes after the reset.
        let mut out = None;
        for b in encode_reply(cmd.cmd_byte(), &[0xFE, 0xCA]) {
            out = dec.push(b);
        }
        assert_eq!(out, Some(Ok(0xCAFE)));
    }

    #[test]
    fn truncated_and_mislabeled_frames_are_rejected() {
        let frame = HostCommand::Read { addr: 0x6000 }.encode();
        assert_eq!(decode_command(&frame[..3]), Err(FrameError::Truncated));
        let mut bad = frame.clone();
        bad[0] = 0x55;
        assert_eq!(
            decode_command(&bad),
            Err(FrameError::BadHeader { got: 0x55 })
        );
        let mut bad = frame.clone();
        bad[1] = 0x7E;
        assert_eq!(
            decode_command(&bad),
            Err(FrameError::UnknownCommand { cmd: 0x7E })
        );
        let mut bad = frame;
        bad[2] = LEN_WRITE;
        assert_eq!(
            decode_command(&bad),
            Err(FrameError::LengthMismatch {
                cmd: CMD_READ,
                got: LEN_WRITE
            })
        );
    }
}
