//! The electrical connections between EDB and the target, and their
//! leakage — the model behind Table 2.
//!
//! Every physical connection of Figure 5 is represented: the two analog
//! sense lines (instrumentation-amplifier inputs), the debugger- and
//! target-driven communication lines (low-leakage digital buffers behind
//! level shifters), the two code-marker lines, the monitored UART and RF
//! data lines, and the I²C pair. Each has a state-dependent leakage
//! current drawn from component-tolerance distributions seeded per board
//! instance, and the live simulation integrates the sum into the target's
//! capacitor — so "energy-interference-freedom" is a *measured* property
//! of the reproduction, not an assumption.
//!
//! Sign convention: positive current flows **out of the target** (drains
//! its capacitor), matching Table 2's orientation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The electrical family a connection belongs to, which determines its
/// leakage behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnectionKind {
    /// High-impedance analog sense through an instrumentation amplifier
    /// (sub-nA bias current, occasionally negative).
    AnalogSense,
    /// A line EDB drives into the target (target side is an input):
    /// essentially leak-free.
    DebuggerDriven,
    /// A line the target drives into EDB's digital buffer: tens of nA
    /// leak through the buffer input and protection network when held
    /// high, a couple of nA flow back when low.
    TargetDriven,
    /// The I²C pair, monitored through an extremely low-leakage buffer.
    I2c,
}

impl ConnectionKind {
    /// `(mean, sd)` of the leakage in nA for the given logic state
    /// (`high = true`). Analog lines ignore the state.
    fn distribution(self, high: bool) -> (f64, f64) {
        match (self, high) {
            (ConnectionKind::AnalogSense, _) => (0.1, 0.6),
            (ConnectionKind::DebuggerDriven, true) => (0.0, 0.01),
            (ConnectionKind::DebuggerDriven, false) => (-0.02, 0.01),
            (ConnectionKind::TargetDriven, true) => (64.0, 18.0),
            (ConnectionKind::TargetDriven, false) => (-1.9, 0.2),
            (ConnectionKind::I2c, true) => (0.04, 0.02),
            (ConnectionKind::I2c, false) => (-0.18, 0.05),
        }
    }
}

/// One physical connection with its board-instance bias factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Connection {
    /// Table 2's row name.
    pub name: &'static str,
    /// Electrical family.
    pub kind: ConnectionKind,
    bias: f64,
}

/// The full header between EDB and the target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wiring {
    connections: Vec<Connection>,
    rng: StdRng,
}

/// Logic levels of the digital connections at an instant, assembled by
/// the debugger from observable device state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineStates {
    /// Target→debugger comm line level.
    pub target_comm_high: bool,
    /// Code-marker lines level (pulsed briefly; almost always low).
    pub code_marker_high: bool,
    /// Monitored UART RX line.
    pub uart_rx_high: bool,
    /// Monitored UART TX line.
    pub uart_tx_high: bool,
    /// Monitored RF RX (demodulator) line.
    pub rf_rx_high: bool,
    /// Monitored RF TX (modulator) line.
    pub rf_tx_high: bool,
    /// I²C clock line.
    pub i2c_scl_high: bool,
    /// I²C data line.
    pub i2c_sda_high: bool,
}

impl Wiring {
    /// Builds the standard eleven-connection header of the prototype,
    /// with component tolerances sampled from `seed`.
    pub fn standard(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(&'static str, ConnectionKind)> = vec![
            ("Capacitor sense, manipulate", ConnectionKind::AnalogSense),
            (
                "Regulator sense, level reference",
                ConnectionKind::AnalogSense,
            ),
            ("Debugger→Target comm.", ConnectionKind::DebuggerDriven),
            ("Target→Debugger comm.", ConnectionKind::TargetDriven),
            ("Code marker 0", ConnectionKind::TargetDriven),
            ("Code marker 1", ConnectionKind::TargetDriven),
            ("UART RX", ConnectionKind::TargetDriven),
            ("UART TX", ConnectionKind::TargetDriven),
            ("RF RX", ConnectionKind::TargetDriven),
            ("RF TX", ConnectionKind::TargetDriven),
            ("I2C SCL", ConnectionKind::I2c),
            ("I2C SDA", ConnectionKind::I2c),
        ];
        let connections = rows
            .into_iter()
            .map(|(name, kind)| Connection {
                name,
                kind,
                // Per-board component spread: ±25 % around nominal.
                bias: rng.gen_range(0.75..1.25),
            })
            .collect();
        Wiring { connections, rng }
    }

    /// The connections in Table 2 order.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// One source-meter measurement of connection `idx` with the driving
    /// endpoint at the given logic state. Returns nA (positive = out of
    /// the target).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn measure_na(&mut self, idx: usize, high: bool) -> f64 {
        let conn = &self.connections[idx];
        let (mean, sd) = conn.kind.distribution(high);
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let noise = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean * conn.bias + noise * sd
    }

    /// Instantaneous leakage drain (amps, positive = out of the target)
    /// for the given line states — the quantity the live simulation
    /// integrates into the target's capacitor every step.
    pub fn drain_amps(&mut self, states: LineStates) -> f64 {
        let mut total_na = 0.0;
        for (idx, conn) in self.connections.iter().enumerate() {
            let high = match idx {
                3 => states.target_comm_high,
                4 | 5 => states.code_marker_high,
                6 => states.uart_rx_high,
                7 => states.uart_tx_high,
                8 => states.rf_rx_high,
                9 => states.rf_tx_high,
                10 => states.i2c_scl_high,
                11 => states.i2c_sda_high,
                _ => false,
            };
            let (mean, _) = conn.kind.distribution(high);
            total_na += mean * conn.bias;
        }
        total_na * 1e-9
    }

    /// The worst case: every line held high simultaneously. The paper
    /// measures 836.51 nA, "0.2 % of the typical active mode current".
    pub fn worst_case_drain_amps(&self) -> f64 {
        let total_na: f64 = self
            .connections
            .iter()
            .map(|c| {
                let hi = c.kind.distribution(true).0.abs();
                let lo = c.kind.distribution(false).0.abs();
                hi.max(lo) * c.bias
            })
            .sum();
        total_na * 1e-9
    }
}

/// Noise parameters for the debug-UART channel between EDB and the
/// target — the fault model the robustness layer is tested against.
///
/// All probabilities are per byte. Truncation-at-power-loss needs no
/// probability here: a brown-out clears the link's queues (see
/// `DebugLink::reset`), so whatever was in flight is cut off exactly
/// where the power died.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelFaultConfig {
    /// Probability a delivered byte has one random bit flipped.
    pub bit_flip: f64,
    /// Probability a byte is dropped entirely.
    pub drop: f64,
    /// Probability a byte is delivered twice.
    pub duplicate: f64,
    /// Seed for the fault RNG — independent of the board seed so the
    /// same noise pattern can replay over different hardware instances.
    pub seed: u64,
}

impl ChannelFaultConfig {
    /// A moderately hostile channel: about one corrupted frame in five
    /// at `CMD_WRITE` length. The rates are high enough to exercise
    /// every retry path in a 100-session fuzz run, low enough that most
    /// sessions complete.
    pub fn noisy(seed: u64) -> Self {
        ChannelFaultConfig {
            bit_flip: 0.01,
            drop: 0.005,
            duplicate: 0.005,
            seed,
        }
    }
}

/// A live fault injector for one direction-agnostic byte stream.
///
/// Deterministic: the delivered bytes are a pure function of the config
/// seed and the byte sequence pushed through [`ChannelFault::corrupt`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelFault {
    config: ChannelFaultConfig,
    rng: StdRng,
}

impl ChannelFault {
    /// Creates the injector with its own RNG stream.
    pub fn new(config: ChannelFaultConfig) -> Self {
        ChannelFault {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> ChannelFaultConfig {
        self.config
    }

    /// Passes one byte through the noisy channel. Returns the delivered
    /// bytes (0, 1, or 2 of them) in a fixed-size buffer plus the count —
    /// no allocation, so the clean-path cost is a few RNG draws.
    pub fn corrupt(&mut self, byte: u8) -> ([u8; 2], usize) {
        let p = |x: f64| x.clamp(0.0, 1.0);
        if self.rng.gen_bool(p(self.config.drop)) {
            return ([0, 0], 0);
        }
        let copies = if self.rng.gen_bool(p(self.config.duplicate)) {
            2
        } else {
            1
        };
        let mut out = [0u8; 2];
        for slot in out.iter_mut().take(copies) {
            let mut b = byte;
            if self.rng.gen_bool(p(self.config.bit_flip)) {
                b ^= 1 << self.rng.gen_range(0..8u8);
            }
            *slot = b;
        }
        (out, copies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_sub_microamp() {
        // Table 2's headline: total worst-case leakage under 1 µA, i.e.
        // ~0.2 % of the ~0.5 mA active current of the paper's MCU.
        for seed in 0..20 {
            let w = Wiring::standard(seed);
            let worst = w.worst_case_drain_amps();
            assert!(worst < 1e-6, "worst case {worst} A exceeds 1 µA");
            assert!(worst > 0.2e-6, "worst case {worst} A implausibly low");
        }
    }

    #[test]
    fn idle_lines_leak_nanoamps_at_most() {
        let mut w = Wiring::standard(1);
        let drain = w.drain_amps(LineStates::default());
        assert!(drain.abs() < 50e-9, "idle drain {drain}");
    }

    #[test]
    fn target_driven_high_dominates() {
        let mut w = Wiring::standard(2);
        let idle = w.drain_amps(LineStates::default());
        let busy = w.drain_amps(LineStates {
            uart_tx_high: true,
            rf_tx_high: true,
            ..Default::default()
        });
        assert!(busy > idle + 80e-9, "busy {busy} vs idle {idle}");
    }

    #[test]
    fn measurements_track_the_table_shape() {
        let mut w = Wiring::standard(3);
        // Target→Debugger comm, high state: tens of nA.
        let idx = 3;
        let samples: Vec<f64> = (0..500).map(|_| w.measure_na(idx, true)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((20.0..120.0).contains(&mean), "high-state mean {mean} nA");
        // Low state: small and negative.
        let samples: Vec<f64> = (0..500).map(|_| w.measure_na(idx, false)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((-4.0..0.0).contains(&mean), "low-state mean {mean} nA");
    }

    #[test]
    fn i2c_lines_are_nearly_leak_free() {
        let mut w = Wiring::standard(4);
        let scl: Vec<f64> = (0..200).map(|_| w.measure_na(10, true)).collect();
        let mean = scl.iter().sum::<f64>() / scl.len() as f64;
        assert!(mean.abs() < 0.5, "I2C SCL mean {mean} nA");
    }

    #[test]
    fn twelve_connections_cover_figure_5() {
        let w = Wiring::standard(0);
        assert_eq!(w.connections().len(), 12);
        assert_eq!(w.connections()[0].name, "Capacitor sense, manipulate");
    }

    #[test]
    fn channel_fault_is_deterministic_per_seed() {
        let run = |seed| {
            let mut f = ChannelFault::new(ChannelFaultConfig::noisy(seed));
            (0..2000u32)
                .flat_map(|i| {
                    let (bytes, n) = f.corrupt((i & 0xFF) as u8);
                    bytes[..n].to_vec()
                })
                .collect::<Vec<u8>>()
        };
        assert_eq!(run(7), run(7), "same seed, same delivered stream");
        assert_ne!(run(7), run(8), "different seed, different noise");
    }

    #[test]
    fn channel_fault_rates_are_roughly_honoured() {
        let mut f = ChannelFault::new(ChannelFaultConfig {
            bit_flip: 0.1,
            drop: 0.1,
            duplicate: 0.1,
            seed: 3,
        });
        let n = 20_000u32;
        let mut delivered = 0usize;
        let mut flipped = 0usize;
        for _ in 0..n {
            let (bytes, got) = f.corrupt(0x55);
            delivered += got;
            flipped += bytes[..got].iter().filter(|&&b| b != 0x55).count();
        }
        // Expected delivered per input byte: 0.9 * 1.1 = 0.99.
        let ratio = delivered as f64 / f64::from(n);
        assert!((0.9..1.1).contains(&ratio), "delivery ratio {ratio}");
        let flip_ratio = flipped as f64 / delivered as f64;
        assert!((0.05..0.2).contains(&flip_ratio), "flip ratio {flip_ratio}");
    }

    #[test]
    fn zeroed_fault_config_is_transparent() {
        let mut f = ChannelFault::new(ChannelFaultConfig {
            bit_flip: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            seed: 0,
        });
        for b in 0..=255u8 {
            assert_eq!(f.corrupt(b), ([b, 0], 1));
        }
    }
}
