//! The session-level debugging engine: one simulated target, one EDB,
//! one typed command surface.
//!
//! [`DebugSession`] wraps a [`System`] behind the typed
//! [`DebugRequest`] → [`DebugResponse`] API and adds the bookkeeping an
//! interactive frontend needs — breakpoint lists, an event cursor, a
//! status snapshot, disassembly around the resume point. It is the
//! engine the `edb-serve` JSON-RPC server hosts per session and the TUI
//! client renders, and it is deliberately transport-free: everything
//! here is synchronous, deterministic, and steppable, so a scripted
//! session replays bit-identically.
//!
//! [`SessionBuilder`] mirrors [`SystemBuilder`] one level up: it gathers
//! the *session* knobs — command deadlines, retry budget, channel-fault
//! injection, firmware — in one place and assembles the bench in a
//! fixed order, so two sessions built from equal specs behave
//! identically.

use crate::debugger::{DebugRequest, DebugResponse, EdbConfig, RequestId, SessionPoll};
use crate::error::EdbError;
use crate::events::LoggedEvent;
use crate::system::{System, SystemBuilder};
use crate::wiring::ChannelFaultConfig;
use edb_device::DeviceConfig;
use edb_energy::{Harvester, SimTime, TheveninSource};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A point-in-time snapshot of everything a frontend shows about a
/// session. All fields are ground-truth simulation state (the snapshot
/// is observational — taking it perturbs nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Simulation time, nanoseconds.
    pub time_ns: u64,
    /// Storage-capacitor voltage, volts.
    pub v_cap: f64,
    /// Regulated rail voltage, volts.
    pub v_reg: f64,
    /// Whether the target is powered right now.
    pub powered: bool,
    /// Completed power cycles (brown-outs) so far.
    pub reboots: u64,
    /// Instructions retired across all power cycles.
    pub instructions: u64,
    /// Whether an interactive debug session is open (target parked in
    /// its service loop).
    pub session_active: bool,
    /// Whether the target is inside an energy-guarded region.
    pub in_guard: bool,
    /// The program counter, from the simulator's ground truth (use
    /// [`DebugRequest::GetPc`] for the wire-observed resume address).
    pub pc: u16,
}

/// Builder for a [`DebugSession`] — the session-level mirror of
/// [`SystemBuilder`].
///
/// Where `SystemBuilder` assembles the electrical bench (device, world,
/// debugger attachment), `SessionBuilder` collects the knobs a debugging
/// *session* cares about — per-command deadline, retry budget,
/// channel-fault injection, the firmware to flash — and applies them in
/// one place. Defaults are the paper-prototype configuration over a
/// stiff Thévenin bench supply.
///
/// # Example
///
/// ```
/// use edb_core::SessionBuilder;
/// use edb_energy::SimTime;
///
/// let session = SessionBuilder::new()
///     .deadline(SimTime::from_ms(5))
///     .retries(3)
///     .firmware(
///         r#"
///         .org 0x4400
///     main:
///         movi sp, 0x2400
///     loop:
///         movi r0, 1
///         call __edb_assert_fail
///         jmp  loop
///         .org 0xFFFE
///         .word main
///         "#,
///     )
///     .build()
///     .expect("firmware assembles");
/// assert!(!session.status().session_active);
/// ```
pub struct SessionBuilder {
    device: DeviceConfig,
    harvester: Option<Box<dyn Harvester>>,
    rfid_distance: Option<f64>,
    seed: u64,
    edb_config: EdbConfig,
    channel_fault: Option<ChannelFaultConfig>,
    source: Option<String>,
    image: Option<edb_mcu::Image>,
    ckpt: Option<edb_runtime::ckpt::CkptConfig>,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("seed", &self.seed)
            .field(
                "has_firmware",
                &(self.source.is_some() || self.image.is_some()),
            )
            .finish_non_exhaustive()
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

impl SessionBuilder {
    /// Starts a session spec with the defaults: a WISP-class target on a
    /// stiff Thévenin bench supply, EDB attached with the prototype
    /// configuration, a quiet channel, and no firmware.
    pub fn new() -> Self {
        SessionBuilder {
            device: DeviceConfig::wisp5(),
            harvester: None,
            rfid_distance: None,
            seed: 0,
            edb_config: EdbConfig::prototype(),
            channel_fault: None,
            source: None,
            image: None,
            ckpt: None,
        }
    }

    /// Attaches a host-side checkpoint engine from the strategy zoo
    /// (see [`SystemBuilder::with_checkpoint_strategy`]). Recorded
    /// sessions carry this in their spec so replays race the same
    /// strategy.
    pub fn with_checkpoint_strategy(mut self, config: edb_runtime::ckpt::CkptConfig) -> Self {
        self.ckpt = Some(config);
        self
    }

    /// Overrides the target device configuration.
    pub fn device(mut self, config: DeviceConfig) -> Self {
        self.device = config;
        self
    }

    /// Powers the target from a plain harvester instead of the default
    /// bench supply.
    pub fn harvester(mut self, harvester: impl Harvester + 'static) -> Self {
        self.harvester = Some(Box::new(harvester));
        self.rfid_distance = None;
        self
    }

    /// Powers the target from an RFID reader's carrier at `distance_m`
    /// metres — the paper's experimental setup.
    pub fn rfid(mut self, distance_m: f64) -> Self {
        self.rfid_distance = Some(distance_m);
        self.harvester = None;
        self
    }

    /// Seeds every stochastic element of the bench (ADC noise, retry
    /// backoff, RF channel).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the whole debugger configuration at once. The granular
    /// setters ([`deadline`](SessionBuilder::deadline),
    /// [`retries`](SessionBuilder::retries), …) edit this same config.
    pub fn edb_config(mut self, config: EdbConfig) -> Self {
        self.edb_config = config;
        self
    }

    /// Per-attempt sim-time deadline for a framed debug command.
    pub fn deadline(mut self, timeout: SimTime) -> Self {
        self.edb_config.cmd_timeout = timeout;
        self
    }

    /// Bounded re-sends after a command's first attempt.
    pub fn retries(mut self, retries: u32) -> Self {
        self.edb_config.cmd_retries = retries;
        self
    }

    /// Minimum backoff before a re-send (the torn-reply flush window).
    pub fn retry_flush(mut self, flush: SimTime) -> Self {
        self.edb_config.retry_flush = flush;
        self
    }

    /// Injects noise (bit flips, drops, duplicates) on both directions
    /// of the debug UART.
    pub fn channel_fault(mut self, config: ChannelFaultConfig) -> Self {
        self.channel_fault = Some(config);
        self
    }

    /// Flashes firmware from assembly source. The source is wrapped
    /// with the `libEDB` runtime ([`crate::libedb::wrap_program`]) and
    /// assembled at [`build`](SessionBuilder::build) time.
    pub fn firmware(mut self, source: &str) -> Self {
        self.source = Some(source.to_string());
        self.image = None;
        self
    }

    /// Flashes an already-assembled image (no `libEDB` wrapping).
    pub fn image(mut self, image: edb_mcu::Image) -> Self {
        self.image = Some(image);
        self.source = None;
        self
    }

    /// Assembles the firmware (if given as source), stands up the bench,
    /// and flashes the target. Assembly failures surface as
    /// [`EdbError::Device`].
    pub fn build(self) -> Result<DebugSession, EdbError> {
        let image = match (self.image, self.source) {
            (Some(image), _) => Some(image),
            (None, Some(source)) => Some(
                edb_mcu::asm::assemble(&crate::libedb::wrap_program(&source)).map_err(|e| {
                    EdbError::Device {
                        detail: format!("firmware does not assemble: {e}"),
                    }
                })?,
            ),
            (None, None) => None,
        };
        let mut builder = SystemBuilder::new(self.device)
            .seed(self.seed)
            .edb_config(self.edb_config);
        builder = match (self.harvester, self.rfid_distance) {
            (Some(h), _) => builder.harvester(h),
            (None, Some(d)) => builder.rfid(d),
            (None, None) => builder.harvester(TheveninSource::new(3.2, 1500.0)),
        };
        if let Some(fault) = self.channel_fault {
            builder = builder.channel_fault(fault);
        }
        if let Some(ckpt) = self.ckpt {
            builder = builder.with_checkpoint_strategy(ckpt);
        }
        let mut sys = builder.build();
        if let Some(image) = &image {
            sys.flash(image);
        }
        Ok(DebugSession {
            sys,
            breakpoints: BTreeMap::new(),
            energy_guards: Vec::new(),
            tape: None,
        })
    }
}

/// One hosted debugging session: a simulated target with EDB attached,
/// driven through the typed engine API.
///
/// Everything a frontend does flows through this type: submit or
/// perform typed requests, advance simulated time, manage breakpoints,
/// and read back events and status. Time only advances through the
/// explicit stepping methods, so a caller replaying the same calls gets
/// the same bytes.
#[derive(Debug)]
pub struct DebugSession {
    sys: System,
    /// Code breakpoints this session enabled: ID → optional energy
    /// threshold (a combined breakpoint).
    breakpoints: BTreeMap<u8, Option<f64>>,
    /// Energy-guard thresholds armed through this session, volts.
    energy_guards: Vec<f64>,
    /// The active recording, when one is (see [`crate::replay`]).
    pub(crate) tape: Option<crate::replay::Tape>,
}

impl DebugSession {
    /// Starts a session spec (see [`SessionBuilder`]).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The underlying bench, for observational access.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable bench access, for harnesses that need to reach around
    /// the session surface (fault injection, recorder harvest).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sys.now()
    }

    /// Submits a typed request without advancing time. The caller owns
    /// the stepping loop: interleave [`step`](DebugSession::step) (or
    /// [`advance`](DebugSession::advance)) with
    /// [`poll`](DebugSession::poll) until the request resolves.
    pub fn submit(&mut self, request: DebugRequest) -> Result<RequestId, EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::Submit { request });
        let result = (|| {
            let op = request.name();
            let Some(edb) = self.sys.edb() else {
                return Err(EdbError::NotAttached { op });
            };
            if !edb.session_active() {
                return Err(EdbError::NoSession { op });
            }
            let now = self.sys.now();
            let (edb, dev) = self.sys.edb_and_device().expect("attached");
            Ok(edb.submit(dev, request, now))
        })();
        crate::replay::tape_boundary(self);
        result
    }

    /// Polls a submitted request. Does not advance time.
    pub fn poll(&mut self, id: RequestId) -> SessionPoll<DebugResponse> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::Poll { id });
        let result = match self.sys.edb() {
            Some(_) => self.sys.edb_mut().poll(id),
            None => SessionPoll::Superseded,
        };
        crate::replay::tape_boundary(self);
        result
    }

    /// One complete typed exchange: submit, then drive the bench until
    /// the state machine reports a typed response or a typed abort.
    pub fn perform(&mut self, request: DebugRequest) -> Result<DebugResponse, EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::Perform { request });
        let result = self.sys.perform(request);
        crate::replay::tape_boundary(self);
        result
    }

    /// Advances the simulation by one device step.
    pub fn step(&mut self) {
        crate::replay::tape_op(self, &crate::replay::SessionOp::Step { n: 1 });
        self.sys.step();
        crate::replay::tape_boundary(self);
    }

    /// Advances the simulation by `duration`.
    pub fn advance(&mut self, duration: SimTime) {
        crate::replay::tape_op(
            self,
            &crate::replay::SessionOp::Advance {
                ns: duration.as_ns(),
            },
        );
        self.sys.run_for(duration);
        crate::replay::tape_boundary(self);
    }

    /// Runs until an interactive session opens, up to `timeout`.
    /// Returns whether one is open.
    pub fn run_until_session(&mut self, timeout: SimTime) -> bool {
        crate::replay::tape_op(
            self,
            &crate::replay::SessionOp::RunUntilSession {
                timeout_ns: timeout.as_ns(),
            },
        );
        let result = self.sys.wait_for_session(timeout);
        crate::replay::tape_boundary(self);
        result
    }

    /// Resumes the target from an open session (restore energy, release
    /// the service loop) and waits for the session to close.
    pub fn resume(&mut self) -> Result<(), EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::Resume);
        let result = self.sys.try_resume();
        crate::replay::tape_boundary(self);
        result
    }

    /// Charges the target to `volts` and waits for convergence.
    pub fn charge_to(&mut self, volts: f64) -> Result<f64, EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::ChargeTo { volts });
        let result = self.sys.try_charge_to(volts);
        crate::replay::tape_boundary(self);
        result
    }

    /// Discharges the target to `volts` and waits for convergence.
    pub fn discharge_to(&mut self, volts: f64) -> Result<f64, EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::DischargeTo { volts });
        let result = self.sys.try_discharge_to(volts);
        crate::replay::tape_boundary(self);
        result
    }

    /// Enables a code breakpoint, optionally conditioned on the energy
    /// level (a combined breakpoint).
    pub fn set_breakpoint(&mut self, id: u8, energy: Option<f64>) -> Result<(), EdbError> {
        crate::replay::tape_op(
            self,
            &crate::replay::SessionOp::SetBreakpoint { id, energy },
        );
        let result = (|| {
            let Some((edb, dev)) = self.sys.edb_and_device() else {
                return Err(EdbError::NotAttached {
                    op: "set_breakpoint",
                });
            };
            edb.enable_breakpoint(dev, id, energy);
            self.breakpoints.insert(id, energy);
            Ok(())
        })();
        crate::replay::tape_boundary(self);
        result
    }

    /// Disables a code breakpoint.
    pub fn clear_breakpoint(&mut self, id: u8) -> Result<(), EdbError> {
        crate::replay::tape_op(self, &crate::replay::SessionOp::ClearBreakpoint { id });
        let result = (|| {
            let Some((edb, dev)) = self.sys.edb_and_device() else {
                return Err(EdbError::NotAttached {
                    op: "clear_breakpoint",
                });
            };
            edb.disable_breakpoint(dev, id);
            self.breakpoints.remove(&id);
            Ok(())
        })();
        crate::replay::tape_boundary(self);
        result
    }

    /// The code breakpoints this session enabled: `(id, energy)` pairs
    /// in ID order.
    pub fn breakpoints(&self) -> Vec<(u8, Option<f64>)> {
        self.breakpoints.iter().map(|(&id, &e)| (id, e)).collect()
    }

    /// Arms an energy breakpoint at `threshold` volts (the energy
    /// guard of the console's `break energy` command).
    pub fn arm_energy_guard(&mut self, threshold: f64) -> Result<(), EdbError> {
        crate::replay::tape_op(
            self,
            &crate::replay::SessionOp::ArmEnergyGuard { volts: threshold },
        );
        let result = (|| {
            if self.sys.edb().is_none() {
                return Err(EdbError::NotAttached {
                    op: "arm_energy_guard",
                });
            }
            self.sys.edb_mut().arm_energy_breakpoint(threshold);
            self.energy_guards.push(threshold);
            Ok(())
        })();
        crate::replay::tape_boundary(self);
        result
    }

    /// The energy-guard thresholds armed through this session, volts,
    /// in arming order.
    pub fn energy_guards(&self) -> &[f64] {
        &self.energy_guards
    }

    /// Every event the debugger has logged so far. Frontends keep their
    /// own cursor into this slice, so multiple observers (connections)
    /// can stream the same session independently.
    pub fn events(&self) -> &[LoggedEvent] {
        match self.sys.edb() {
            Some(edb) => edb.log().events(),
            None => &[],
        }
    }

    /// The observational status snapshot.
    pub fn status(&self) -> SessionStatus {
        let dev = self.sys.device();
        let edb = self.sys.edb();
        SessionStatus {
            time_ns: self.sys.now().as_ns(),
            v_cap: dev.v_cap(),
            v_reg: dev.v_reg(),
            powered: dev.powered(),
            reboots: dev.reboots(),
            instructions: dev.total_instructions(),
            session_active: edb.is_some_and(|e| e.session_active()),
            in_guard: edb.is_some_and(|e| e.in_guard()),
            pc: dev.cpu().pc,
        }
    }

    /// Overwrites the session-level bookkeeping (breakpoint list, guard
    /// thresholds) when a snapshot restore rewinds the bench underneath
    /// it (see [`crate::replay`]).
    pub(crate) fn restore_bookkeeping(
        &mut self,
        breakpoints: BTreeMap<u8, Option<f64>>,
        energy_guards: Vec<f64>,
    ) {
        self.breakpoints = breakpoints;
        self.energy_guards = energy_guards;
    }

    /// Resolves a symbol from the flashed image.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.sys.symbol(name)
    }

    /// Statically analyzes the flashed firmware from `entry` (default:
    /// the current PC), assuming the capacitor starts at `v_start`
    /// volts (default: the live capacitor voltage): CFG recovery, WCEC
    /// bound, charge-cycle verdict, and a checkpoint-placement
    /// advisory, bundled as one serializable report. Reads the
    /// device's *actual* memory, so the analysis covers what is really
    /// flashed (patches and corruption included), not the original
    /// image.
    pub fn analyze(&self, entry: Option<u16>, v_start: Option<f64>) -> edb_analyze::AnalysisReport {
        let dev = self.sys.device();
        let entry = entry.unwrap_or(dev.cpu().pc);
        let v_start = v_start.unwrap_or_else(|| dev.v_cap());
        let config = dev.config();
        edb_analyze::analyze_memory(
            &format!("session@{entry:#06x}"),
            dev.mem(),
            entry,
            &config,
            v_start,
        )
    }

    /// Disassembles `count` instructions of target memory starting at
    /// `addr`, from the device's *actual* memory so corruption is
    /// visible.
    pub fn disasm(&self, addr: u16, count: usize) -> Vec<(u16, String)> {
        let mut bytes = Vec::with_capacity(count * 4);
        for k in 0..(count * 4) as u16 {
            bytes.push(self.sys.device().mem().peek_byte(addr.wrapping_add(k)));
        }
        edb_mcu::asm::disassemble(&bytes, addr)
            .into_iter()
            .take(count)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASSERT_APP: &str = r#"
        .org 0x4400
    main:
        movi sp, 0x2400
        movi r1, 0x6000
        movi r0, 0x1101
        st   [r1], r0
    again:
        movi r0, 1
        call __edb_assert_fail
        jmp  again
        .org 0xFFFE
        .word main
        "#;

    fn open_session() -> DebugSession {
        let mut s = SessionBuilder::new()
            .harvester(TheveninSource::new(3.2, 220.0))
            .firmware(ASSERT_APP)
            .build()
            .expect("firmware assembles");
        assert!(s.run_until_session(SimTime::from_secs(2)));
        s
    }

    #[test]
    fn submit_poll_resolves_a_read() {
        let mut s = open_session();
        let id = s.submit(DebugRequest::ReadWord { addr: 0x6000 }).unwrap();
        let deadline = s.now() + SimTime::from_ms(200);
        loop {
            match s.poll(id) {
                SessionPoll::Ready(outcome) => {
                    assert_eq!(outcome, Ok(DebugResponse::Word { value: 0x1101 }));
                    break;
                }
                SessionPoll::Pending { .. } => {
                    assert!(s.now() < deadline, "exchange stuck");
                    s.step();
                }
                SessionPoll::Superseded => panic!("nobody preempted this request"),
            }
        }
        // The result was consumed: the same ID now polls as superseded.
        assert_eq!(s.poll(id), SessionPoll::Superseded);
    }

    #[test]
    fn perform_round_trips_write_and_pc() {
        let mut s = open_session();
        assert_eq!(
            s.perform(DebugRequest::WriteWord {
                addr: 0x6000,
                value: 0xBEEF,
            }),
            Ok(DebugResponse::WriteAck)
        );
        assert_eq!(
            s.perform(DebugRequest::ReadWord { addr: 0x6000 }),
            Ok(DebugResponse::Word { value: 0xBEEF })
        );
        assert!(matches!(
            s.perform(DebugRequest::GetPc),
            Ok(DebugResponse::Pc { .. })
        ));
    }

    #[test]
    fn submit_without_a_session_is_a_typed_error() {
        let mut s = SessionBuilder::new()
            .firmware(ASSERT_APP)
            .build()
            .expect("assembles");
        assert_eq!(
            s.submit(DebugRequest::GetPc),
            Err(EdbError::NoSession { op: "GET_PC" })
        );
    }

    #[test]
    fn a_later_submit_supersedes_the_earlier_request() {
        let mut s = open_session();
        let first = s.submit(DebugRequest::ReadWord { addr: 0x6000 }).unwrap();
        let second = s.submit(DebugRequest::GetPc).unwrap();
        assert_ne!(first, second);
        assert_eq!(s.poll(first), SessionPoll::Superseded);
        assert!(matches!(s.poll(second), SessionPoll::Pending { .. }));
    }

    #[test]
    fn breakpoint_bookkeeping_lists_in_id_order() {
        let mut s = open_session();
        s.set_breakpoint(3, None).unwrap();
        s.set_breakpoint(1, Some(2.1)).unwrap();
        assert_eq!(s.breakpoints(), vec![(1, Some(2.1)), (3, None)]);
        s.clear_breakpoint(3).unwrap();
        assert_eq!(s.breakpoints(), vec![(1, Some(2.1))]);
    }

    #[test]
    fn builder_deadline_and_retries_land_in_the_edb_config() {
        let s = SessionBuilder::new()
            .deadline(SimTime::from_ms(2))
            .retries(7)
            .build()
            .expect("builds");
        let config = s.system().edb().expect("attached").config();
        assert_eq!(config.cmd_timeout, SimTime::from_ms(2));
        assert_eq!(config.cmd_retries, 7);
    }

    #[test]
    fn equal_specs_build_equal_sessions() {
        let run = || {
            let mut s = SessionBuilder::new()
                .harvester(TheveninSource::new(3.2, 220.0))
                .seed(9)
                .firmware(ASSERT_APP)
                .build()
                .expect("assembles");
            assert!(s.run_until_session(SimTime::from_secs(2)));
            let pc = s.perform(DebugRequest::GetPc);
            (s.now(), s.status(), pc)
        };
        assert_eq!(run(), run());
    }
}
