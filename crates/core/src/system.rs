//! The test-bench harness: target device + EDB + the RF world, stepped
//! in lockstep.
//!
//! [`System`] is the experimental setup of §5.1 in one struct: the WISP
//! target, the EDB board on its header, and (optionally) the RFID reader
//! whose carrier powers the tag. All experiment harnesses and examples
//! drive a `System`.

use crate::debugger::{DebugRequest, DebugResponse, Edb, EdbConfig, SessionPoll};
use crate::error::EdbError;
use crate::events::{DebugEvent, LoggedEvent};
use crate::wiring::{ChannelFaultConfig, LineStates};
use edb_device::{Device, DeviceConfig, DeviceEvent, DeviceStep};
use edb_energy::RfField;
use edb_energy::{Harvester, PowerEdge, SimTime};
use edb_obs::{Category, Recorder, RecorderConfig};
use edb_rfid::{Channel, Reader, ReaderConfig};
use edb_runtime::ckpt::{CkptConfig, CkptEngine};
use serde::{DeError, Deserialize, Serialize, Value};

/// The energy-and-RF environment around the target.
#[allow(clippy::large_enum_variant)] // one World per System; size is irrelevant
enum World {
    /// A plain harvester (constant, Thévenin, solar, trace playback).
    Harvester(Box<dyn Harvester>),
    /// The paper's lab: an RFID reader powering the tag and talking to it.
    Rfid {
        field: RfField,
        reader: Reader,
        channel: Channel,
        /// Downlink frames in flight: `(deliver_at, bytes)`.
        inflight: Vec<(SimTime, Vec<u8>)>,
    },
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            World::Harvester(_) => write!(f, "World::Harvester(..)"),
            World::Rfid { reader, .. } => f
                .debug_struct("World::Rfid")
                .field("commands_sent", &reader.commands_sent())
                .finish(),
        }
    }
}

/// What powers the target while the bench runs.
enum WorldSpec {
    /// A plain harvester (constant, Thévenin, solar, trace playback).
    Harvester(Box<dyn Harvester>),
    /// An RFID reader's carrier at `distance_m` metres.
    Rfid { distance_m: f64 },
}

/// Builder for a [`System`] — the one way to stand up a bench.
///
/// Exactly one energy world must be chosen: [`harvester`] or [`rfid`].
/// Everything else has the defaults the paper's setup uses: EDB attached
/// with [`EdbConfig::prototype`], the paper's reader schedule, channel
/// seed 0.
///
/// [`harvester`]: SystemBuilder::harvester
/// [`rfid`]: SystemBuilder::rfid
///
/// # Example
///
/// ```
/// use edb_core::System;
/// use edb_device::DeviceConfig;
/// use edb_energy::TheveninSource;
///
/// let tethered = System::builder(DeviceConfig::wisp5())
///     .harvester(TheveninSource::new(3.0, 10.0))
///     .build();
/// assert!(tethered.edb().is_some());
///
/// let bare_rfid = System::builder(DeviceConfig::wisp5())
///     .rfid(1.0)
///     .seed(42)
///     .no_edb()
///     .build();
/// assert!(bare_rfid.edb().is_none());
/// ```
pub struct SystemBuilder {
    device_config: DeviceConfig,
    world: Option<WorldSpec>,
    reader_config: ReaderConfig,
    seed: u64,
    edb: bool,
    edb_config: EdbConfig,
    channel_fault: Option<ChannelFaultConfig>,
    recorder: Option<RecorderConfig>,
    ckpt: Option<CkptConfig>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("seed", &self.seed)
            .field("edb", &self.edb)
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// Starts a bench around a target with the given configuration.
    pub fn new(device_config: DeviceConfig) -> Self {
        SystemBuilder {
            device_config,
            world: None,
            reader_config: ReaderConfig::paper_setup(),
            seed: 0,
            edb: true,
            edb_config: EdbConfig::prototype(),
            channel_fault: None,
            recorder: None,
            ckpt: None,
        }
    }

    /// Attaches a host-side checkpoint engine from the strategy zoo
    /// ([`edb_runtime::ckpt`]): the debugger snapshots volatile state
    /// over its side channel and restores it on every turn-on, at zero
    /// energy cost to the target. Leave unset for the bare bench every
    /// experiment manifest is golden against.
    pub fn with_checkpoint_strategy(mut self, config: CkptConfig) -> Self {
        self.ckpt = Some(config);
        self
    }

    /// Overrides the debugger firmware parameters — command deadlines,
    /// retry budget, trace switches. Defaults to
    /// [`EdbConfig::prototype`], the configuration every golden
    /// manifest was recorded against.
    pub fn edb_config(mut self, config: EdbConfig) -> Self {
        self.edb_config = config;
        self
    }

    /// Powers the target from a plain harvester.
    pub fn harvester(mut self, harvester: impl Harvester + 'static) -> Self {
        self.world = Some(WorldSpec::Harvester(Box::new(harvester)));
        self
    }

    /// Powers the target from an RFID reader's carrier at `distance_m`
    /// metres — the paper's experimental setup.
    pub fn rfid(mut self, distance_m: f64) -> Self {
        self.world = Some(WorldSpec::Rfid { distance_m });
        self
    }

    /// Overrides the reader schedule (experiments tune the inventory
    /// cadence). Only meaningful with [`rfid`](SystemBuilder::rfid).
    pub fn reader_config(mut self, config: ReaderConfig) -> Self {
        self.reader_config = config;
        self
    }

    /// Seeds the RF channel's packet-loss randomness. Only meaningful
    /// with [`rfid`](SystemBuilder::rfid).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the bench without a debugger — the control condition for
    /// energy-interference experiments.
    pub fn no_edb(mut self) -> Self {
        self.edb = false;
        self
    }

    /// Injects noise (bit flips, drops, duplicates) on both directions
    /// of the debug UART — the fault model the robustness tests and the
    /// channel-noise fuzz engine drive sessions through. Leave unset for
    /// the perfect channel every experiment manifest is golden against.
    pub fn channel_fault(mut self, config: ChannelFaultConfig) -> Self {
        self.channel_fault = Some(config);
        self
    }

    /// Attaches an [`edb_obs::Recorder`] to the bench: every layer
    /// publishes structured observations into it as the system runs.
    /// Recording is passive by construction — the recorder only reads
    /// ground-truth simulation state, so outputs are bit-identical with
    /// and without it. Retrieve it with [`System::take_recorder`].
    ///
    /// Without this call, `build` still consults
    /// [`edb_obs::ambient::config`] so experiment binaries can attach
    /// recorders fleet-wide via `--obs`.
    pub fn with_recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self
    }

    /// Builds the [`System`].
    ///
    /// # Panics
    ///
    /// Panics if no energy world was chosen.
    pub fn build(self) -> System {
        let world = match self.world {
            Some(WorldSpec::Harvester(h)) => World::Harvester(h),
            Some(WorldSpec::Rfid { distance_m }) => {
                let mut field = RfField::paper_setup();
                field.set_distance(distance_m);
                let mut channel = Channel::new(self.seed);
                channel.set_distance(distance_m);
                World::Rfid {
                    field,
                    reader: Reader::new(self.reader_config),
                    channel,
                    inflight: Vec::new(),
                }
            }
            None => panic!("SystemBuilder: choose an energy world (.harvester(..) or .rfid(..))"),
        };
        let channel_fault = self.channel_fault;
        let edb_config = self.edb_config;
        let recorder = match self.recorder {
            Some(config) => Some(Box::new(Recorder::new(config))),
            None => edb_obs::ambient::config().map(|config| {
                let mut rec = Recorder::new(config);
                rec.mark_ambient();
                Box::new(rec)
            }),
        };
        let mut device = Device::new(self.device_config);
        let ckpt = self.ckpt.map(|config| {
            let mut engine = CkptEngine::new(config);
            engine.attach(device.mem_mut());
            engine
        });
        System {
            device,
            edb: self.edb.then(|| {
                let mut edb = Edb::new(edb_config);
                edb.set_channel_fault(channel_fault);
                edb
            }),
            world,
            symbols: Default::default(),
            recorder,
            obs: ObsState::default(),
            ckpt,
        }
    }
}

/// The complete bench: device, debugger, energy environment.
#[derive(Debug)]
pub struct System {
    device: Device,
    edb: Option<Edb>,
    world: World,
    symbols: std::collections::BTreeMap<String, u16>,
    recorder: Option<Box<Recorder>>,
    obs: ObsState,
    ckpt: Option<CkptEngine>,
}

/// Bookkeeping the observability publisher keeps between steps.
#[derive(Debug, Default, Serialize, Deserialize)]
struct ObsState {
    /// How much of the debugger's event log has been harvested.
    log_cursor: usize,
    /// `Device::total_instructions` at the last turn-on, for the
    /// instructions-per-power-cycle histogram.
    cycle_base_instructions: u64,
    /// Wire retries observed inside the currently open session.
    session_retries: u64,
    /// Level saved at the last guard entry, volts.
    guard_saved_v: Option<f64>,
    /// Power state at the last publish, for the quiet fast path and the
    /// `powered` digital line.
    last_powered: Option<bool>,
    /// Session state at the last publish, likewise.
    last_session: Option<bool>,
}

// Observation-only histogram bucket edges (documented in DESIGN.md §9).
// Bounds live at the observation site: the registry creates a histogram
// on first use, and merge asserts all shapes agree.
const INSTR_PER_CYCLE_BOUNDS: &[f64] = &[100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];
const RETRIES_PER_SESSION_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 5.0, 10.0];
const GUARD_PCT_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 25.0];
const VCAP_BOUNDS: &[f64] = &[1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0];

/// The `dt` hint passed to the debugger's electrical model each quantum
/// (charge-delivered bookkeeping only; the capacitor uses exact per-
/// quantum `dt`s).
const DT_GUESS: f64 = 1e-6;

impl System {
    /// Starts a [`SystemBuilder`] around a target with the given
    /// configuration.
    pub fn builder(device_config: DeviceConfig) -> SystemBuilder {
        SystemBuilder::new(device_config)
    }

    /// Detaches the debugger entirely — the control condition for
    /// energy-interference experiments.
    pub fn detach_edb(&mut self) -> Option<Edb> {
        self.edb.take()
    }

    /// Attaches (or replaces) the debugger.
    pub fn attach_edb(&mut self, edb: Edb) {
        self.edb = Some(edb);
    }

    /// Flashes an image and informs the debugger of its symbols.
    pub fn flash(&mut self, image: &edb_mcu::Image) {
        self.device.flash(image);
        self.symbols = image.symbols().map(|(n, a)| (n.to_string(), a)).collect();
        if let Some(edb) = &mut self.edb {
            edb.attach(image);
        }
    }

    /// Resolves a symbol from the flashed image.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// All flashed-image symbols, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u16)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable target access (test fixtures, ground-truth checks).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The debugger, if attached.
    pub fn edb(&self) -> Option<&Edb> {
        self.edb.as_ref()
    }

    /// The host-side checkpoint engine, if one was attached with
    /// [`SystemBuilder::with_checkpoint_strategy`].
    pub fn ckpt(&self) -> Option<&CkptEngine> {
        self.ckpt.as_ref()
    }

    /// Mutable debugger access.
    ///
    /// # Panics
    ///
    /// Panics if the debugger has been detached.
    pub fn edb_mut(&mut self) -> &mut Edb {
        self.edb.as_mut().expect("EDB not attached")
    }

    /// Simultaneous mutable access to the debugger and the device, for
    /// operations (like breakpoint-mask sync) that touch both ends of
    /// the header.
    pub fn edb_and_device(&mut self) -> Option<(&mut Edb, &mut Device)> {
        match &mut self.edb {
            Some(edb) => Some((edb, &mut self.device)),
            None => None,
        }
    }

    /// The RFID reader, when the world has one.
    pub fn reader(&self) -> Option<&Reader> {
        match &self.world {
            World::Rfid { reader, .. } => Some(reader),
            World::Harvester(_) => None,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.device.now()
    }

    /// Line states for the leakage model, derived from observable device
    /// state.
    fn line_states(&self) -> LineStates {
        let now = self.device.now();
        LineStates {
            uart_tx_high: self.device.peripherals.uart.busy(now),
            rf_tx_high: self.device.peripherals.rf.current(now) > 0.0,
            i2c_scl_high: self.device.peripherals.accel.busy(),
            i2c_sda_high: self.device.peripherals.accel.busy(),
            ..LineStates::default()
        }
    }

    /// Advances the bench by one device step.
    pub fn step(&mut self) -> DeviceStep {
        let now = self.device.now();

        // RF world bookkeeping before the step.
        if let World::Rfid {
            field,
            reader,
            channel,
            inflight,
        } = &mut self.world
        {
            while let Some(ev) = reader.poll(now) {
                let frame = channel.transmit(ev.frame);
                inflight.push((ev.end, frame.bytes));
            }
            field.set_modulating(reader.modulating(now));
            // Deliver frames whose air time has completed.
            let mut idx = 0;
            while idx < inflight.len() {
                if inflight[idx].0 <= now {
                    let (at, bytes) = inflight.remove(idx);
                    if self.device.powered() {
                        for &b in &bytes {
                            self.device.peripherals.rf.deliver_byte(b);
                        }
                    }
                    if let Some(edb) = &mut self.edb {
                        edb.observe_rfid(&bytes, true, at);
                    }
                } else {
                    idx += 1;
                }
            }
        }

        // Electrical influence of the debugger.
        let states = self.line_states();
        let i_ext = match &mut self.edb {
            Some(edb) => edb.electrical_current(self.device.v_cap(), states, DT_GUESS),
            None => 0.0,
        };

        let step = match &mut self.world {
            World::Harvester(h) => self.device.step(h.as_mut(), i_ext),
            World::Rfid { field, .. } => self.device.step(field, i_ext),
        };
        let now = self.device.now();

        // Uplink RF frames.
        for event in &step.events {
            if let DeviceEvent::RfTx(frame) = event {
                if let World::Rfid {
                    reader, channel, ..
                } = &mut self.world
                {
                    let out = channel.transmit(edb_rfid::Frame {
                        bytes: frame.bytes.clone(),
                        downlink: false,
                    });
                    reader.on_reply(&out.bytes);
                }
                if let Some(edb) = &mut self.edb {
                    edb.observe_rfid(&frame.bytes, false, frame.at);
                }
            }
        }

        if let Some(edb) = &mut self.edb {
            edb.observe(&self.device, &step.events, now);
            if let Some(edge) = step.power_edge {
                edb.observe_power_edge(&mut self.device, edge, now);
            }
            edb.tick(&mut self.device, now);
        }

        if let Some(engine) = &mut self.ckpt {
            engine.observe(&mut self.device, step.power_edge);
        }

        self.publish_obs(&step.events, step.power_edge);

        step
    }

    /// Advances the bench by one *span*: a batch of device quanta that is
    /// bit-identical to calling [`System::step`] in a loop, but skips the
    /// per-step debugger calls that are provably no-ops in between.
    ///
    /// The span deadline is the earliest of `limit`, the debugger's next
    /// wakeup ([`Edb::next_wakeup`] — before it, `Edb::tick` returns
    /// without touching anything), and the device's next silent
    /// peripheral deadline ([`Device::next_silent_deadline`] — before
    /// it, the load model and line states are constant). The device
    /// additionally breaks the span on any port access, wire event,
    /// power edge, or CPU state change, so `Edb::observe` (a no-op on
    /// empty event lists) and the line-state/drain model see every
    /// change exactly when the per-step loop would.
    ///
    /// The RFID world polls the reader each step, so it falls back to
    /// [`System::step`].
    fn advance_span(&mut self, limit: SimTime) {
        let now = self.device.now();
        let mut deadline = limit;
        if let Some(edb) = &self.edb {
            deadline = deadline.min(edb.next_wakeup());
        }
        if let Some(t) = self.device.next_silent_deadline() {
            deadline = deadline.min(t);
        }
        // The recorder's profiler wants a boundary at its sampling
        // cadence. `run_span` is bit-identical to stepping for *any*
        // deadline, so this cap observes more often without changing the
        // simulation. A deadline in the past falls through to the
        // single-step path below, which publishes and moves it forward.
        if let Some(rec) = &self.recorder {
            if let Some(t) = rec.next_deadline() {
                deadline = deadline.min(t);
            }
        }
        // The checkpoint engine wants its per-step hook (instruction
        // triggers, voltage samples, edges), so an attached engine
        // forces the stepped path.
        if matches!(self.world, World::Rfid { .. }) || self.ckpt.is_some() || deadline <= now {
            // No batchable window (e.g. a debugger wakeup due right
            // now): take a single plain step, which handles it.
            self.step();
            return;
        }

        let states = self.line_states();
        let System {
            device, edb, world, ..
        } = self;
        let drain = edb.as_mut().map(|e| e.drain_for(states));
        let mut i_ext = |v: f64| match (edb.as_mut(), drain) {
            (Some(e), Some(d)) => e.electrical_current_with_drain(v, d, DT_GUESS),
            _ => 0.0,
        };
        let span = match world {
            World::Harvester(h) => device.run_span(h.as_mut(), &mut i_ext, deadline),
            World::Rfid { .. } => unreachable!("RFID handled above"),
        };
        let now = self.device.now();

        // Identical post-step observation flow: events only occur on the
        // span's final quantum, so timestamps match the per-step loop.
        for event in &span.events {
            if let DeviceEvent::RfTx(frame) = event {
                if let Some(edb) = &mut self.edb {
                    edb.observe_rfid(&frame.bytes, false, frame.at);
                }
            }
        }
        if let Some(edb) = &mut self.edb {
            edb.observe(&self.device, &span.events, now);
            if let Some(edge) = span.power_edge {
                edb.observe_power_edge(&mut self.device, edge, now);
            }
            edb.tick(&mut self.device, now);
        }

        self.publish_obs(&span.events, span.power_edge);
    }

    /// Runs the bench for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimTime) {
        let end = self.device.now() + duration;
        while self.device.now() < end {
            self.advance_span(end);
        }
    }

    /// Runs until `pred` holds or `timeout` elapses; returns whether the
    /// predicate fired.
    ///
    /// The predicate is re-evaluated after every device step (it may
    /// watch arbitrary ground-truth state, e.g. a memory word the target
    /// writes), so this is the per-instruction path. Blocking console
    /// operations whose predicates only change on debugger ticks use the
    /// batched `System::run_until_edb` internally.
    pub fn run_until(&mut self, timeout: SimTime, mut pred: impl FnMut(&System) -> bool) -> bool {
        let end = self.device.now() + timeout;
        while self.device.now() < end {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    /// Like [`System::run_until`] but advancing span-at-a-time, for
    /// predicates that only depend on state the debugger mutates in
    /// `tick`/`observe` (session flags, level-op completion, replies).
    /// Those calls happen exactly at span boundaries, so checking there
    /// sees every transition the per-step loop would.
    fn run_until_edb(&mut self, timeout: SimTime, pred: impl Fn(&System) -> bool) -> bool {
        let end = self.device.now() + timeout;
        while self.device.now() < end {
            if pred(self) {
                return true;
            }
            self.advance_span(end);
        }
        pred(self)
    }

    // ---------------------------------------------------------------
    // Blocking console-style operations
    // ---------------------------------------------------------------

    /// Charges the target to `volts` and waits for convergence.
    pub fn try_charge_to(&mut self, volts: f64) -> Result<f64, EdbError> {
        if self.edb.is_none() {
            return Err(EdbError::NotAttached { op: "charge" });
        }
        let now = self.now();
        self.edb_mut().start_charge(volts, now);
        let ok = self.run_until_edb(SimTime::from_secs(2), |s| {
            s.edb().is_some_and(|e| e.level_op_done())
        });
        if ok {
            Ok(self.device.v_cap())
        } else {
            Err(EdbError::LevelNotReached { target_v: volts })
        }
    }

    /// Discharges the target to `volts` and waits for convergence.
    pub fn try_discharge_to(&mut self, volts: f64) -> Result<f64, EdbError> {
        if self.edb.is_none() {
            return Err(EdbError::NotAttached { op: "discharge" });
        }
        let now = self.now();
        self.edb_mut().start_discharge(volts, now);
        let ok = self.run_until_edb(SimTime::from_secs(2), |s| {
            s.edb().is_some_and(|e| e.level_op_done())
        });
        if ok {
            Ok(self.device.v_cap())
        } else {
            Err(EdbError::LevelNotReached { target_v: volts })
        }
    }

    /// Charges the target to `volts` and waits for convergence.
    /// Returns the ground-truth voltage afterwards.
    ///
    /// # Panics
    ///
    /// Panics if EDB is detached or convergence times out — use
    /// [`System::try_charge_to`] for a typed error instead.
    pub fn charge_to(&mut self, volts: f64) -> f64 {
        match self.try_charge_to(volts) {
            Ok(v) => v,
            Err(e) => panic!("charge to {volts} V: {e}"),
        }
    }

    /// Discharges the target to `volts` and waits for convergence.
    ///
    /// # Panics
    ///
    /// Panics if EDB is detached or convergence times out — use
    /// [`System::try_discharge_to`] for a typed error instead.
    pub fn discharge_to(&mut self, volts: f64) -> f64 {
        match self.try_discharge_to(volts) {
            Ok(v) => v,
            Err(e) => panic!("discharge to {volts} V: {e}"),
        }
    }

    /// Waits for an interactive session to open (assert, breakpoint, or
    /// energy breakpoint), up to `timeout`.
    pub fn wait_for_session(&mut self, timeout: SimTime) -> bool {
        self.run_until_edb(timeout, |s| s.edb().is_some_and(|e| e.session_active()))
    }

    /// One complete typed exchange: submit the request, then drive the
    /// bench until the debugger's state machine reports a typed response
    /// or a typed abort. The harness deadline generously covers the
    /// state machine's own retry budget plus a brown-out recovery
    /// window, so in practice the typed outcome always arrives first.
    ///
    /// This is the blocking convenience over [`Edb::submit`] /
    /// [`Edb::poll`]; callers that interleave their own stepping (the
    /// fuzz session engine, the serve scheduler) drive the non-blocking
    /// pair directly.
    pub fn perform(&mut self, request: DebugRequest) -> Result<DebugResponse, EdbError> {
        let op = request.name();
        let Some(edb) = self.edb.as_ref() else {
            return Err(EdbError::NotAttached { op });
        };
        if !edb.session_active() {
            return Err(EdbError::NoSession { op });
        }
        let config = edb.config();
        let now = self.now();
        let id = {
            let System { edb, device, .. } = self;
            edb.as_mut().expect("attached").submit(device, request, now)
        };
        let budget = config.cmd_timeout.as_ns() * (u64::from(config.cmd_retries) + 2);
        let deadline = now + SimTime::from_ns(budget) + SimTime::from_ms(50);
        while self.now() < deadline {
            match self.edb_mut().poll(id) {
                SessionPoll::Ready(outcome) => return outcome,
                SessionPoll::Superseded => {
                    return Err(EdbError::Busy { cmd: op });
                }
                SessionPoll::Pending { .. } => {}
            }
            self.advance_span(deadline);
        }
        match self.edb_mut().poll(id) {
            SessionPoll::Ready(outcome) => outcome,
            SessionPoll::Superseded => Err(EdbError::Busy { cmd: op }),
            SessionPoll::Pending { .. } => {
                let attempts = self.edb_mut().cancel_command();
                Err(EdbError::CommandTimeout { cmd: op, attempts })
            }
        }
    }

    /// Reads a word of target memory through the live debug protocol.
    /// Requires an active session (the target must be in its service
    /// loop).
    pub fn read_word(&mut self, addr: u16) -> Result<u16, EdbError> {
        match self.perform(DebugRequest::ReadWord { addr })? {
            DebugResponse::Word { value } => Ok(value),
            other => Err(EdbError::CorruptReply {
                cmd: "READ",
                detail: format!("mismatched response {other:?}"),
            }),
        }
    }

    /// Writes a word of target memory through the live debug protocol
    /// and waits for the target's acknowledge.
    pub fn write_word(&mut self, addr: u16, value: u16) -> Result<(), EdbError> {
        match self.perform(DebugRequest::WriteWord { addr, value })? {
            DebugResponse::WriteAck => Ok(()),
            other => Err(EdbError::CorruptReply {
                cmd: "WRITE",
                detail: format!("mismatched response {other:?}"),
            }),
        }
    }

    /// Asks the target where execution will resume, through the live
    /// debug protocol. Requires an active session.
    pub fn resume_pc(&mut self) -> Result<u16, EdbError> {
        match self.perform(DebugRequest::GetPc)? {
            DebugResponse::Pc { pc } => Ok(pc),
            other => Err(EdbError::CorruptReply {
                cmd: "GET_PC",
                detail: format!("mismatched response {other:?}"),
            }),
        }
    }

    /// Resumes the target from a session: restore energy, release the
    /// service loop, wait for the session to close.
    pub fn try_resume(&mut self) -> Result<(), EdbError> {
        let Some(edb) = self.edb.as_ref() else {
            return Err(EdbError::NotAttached { op: "resume" });
        };
        if !edb.session_active() {
            return Err(EdbError::NoSession { op: "resume" });
        }
        let now = self.now();
        self.edb_mut().resume(now);
        let ok = self.run_until_edb(SimTime::from_secs(1), |s| {
            s.edb().is_some_and(|e| !e.session_active())
        });
        if ok {
            Ok(())
        } else {
            Err(EdbError::SessionDidNotClose)
        }
    }

    /// Resumes the target from a session, tolerating "nothing to resume"
    /// (no debugger, no session).
    ///
    /// # Panics
    ///
    /// Panics if a session exists but does not close — use
    /// [`System::try_resume`] for a typed error instead.
    pub fn resume(&mut self) {
        match self.try_resume() {
            Ok(()) | Err(EdbError::NotAttached { .. } | EdbError::NoSession { .. }) => {}
            Err(e) => panic!("resume: {e}"),
        }
    }

    // ---------------------------------------------------------------
    // Snapshots (the record/replay layer's substrate)
    // ---------------------------------------------------------------

    /// Whether this bench supports full-state snapshots.
    ///
    /// Harvester worlds do: the device, debugger, and harvester all
    /// serialize completely. RFID worlds don't — the reader/channel
    /// stack keeps state the snapshot layer does not capture — so
    /// recordings of RFID benches carry state *digests* only and replay
    /// by re-execution from the start.
    pub fn supports_snapshots(&self) -> bool {
        matches!(self.world, World::Harvester(_))
    }

    /// Serializes the complete simulation state: device (CPU, memory,
    /// capacitor, peripherals), debugger, harvester, symbols, and the
    /// observability cursor. Restoring the result with
    /// [`System::restore_state`] and stepping forward is bit-identical
    /// to never having snapshotted (proven by test).
    ///
    /// Returns `None` for benches where
    /// [`System::supports_snapshots`] is false. The recorder is *not*
    /// part of the snapshot: recording is passive by construction, so
    /// replay re-observes rather than restoring observations.
    pub fn save_state(&self) -> Option<Value> {
        let World::Harvester(h) = &self.world else {
            return None;
        };
        let mut fields = vec![
            (Value::Str("device".into()), self.device.to_value()),
            (Value::Str("edb".into()), self.edb.to_value()),
            (Value::Str("symbols".into()), self.symbols.to_value()),
            (Value::Str("obs".into()), self.obs.to_value()),
            (Value::Str("world".into()), h.save_state()),
        ];
        // Benches without an engine keep the historical byte layout.
        if let Some(engine) = &self.ckpt {
            fields.push((Value::Str("ckpt".into()), engine.to_value()));
        }
        Some(Value::Map(fields))
    }

    /// Restores state captured by [`System::save_state`] onto this bench.
    /// The bench must have been built with the same world shape (a
    /// harvester world); the harvester's own parameters are rebuilt by
    /// the caller (see the replay layer's session spec) and only its
    /// mutable run state is loaded here.
    pub fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let World::Harvester(h) = &mut self.world else {
            return Err(DeError::new(
                "RFID benches do not support snapshot restore (digest-only replay)",
            ));
        };
        let field = |name: &str| {
            state
                .get_field(name)
                .ok_or_else(|| DeError::new(format!("System state missing `{name}`")))
        };
        self.device = Device::from_value(field("device")?)?;
        self.edb = <Option<Edb>>::from_value(field("edb")?)?;
        self.symbols = <std::collections::BTreeMap<String, u16>>::from_value(field("symbols")?)?;
        self.obs = ObsState::from_value(field("obs")?)?;
        h.load_state(field("world")?)?;
        self.ckpt = match state.get_field("ckpt") {
            Some(v) => Some(CkptEngine::from_value(v)?),
            None => None,
        };
        Ok(())
    }

    /// A deterministic 64-bit digest of the architectural state: the
    /// device (CPU registers, memory image, capacitor bits, clock) and
    /// the debugger. Computable for *every* world — RFID benches, whose
    /// recordings are digest-only, verify replay equivalence through
    /// this value.
    pub fn state_digest(&self) -> u64 {
        edb_replay::value_digest(&Value::Map(vec![
            (Value::Str("device".into()), self.device.to_value()),
            (Value::Str("edb".into()), self.edb.to_value()),
        ]))
    }

    // ---------------------------------------------------------------
    // Observability
    // ---------------------------------------------------------------

    /// The attached observability recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// Detaches the recorder with its whole-run counters finalized from
    /// ground-truth device state — call this at the end of a run to
    /// export traces and profiles.
    pub fn take_recorder(&mut self) -> Option<Box<Recorder>> {
        self.finalize_recorder();
        self.recorder.take()
    }

    /// Writes run totals that are cheaper read off simulation state at
    /// teardown than accumulated step by step.
    fn finalize_recorder(&mut self) {
        let Some(rec) = self.recorder.as_deref_mut() else {
            return;
        };
        rec.metrics.set("power_cycles", self.device.reboots());
        rec.metrics.set("turn_ons", self.device.turn_ons());
        rec.metrics
            .set("instructions", self.device.total_instructions());
        let (hits, misses) = self.device.mem().decode_cache_stats();
        rec.metrics.set("decode_cache_hits", hits);
        rec.metrics.set("decode_cache_misses", misses);
    }

    /// Publishes one step's (or span's) worth of observations into the
    /// attached recorder. Read-only with respect to the simulation:
    /// everything here is ground truth the step already produced, so a
    /// detached recorder and an attached one run bit-identical benches.
    ///
    /// Quiet fast path: nothing happened this step and no periodic
    /// sampler is due — skip all observation work. This is what keeps an
    /// attached recorder within a few percent of a detached one on the
    /// hot loop: the common step publishes nothing. Ordered cheapest
    /// check first so `&&` short-circuits before touching the debugger.
    #[inline]
    fn publish_obs(&mut self, events: &[DeviceEvent], power_edge: Option<PowerEdge>) {
        let System {
            device,
            edb,
            recorder,
            obs,
            ..
        } = self;
        let Some(rec) = recorder.as_deref_mut() else {
            return;
        };
        let powered = device.powered();
        if events.is_empty()
            && power_edge.is_none()
            && obs.last_powered == Some(powered)
            && !rec.sample_due(device.now())
            && edb.as_ref().map_or(0, |e| e.log().events().len()) == obs.log_cursor
            && obs.last_session == Some(edb.as_ref().is_some_and(|e| e.session_active()))
        {
            return;
        }
        publish_obs_slow(device, edb.as_ref(), rec, obs, events, power_edge);
    }
}

/// The non-quiet half of [`System::publish_obs`]: samples, lines, ring
/// events, and debugger-log harvesting. Out of line so the quiet check
/// inlines into the step loop without this body.
fn publish_obs_slow(
    device: &Device,
    edb: Option<&Edb>,
    rec: &mut Recorder,
    obs: &mut ObsState,
    events: &[DeviceEvent],
    power_edge: Option<PowerEdge>,
) {
    {
        let now = device.now();
        let powered = device.powered();
        let session = edb.is_some_and(|e| e.session_active());
        obs.last_powered = Some(powered);
        obs.last_session = Some(session);
        let v_cap = device.v_cap();

        // Energy: the ground-truth capacitor voltage — never EDB's ADC,
        // which draws measurement noise from the RNG. Offered only on
        // non-quiet steps; the trace decimates internally.
        rec.energy_sample(now, v_cap);

        // CPU: PC/energy correlation at the profiler's cadence. While
        // unpowered there is no PC to sample; the deadline still
        // advances so the fast path re-arms.
        if powered {
            if rec.pc_sample(now, device.cpu().pc, v_cap) {
                rec.metrics.observe("vcap_volts", VCAP_BOUNDS, v_cap);
            }
        } else {
            rec.profiler_catch_up(now);
        }

        // Device: peripheral activity, power cycles, digital lines.
        if rec.enabled(Category::Device) {
            rec.line_mut("powered", 1).record(now, u64::from(powered));
            for event in events {
                match event {
                    DeviceEvent::GpioChange { old, new } => {
                        rec.line_mut("gpio", 16).record(now, u64::from(*new));
                        rec.instant(
                            Category::Device,
                            now,
                            format!("gpio {old:#06x} -> {new:#06x}"),
                        );
                    }
                    DeviceEvent::CodeMarker { id } => {
                        rec.instant(Category::Device, now, format!("marker {id}"));
                    }
                    DeviceEvent::DebugSignal { value } => {
                        rec.line_mut("debug_signal", 1)
                            .record(now, u64::from(*value != 0));
                    }
                    DeviceEvent::UartByte { byte } => {
                        rec.metrics.incr("uart_bytes", 1);
                        rec.instant(Category::Device, now, format!("uart {byte:#04x}"));
                    }
                    DeviceEvent::I2c(_) => {
                        rec.instant(Category::Device, now, "i2c");
                    }
                    DeviceEvent::CpuFault(fault) => {
                        rec.instant(Category::Device, now, format!("fault: {fault}"));
                    }
                    // Debug-UART traffic surfaces as Core events via the
                    // debugger's log; ADC self-samples are internal.
                    DeviceEvent::DbgUartByte { .. } | DeviceEvent::AdcSelfSample { .. } => {}
                    DeviceEvent::RfTx(_) => {} // Rfid category, below
                }
            }
            match power_edge {
                Some(PowerEdge::TurnOn) => {
                    rec.instant(Category::Device, now, "turn-on");
                    obs.cycle_base_instructions = device.total_instructions();
                }
                Some(PowerEdge::BrownOut) => {
                    rec.instant(Category::Device, now, "brown-out");
                    let ran = device
                        .total_instructions()
                        .saturating_sub(obs.cycle_base_instructions);
                    rec.metrics.observe(
                        "instructions_per_power_cycle",
                        INSTR_PER_CYCLE_BOUNDS,
                        ran as f64,
                    );
                }
                None => {}
            }
        }

        // RFID: the tag's own backscatter (reader-side frames arrive via
        // the debugger's log below).
        if rec.enabled(Category::Rfid) {
            for event in events {
                if let DeviceEvent::RfTx(frame) = event {
                    rec.instant(
                        Category::Rfid,
                        frame.at,
                        format!("backscatter {} B", frame.bytes.len()),
                    );
                }
            }
        }

        // Core / RFID: harvest debugger log entries appended since the
        // last publish.
        if let Some(edb) = edb.as_ref() {
            let log = edb.log().events();
            if obs.log_cursor > log.len() {
                obs.log_cursor = 0; // the log was cleared; start over
            }
            for entry in &log[obs.log_cursor..] {
                obs_log_entry(rec, obs, entry);
            }
            obs.log_cursor = log.len();
            if rec.enabled(Category::Core) {
                rec.line_mut("session", 1).record(now, u64::from(session));
            }
        }
    }
}

/// Publishes one debugger-log entry into the recorder (Core track, or
/// Rfid for reader/tag frames) and folds it into the metrics registry.
fn obs_log_entry(rec: &mut Recorder, obs: &mut ObsState, entry: &LoggedEvent) {
    match &entry.event {
        // The raw ADC stream is high-volume and the ground-truth voltage
        // is already traced under Energy; skip it.
        DebugEvent::EnergySample { .. } => {}
        DebugEvent::Rfid { .. } => {
            if rec.enabled(Category::Rfid) {
                rec.metrics.incr("rfid_frames", 1);
                rec.instant(Category::Rfid, entry.at, entry.event.label());
            }
        }
        other => {
            if !rec.enabled(Category::Core) {
                return;
            }
            match other {
                DebugEvent::SessionOpened { .. } => {
                    rec.metrics.incr("sessions", 1);
                    obs.session_retries = 0;
                    rec.begin(Category::Core, entry.at, "session");
                }
                DebugEvent::SessionClosed { .. } | DebugEvent::SessionAborted { .. } => {
                    rec.metrics.observe(
                        "retries_per_session",
                        RETRIES_PER_SESSION_BOUNDS,
                        obs.session_retries as f64,
                    );
                    obs.session_retries = 0;
                    rec.end(Category::Core, entry.at, "session");
                }
                DebugEvent::CommandRetry { .. } => {
                    rec.metrics.incr("wire_retries", 1);
                    obs.session_retries += 1;
                    rec.instant(Category::Core, entry.at, other.label());
                }
                DebugEvent::GuardEnter { saved_v } => {
                    obs.guard_saved_v = Some(*saved_v);
                    rec.begin(Category::Core, entry.at, "guard");
                }
                DebugEvent::GuardExit { restored_v } => {
                    if let Some(saved) = obs.guard_saved_v.take() {
                        rec.metrics.observe(
                            "energy_per_guard_pct",
                            GUARD_PCT_BOUNDS,
                            edb_energy::budget::delta_e_percent(saved, *restored_v).abs(),
                        );
                    }
                    rec.end(Category::Core, entry.at, "guard");
                }
                DebugEvent::Printf { .. } => {
                    rec.metrics.incr("printf_lines", 1);
                    rec.instant(Category::Core, entry.at, other.label());
                }
                _ => {
                    rec.instant(Category::Core, entry.at, other.label());
                }
            }
        }
    }
}

impl Drop for System {
    /// Ambient-attached recorders flush their metrics into the global
    /// registry when the bench tears down, so `--obs` runs aggregate
    /// every system any experiment built. (Explicit recorders are
    /// retrieved with [`System::take_recorder`] instead.)
    fn drop(&mut self) {
        let is_ambient = self.recorder.as_deref().is_some_and(Recorder::is_ambient);
        if is_ambient {
            self.finalize_recorder();
            if let Some(rec) = self.recorder.take() {
                edb_obs::ambient::flush(&rec.metrics);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libedb;
    use edb_mcu::asm::assemble;

    fn flashed_system(app: &str) -> System {
        let image = assemble(&libedb::wrap_program(app)).expect("assembles");
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
            .build();
        sys.flash(&image);
        sys
    }

    #[test]
    fn charge_command_boots_the_target() {
        let mut sys = flashed_system(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
            loop:
                add r0, 1
                jmp loop
            .org 0xFFFE
            .word main
            "#,
        );
        let v = sys.charge_to(2.45);
        assert!(v >= 2.4, "charged to {v}");
        assert!(sys.device().powered());
    }

    #[test]
    fn discharge_command_lowers_level() {
        let mut sys = flashed_system(
            r#"
            .org 0x4400
            main: halt
            .org 0xFFFE
            .word main
            "#,
        );
        sys.charge_to(2.45);
        let v = sys.discharge_to(2.0);
        assert!((1.9..2.1).contains(&v), "discharged to {v}");
    }

    #[test]
    fn assert_failure_opens_keep_alive_session() {
        // Program asserts immediately: r0 != r1 → assert fail id 3.
        let mut sys = flashed_system(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r0, 1
                movi r1, 2
                cmp  r0, r1
                jz   ok
                movi r0, 3
                call __edb_assert_fail
            ok: halt
            .org 0xFFFE
            .word main
            "#,
        );
        sys.charge_to(2.45);
        assert!(
            sys.wait_for_session(SimTime::from_ms(100)),
            "assert must open a session"
        );
        // Keep-alive: voltage is pulled up toward tether level and the
        // device never browns out.
        sys.run_for(SimTime::from_ms(50));
        assert!(
            sys.device().v_cap() > 2.6,
            "tethered: {}",
            sys.device().v_cap()
        );
        assert_eq!(sys.device().reboots(), 0);
        assert_eq!(sys.edb().unwrap().log().with_tag("assert").count(), 1);
    }

    #[test]
    fn interactive_memory_read_and_write() {
        let mut sys = flashed_system(
            r#"
            .equ MAGIC, 0x6000
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r1, MAGIC
                movi r0, 0x5AFE
                st   [r1], r0
                movi r0, 7
                call __edb_assert_fail
                halt
            .org 0xFFFE
            .word main
            "#,
        );
        sys.charge_to(2.45);
        assert!(sys.wait_for_session(SimTime::from_ms(100)));
        let value = sys.read_word(0x6000).expect("read completes");
        assert_eq!(value, 0x5AFE);
        sys.write_word(0x6002, 0xD00D).expect("write acknowledged");
        assert_eq!(sys.read_word(0x6002), Ok(0xD00D));
        // Ground truth agrees.
        assert_eq!(sys.device().mem().peek_word(0x6002), 0xD00D);
    }

    #[test]
    fn energy_guard_compensates_cost() {
        // The guarded region burns a lot of cycles; the level after the
        // guard must be close to the level before it.
        let mut sys = flashed_system(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                call __edb_guard_begin
                movi r1, 6000
            burn:
                sub  r1, 1
                jnz  burn
                call __edb_guard_end
                movi r2, 0x6000
                movi r3, 0xCAFE
                st   [r2], r3        ; marker: got past the guard
            spin:
                jmp  spin
            .org 0xFFFE
            .word main
            "#,
        );
        sys.charge_to(2.45);
        let ok = sys.run_until(SimTime::from_ms(400), |s| {
            s.device().mem().peek_word(0x6000) == 0xCAFE
        });
        assert!(ok, "target must complete the guarded region");
        let log = sys.edb().unwrap().log();
        let enter = log
            .with_tag("guard-enter")
            .next()
            .expect("guard entry logged");
        let exit = log
            .with_tag("guard-exit")
            .next()
            .expect("guard exit logged");
        let (saved, restored) = match (&enter.event, &exit.event) {
            (
                crate::events::DebugEvent::GuardEnter { saved_v },
                crate::events::DebugEvent::GuardExit { restored_v },
            ) => (*saved_v, *restored_v),
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            (restored - saved).abs() < 0.08,
            "restore error too large: saved {saved}, restored {restored}"
        );
    }

    #[test]
    fn detached_edb_means_zero_influence() {
        let mut sys = flashed_system(
            r#"
            .org 0x4400
            main:
                add r0, 1
                jmp main
            .org 0xFFFE
            .word main
            "#,
        );
        sys.detach_edb();
        sys.run_for(SimTime::from_ms(100));
        assert!(sys.device().turn_ons() > 0, "device runs without EDB");
    }

    #[test]
    fn rfid_world_powers_the_device() {
        let image = assemble(&libedb::wrap_program(
            r#"
            .org 0x4400
            main:
                add r0, 1
                jmp main
            .org 0xFFFE
            .word main
            "#,
        ))
        .expect("assembles");
        let mut sys = System::builder(DeviceConfig::wisp5())
            .rfid(1.0)
            .seed(42)
            .build();
        sys.flash(&image);
        sys.run_for(SimTime::from_ms(300));
        assert!(sys.device().turn_ons() > 0, "RF field must boot the tag");
        let edb = sys.edb().unwrap();
        let downlink = edb
            .log()
            .with_tag("rfid")
            .filter(|e| {
                matches!(
                    e.event,
                    crate::events::DebugEvent::Rfid { downlink: true, .. }
                )
            })
            .count();
        assert!(
            downlink >= 4,
            "EDB must see reader commands, saw {downlink}"
        );
        assert!(sys.reader().unwrap().commands_sent() >= 4);
    }

    #[test]
    fn recorder_does_not_perturb_the_simulation() {
        // The whole contract of edb-obs in one assertion: an attached
        // recorder observes everything and changes nothing.
        let app = r#"
            .org 0x4400
            main:
                movi sp, 0x2400
            loop:
                add  r0, 1
                movi r1, 1
                out  0x02, r1      ; code marker
                jmp  loop
            .org 0xFFFE
            .word main
        "#;
        let end = SimTime::from_ms(250);

        let mut plain = flashed_system(app);
        plain.run_for(end);

        let image = assemble(&libedb::wrap_program(app)).expect("assembles");
        let mut traced = System::builder(DeviceConfig::wisp5())
            .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
            .with_recorder(edb_obs::RecorderConfig::default())
            .build();
        traced.flash(&image);
        traced.run_for(end);

        assert_eq!(
            plain.device().v_cap().to_bits(),
            traced.device().v_cap().to_bits(),
            "recording must not move a single bit of simulation state"
        );
        assert_eq!(plain.now(), traced.now());
        assert_eq!(
            plain.device().total_instructions(),
            traced.device().total_instructions()
        );
        assert_eq!(plain.device().reboots(), traced.device().reboots());
        assert_eq!(
            plain.edb().unwrap().log().len(),
            traced.edb().unwrap().log().len()
        );

        let rec = traced.take_recorder().expect("recorder attached");
        assert!(!rec.is_ambient(), "explicitly attached");
        assert!(!rec.vcap().is_empty(), "energy trace recorded");
        assert!(rec.profiler().samples() > 0, "PC profile sampled");
        assert!(
            rec.events(Category::Device).count() > 0,
            "device activity recorded"
        );
        assert!(
            rec.metrics.counter("instructions") > 0,
            "finalized counters present"
        );
        assert_eq!(
            rec.metrics.counter("power_cycles"),
            plain.device().reboots(),
            "metrics agree with ground truth"
        );
        assert!(
            rec.lines().iter().any(|l| l.name() == "powered"),
            "digital lines recorded"
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // The substrate of time travel: save mid-run, restore onto a
        // fresh bench, and the two futures must agree to the last bit.
        let app = r#"
            .org 0x4400
            main:
                movi sp, 0x2400
            loop:
                add  r0, 1
                movi r1, 1
                out  0x02, r1      ; code marker
                jmp  loop
            .org 0xFFFE
            .word main
        "#;
        let mut live = flashed_system(app);
        live.run_for(SimTime::from_ms(120));
        assert!(live.device().turn_ons() >= 1, "workload must run");
        let snap = live.save_state().expect("harvester world snapshots");
        let digest_at_snap = live.state_digest();

        let mut restored = flashed_system(app);
        restored.restore_state(&snap).expect("state round-trips");
        assert_eq!(
            restored.state_digest(),
            digest_at_snap,
            "restore reproduces the digest at the snapshot point"
        );

        live.run_for(SimTime::from_ms(120));
        restored.run_for(SimTime::from_ms(120));
        assert_eq!(live.now(), restored.now());
        assert_eq!(
            live.device().v_cap().to_bits(),
            restored.device().v_cap().to_bits(),
            "restored future must match the original to the last bit"
        );
        assert_eq!(
            live.device().total_instructions(),
            restored.device().total_instructions()
        );
        assert_eq!(live.device().reboots(), restored.device().reboots());
        assert_eq!(live.state_digest(), restored.state_digest());
    }

    #[test]
    fn checkpointed_system_restores_and_snapshots_round_trip() {
        // A System with a zoo engine attached: the engine must commit
        // and restore across real brown-outs, and its state must ride
        // System::save_state so a restored bench continues bit-identically.
        let app = r#"
            .equ PROGRESS, 0x6000
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r1, PROGRESS
                ld   r0, [r1]
            loop:
                add  r0, 1
                st   [r1], r0
                jmp  loop
            .org 0xFFFE
            .word main
        "#;
        let build = || {
            let image = assemble(&libedb::wrap_program(app)).expect("assembles");
            let mut sys = System::builder(DeviceConfig::wisp5())
                .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
                .with_checkpoint_strategy(
                    CkptConfig::new(edb_runtime::ckpt::StrategyKind::Differential).interval(200),
                )
                .build();
            sys.flash(&image);
            sys
        };
        let mut live = build();
        let restored_once = live.run_until(SimTime::from_ms(2000), |s| {
            s.ckpt().expect("engine attached").stats().restores > 0
        });
        let stats = live.ckpt().unwrap().stats();
        assert!(stats.commits > 0, "engine must commit: {stats:?}");
        assert!(
            restored_once,
            "a brown-out must restore from the record: {stats:?}"
        );

        let snap = live.save_state().expect("snapshots with engine attached");
        let mut restored = build();
        restored
            .restore_state(&snap)
            .expect("ckpt state round-trips");
        assert_eq!(restored.state_digest(), live.state_digest());
        live.run_for(SimTime::from_ms(150));
        restored.run_for(SimTime::from_ms(150));
        assert_eq!(live.state_digest(), restored.state_digest());
        assert_eq!(
            live.ckpt().unwrap().stats(),
            restored.ckpt().unwrap().stats(),
            "engine statistics are part of the restored trajectory"
        );
    }

    #[test]
    fn rfid_world_is_digest_only() {
        let sys = System::builder(DeviceConfig::wisp5()).rfid(1.0).build();
        assert!(!sys.supports_snapshots());
        assert!(sys.save_state().is_none());
        let _ = sys.state_digest(); // digests still work for RFID benches
    }

    #[test]
    fn builder_covers_every_bench_configuration() {
        // The configurations the removed `System::new`/`with_rfid*`
        // wrappers used to stand up, spelled with the builder.
        let sys = System::builder(DeviceConfig::wisp5())
            .harvester(edb_energy::TheveninSource::new(3.0, 10.0))
            .build();
        assert!(sys.edb().is_some());
        assert!(sys.reader().is_none());
        let sys = System::builder(DeviceConfig::wisp5())
            .rfid(1.0)
            .seed(42)
            .build();
        assert!(sys.edb().is_some());
        assert!(sys.reader().is_some());
        let sys = System::builder(DeviceConfig::wisp5())
            .rfid(1.0)
            .reader_config(edb_rfid::ReaderConfig::paper_setup())
            .seed(42)
            .build();
        assert!(sys.reader().is_some());
    }

    #[test]
    #[should_panic(expected = "energy world")]
    fn builder_requires_an_energy_world() {
        let _ = System::builder(DeviceConfig::wisp5()).build();
    }

    #[test]
    fn batched_run_for_is_bit_identical_to_stepping() {
        // An intermittent workload with code markers and printf-style
        // debug traffic, so the span batcher crosses power edges, wire
        // events, ADC samples, and debugger ticks.
        let app = r#"
            .org 0x4400
            main:
                movi sp, 0x2400
            loop:
                add  r0, 1
                movi r1, 1
                out  0x02, r1      ; code marker
                jmp  loop
            .org 0xFFFE
            .word main
        "#;
        let end = SimTime::from_ms(250);

        let mut a = flashed_system(app);
        while a.now() < end {
            a.step();
        }

        let mut b = flashed_system(app);
        b.run_for(end);

        assert_eq!(
            a.device().v_cap().to_bits(),
            b.device().v_cap().to_bits(),
            "capacitor voltage must match to the last bit"
        );
        assert_eq!(a.now(), b.now());
        assert_eq!(
            a.device().total_instructions(),
            b.device().total_instructions()
        );
        assert_eq!(a.device().reboots(), b.device().reboots());
        assert_eq!(a.device().turn_ons(), b.device().turn_ons());
        let (ea, eb) = (a.edb().unwrap(), b.edb().unwrap());
        assert_eq!(ea.log().len(), eb.log().len(), "same debug events");
        assert_eq!(
            ea.last_reading().to_bits(),
            eb.last_reading().to_bits(),
            "same ADC sample sequence"
        );
        assert_eq!(
            ea.charge_delivered().to_bits(),
            eb.charge_delivered().to_bits()
        );
        assert!(a.device().turn_ons() >= 1, "workload must actually run");
        assert!(ea.log().len() > 10, "workload must actually log events");
    }
}
