//! `libEDB`: the target-side half of the debugger, as assembly routines
//! linked into every instrumented application.
//!
//! The real EDB ships a 1200-line C library that applications link to get
//! `ASSERT`, `BREAKPOINT`, `WATCHPOINT`, `ENERGY_GUARD_*` and `PRINTF`
//! macros (Table 1, left column). This module is its equivalent for the
//! IVM-16 target: [`library`] returns the routines as assembly text, and
//! [`wrap_program`] splices an application between the required equates
//! and the library.
//!
//! # Calling convention
//!
//! Arguments in `r0`; `r11`–`r13` are scratch registers the library may
//! clobber; everything else is preserved. The application must set up
//! `sp` before calling anything here, and must place
//! `.org 0xFFFC / .word __edb_isr` if it arms energy breakpoints.
//!
//! | routine | argument | effect |
//! |---|---|---|
//! | `__edb_watchpoint` | id in `r0` | pulse the code-marker lines |
//! | `__edb_assert_fail` | id in `r0` | signal EDB, sit in service loop |
//! | `__edb_breakpoint` | id in `r0` | if enabled in `__edb_bkpt_mask`, signal + service loop |
//! | `__edb_guard_begin` | — | request tether, spin until ack |
//! | `__edb_guard_end` | — | request restore, spin until ack clears |
//! | `__edb_printf` | NUL-string ptr in `r0` | energy-guarded line to the host console |
//! | `__edb_print_hex16` | value in `r0` | energy-guarded `xxxx\n` to the host console |
//! | `__uart_print_hex16` | value in `r0` | the same line over the *target-powered* UART (the costly conventional alternative) |
//! | `__edb_service_loop` | — | service read/write/continue commands |
//! | `__edb_isr` | — | interrupt entry for energy breakpoints |

use edb_mcu::Image;

/// FRAM address region where the library is placed.
pub const LIBEDB_ORG: u16 = 0xE000;

/// The symbol holding the target-side breakpoint enable mask (one bit
/// per breakpoint ID). The host writes it through the debug protocol.
pub const BKPT_MASK_SYMBOL: &str = "__edb_bkpt_mask";

/// Equates every instrumented program needs: the port map and the debug
/// protocol constants.
pub fn prelude() -> String {
    format!(
        "{}{}",
        edb_device::ports::asm_equates(),
        crate::protocol::asm_equates()
    )
}

/// The library routines, placed at [`LIBEDB_ORG`].
pub fn library() -> String {
    format!(
        r#"
; ------------------------------------------------------------------
; libEDB (target side) — see edb-core::libedb
; ------------------------------------------------------------------
.org {LIBEDB_ORG:#06x}

__edb_bkpt_mask: .word 0

; Pulse the code-marker lines with the watchpoint id in r0.
__edb_watchpoint:
    out  CODE_MARKER, r0
    ret

; Send the byte in r12 over the debug UART, honouring TX pacing.
__edb_tx_byte:
    in   r11, DBG_UART_STATUS
    and  r11, 2
    jnz  __edb_tx_byte
    out  DBG_UART_TX, r12
    ret

; Blocking receive of one byte from the debugger into r12.
__edb_rx_byte:
    in   r12, DBG_UART_STATUS
    and  r12, 1
    jz   __edb_rx_byte
    in   r12, DBG_UART_RX
    ret

; Scratch word for the frame checksum accumulator. Only session traffic
; (tethered power) touches it, so the FRAM writes cost nothing the
; energy experiments can see.
__edb_frame_sum: .word 0

; Receive one byte into r12 and fold it into the frame checksum.
; Preserves r13.
__esl_rx_sum:
    call __edb_rx_byte
    push r13
    movi r11, __edb_frame_sum
    ld   r13, [r11]
    add  r13, r12
    st   [r11], r13
    pop  r13
    ret

; Receive the trailing checksum byte and leave the masked frame sum in
; r12: zero means the whole frame summed to zero mod 256, i.e. valid.
__esl_rx_fin:
    call __esl_rx_sum
    movi r11, __edb_frame_sum
    ld   r12, [r11]
    and  r12, 0xFF
    ret

; Fold r12 into the frame checksum accumulator. Preserves r13.
__esl_sum_fold:
    push r13
    movi r11, __edb_frame_sum
    ld   r13, [r11]
    add  r13, r12
    st   [r11], r13
    pop  r13
    ret

; Transmit r12 and fold it into the reply checksum. Preserves r13.
__esl_tx_sum:
    call __esl_sum_fold
    call __edb_tx_byte
    ret

; Reply with the word in r13 (lo, hi, checksum). The checksum is seeded
; with the command byte in r12 (a stale reply to a different command
; fails host verification) and weights the payload by position — lo
; once, hi three times — so a rotated replay of this same reply (the
; stale tail of a torn attempt landing ahead of the retry's fresh
; bytes) fails too. Odd weights keep every single-bit flip detectable.
__esl_tx_word_ck:
    movi r11, __edb_frame_sum
    st   [r11], r12
    mov  r12, r13
    and  r12, 0xFF
    call __esl_tx_sum
    mov  r12, r13
    shr  r12, 8
    call __esl_tx_sum
    mov  r12, r13
    shr  r12, 8
    shl  r12, 1
    call __esl_sum_fold
    movi r11, __edb_frame_sum
    ld   r12, [r11]
    neg  r12
    and  r12, 0xFF
    call __edb_tx_byte
    ret

; The debug service loop: parses framed commands from the host
; ([FRAME_HDR, CMD, LEN, payload..., CKSUM]) until a valid CMD_CONTINUE
; frame arrives. This is where the target sits during an interactive
; session. Every frame is buffered and checksum-verified BEFORE any side
; effect (a torn CMD_WRITE never half-applies), and any validation
; failure falls back to header hunting, so the loop resynchronizes
; after dropped, duplicated, or corrupted bytes.
__edb_service_loop:
    call __edb_rx_byte          ; hunt for a frame header
    cmpi r12, FRAME_HDR
    jnz  __edb_service_loop     ; resync: discard until FRAME_HDR
    movi r11, __edb_frame_sum   ; sum := FRAME_HDR
    movi r13, FRAME_HDR
    st   [r11], r13
    call __esl_rx_sum           ; command byte
    mov  r13, r12
    push r13
    call __esl_rx_sum           ; length byte -> r12 (preserves r13)
    pop  r13
    cmpi r13, CMD_CONTINUE
    jz   __esl_f_cont
    cmpi r13, CMD_READ
    jz   __esl_f_read
    cmpi r13, CMD_WRITE
    jz   __esl_f_write
    cmpi r13, CMD_GET_PC
    jz   __esl_f_getpc
    jmp  __edb_service_loop     ; unknown command: resync

__esl_f_cont:
    cmpi r12, LEN_CONTINUE
    jnz  __edb_service_loop
    call __esl_rx_fin
    cmpi r12, 0
    jnz  __edb_service_loop     ; corrupt: stay parked, host retries
    ret

__esl_f_getpc:
    cmpi r12, LEN_GET_PC
    jnz  __edb_service_loop
    call __esl_rx_fin
    cmpi r12, 0
    jnz  __edb_service_loop
    ; the word at [sp] is the service loop's return address: where
    ; execution will resume (the instruction after the assert /
    ; breakpoint / interrupt site).
    mov  r13, sp
    ld   r13, [r13]
    movi r12, CMD_GET_PC
    call __esl_tx_word_ck
    jmp  __edb_service_loop

__esl_f_read:
    cmpi r12, LEN_READ
    jnz  __edb_service_loop
    call __esl_rx_sum           ; address lo
    mov  r13, r12
    call __esl_rx_sum           ; address hi
    shl  r12, 8
    or   r13, r12
    push r13
    call __esl_rx_fin
    pop  r13
    cmpi r12, 0
    jnz  __edb_service_loop     ; corrupt: nothing read
    ld   r13, [r13]
    movi r12, CMD_READ
    call __esl_tx_word_ck
    jmp  __edb_service_loop

__esl_f_write:
    cmpi r12, LEN_WRITE
    jnz  __edb_service_loop
    call __esl_rx_sum           ; address lo
    mov  r13, r12
    call __esl_rx_sum           ; address hi
    shl  r12, 8
    or   r13, r12
    push r13                    ; buffered address
    call __esl_rx_sum           ; value lo
    mov  r13, r12
    call __esl_rx_sum           ; value hi
    shl  r12, 8
    or   r13, r12
    push r13                    ; buffered value
    call __esl_rx_fin
    pop  r11                    ; value
    pop  r13                    ; address
    cmpi r12, 0
    jnz  __edb_service_loop     ; corrupt: nothing written
    st   [r13], r11
    movi r11, __edb_frame_sum   ; reply [ACK, cksum], seeded with CMD
    movi r12, CMD_WRITE
    st   [r11], r12
    movi r12, DBG_ACK_BYTE
    call __esl_tx_sum
    movi r11, __edb_frame_sum
    ld   r12, [r11]
    neg  r12
    and  r12, 0xFF
    call __edb_tx_byte
    jmp  __edb_service_loop

; Assert failure: id in r0. EDB sees the signal and tethers the target
; (keep-alive) before it can brown out; we then serve the interactive
; session.
__edb_assert_fail:
    mov  r12, r0
    shl  r12, 4
    or   r12, SIG_ASSERT
    out  DEBUG_SIGNAL, r12
    call __edb_service_loop
    ret

; Internal breakpoint: id in r0. Costs a few instructions when disabled
; (one FRAM load and a mask test); signals EDB when the bit for this id
; is set in __edb_bkpt_mask.
__edb_breakpoint:
    movi r12, __edb_bkpt_mask
    ld   r12, [r12]
    mov  r11, r0
    movi r13, 1
__ebp_shift:
    cmpi r11, 0
    jz   __ebp_test
    shl  r13, 1
    sub  r11, 1
    jmp  __ebp_shift
__ebp_test:
    and  r12, r13
    jz   __ebp_done
    mov  r12, r0
    shl  r12, 4
    or   r12, SIG_BREAKPOINT
    out  DEBUG_SIGNAL, r12
    call __edb_service_loop
__ebp_done:
    ret

; Enter an energy-guarded region: request the tether and spin until the
; debugger acknowledges. The spin burns target energy only until the
; tether engages (one debugger tick).
__edb_guard_begin:
    movi r12, SIG_GUARD_BEGIN
    out  DEBUG_SIGNAL, r12
__egb_wait:
    in   r12, DEBUG_STATUS
    and  r12, 1
    jz   __egb_wait
    ret

; Leave the guarded region: request restore and spin (on tethered power,
; then on the draining capacitor) until the debugger clears the ack.
__edb_guard_end:
    movi r12, SIG_GUARD_END
    out  DEBUG_SIGNAL, r12
__ege_wait:
    in   r12, DEBUG_STATUS
    and  r12, 1
    jnz  __ege_wait
    ret

; Energy-guarded printf of the NUL-terminated string at [r0].
__edb_printf:
    call __edb_guard_begin
__epf_loop:
    ldb  r12, [r0]
    cmpi r12, 0
    jz   __epf_done
    call __edb_tx_byte
    add  r0, 1
    jmp  __epf_loop
__epf_done:
    movi r12, 10
    call __edb_tx_byte
    call __edb_guard_end
    ret

; Energy-guarded print of r0 as four hex digits plus newline.
__edb_print_hex16:
    call __edb_guard_begin
    call __hex16_dbg
    movi r12, 10
    call __edb_tx_byte
    call __edb_guard_end
    ret

; Energy-guarded print of "r0 r1\n" (two hex words) in ONE guard — the
; per-iteration trace line of the activity-recognition case study.
__edb_print2:
    push r1
    push r0
    call __edb_guard_begin
    pop  r0
    call __hex16_dbg
    movi r12, 32
    call __edb_tx_byte
    pop  r0
    call __hex16_dbg
    movi r12, 10
    call __edb_tx_byte
    call __edb_guard_end
    ret

; Emit r0 as four hex digits over the debug UART (no guard, no newline).
__hex16_dbg:
    movi r13, 12
__ehd_loop:
    mov  r12, r0
    shr  r12, r13
    and  r12, 0xF
    cmpi r12, 10
    jl   __ehd_digit
    add  r12, 'a' - 10
    jmp  __ehd_emit
__ehd_digit:
    add  r12, '0'
__ehd_emit:
    call __edb_tx_byte
    cmpi r13, 0
    jz   __ehd_done
    sub  r13, 4
    jmp  __ehd_loop
__ehd_done:
    ret

; The conventional alternative: r0 as four hex digits plus newline over
; the TARGET-POWERED user UART. Burns the target's own energy for every
; bit time — the cost Table 4 quantifies.
__uart_tx_byte:
    in   r11, UART_STATUS
    and  r11, 2
    jnz  __uart_tx_byte
    out  UART_TX, r12
    ret

__uart_print_hex16:
    call __hex16_uart
    movi r12, 10
    call __uart_tx_byte
    ret

; The UART equivalent of __edb_print2: "r0 r1\n", every bit paid for by
; the target's own capacitor.
__uart_print2:
    push r1
    call __hex16_uart
    movi r12, 32
    call __uart_tx_byte
    pop  r0
    call __hex16_uart
    movi r12, 10
    call __uart_tx_byte
    ret

; Emit r0 as four hex digits over the user UART (no newline).
__hex16_uart:
    movi r13, 12
__uph_loop:
    mov  r12, r0
    shr  r12, r13
    and  r12, 0xF
    cmpi r12, 10
    jl   __uph_digit
    add  r12, 'a' - 10
    jmp  __uph_emit
__uph_digit:
    add  r12, '0'
__uph_emit:
    call __uart_tx_byte
    cmpi r13, 0
    jz   __uph_done
    sub  r13, 4
    jmp  __uph_loop
__uph_done:
    ret

; Interrupt entry used for energy breakpoints: EDB pulls the interrupt
; line, the target lands here and serves the session, then resumes.
__edb_isr:
    push r11
    push r12
    push r13
    call __edb_service_loop
    pop  r13
    pop  r12
    pop  r11
    reti
"#
    )
}

/// Wraps an application: equates, then the program text, then the
/// library. The program must provide its own `.org`, reset vector, and
/// stack setup.
///
/// # Example
///
/// ```
/// use edb_core::libedb::wrap_program;
/// use edb_mcu::asm::assemble;
/// let image = assemble(&wrap_program(r#"
///     .org 0x4400
/// main:
///     movi sp, 0x2400
///     movi r0, 1
///     call __edb_watchpoint
///     halt
///     .org 0xFFFE
///     .word main
/// "#))?;
/// assert!(image.symbol("__edb_service_loop").is_some());
/// # Ok::<(), edb_mcu::asm::AsmError>(())
/// ```
pub fn wrap_program(app: &str) -> String {
    format!("{}\n{}\n{}", prelude(), app, library())
}

/// Looks up the breakpoint-mask address in an assembled image.
///
/// Returns `None` for images built without `libEDB`.
pub fn bkpt_mask_addr(image: &Image) -> Option<u16> {
    image.symbol(BKPT_MASK_SYMBOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    #[test]
    fn library_assembles_alone() {
        let src = format!("{}\n{}", prelude(), library());
        let image = assemble(&src).expect("library must assemble");
        for sym in [
            "__edb_watchpoint",
            "__edb_service_loop",
            "__edb_assert_fail",
            "__edb_breakpoint",
            "__edb_guard_begin",
            "__edb_guard_end",
            "__edb_printf",
            "__edb_print_hex16",
            "__uart_print_hex16",
            "__edb_isr",
            BKPT_MASK_SYMBOL,
        ] {
            assert!(image.symbol(sym).is_some(), "missing symbol {sym}");
        }
    }

    #[test]
    fn library_lives_at_its_org() {
        let src = format!("{}\n{}", prelude(), library());
        let image = assemble(&src).expect("assembles");
        let mask = bkpt_mask_addr(&image).expect("mask symbol");
        assert_eq!(mask, LIBEDB_ORG);
    }

    #[test]
    fn wrapped_program_runs_watchpoint() {
        use edb_mcu::{Cpu, Memory};
        let src = wrap_program(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r0, 2
                call __edb_watchpoint
                halt
            .org 0xFFFE
            .word main
            "#,
        );
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        struct Markers(Vec<u16>);
        impl edb_mcu::PortBus for Markers {
            fn port_in(&mut self, _p: u8) -> u16 {
                0
            }
            fn port_out(&mut self, port: u8, value: u16) {
                if port == edb_device::ports::CODE_MARKER {
                    self.0.push(value);
                }
            }
        }
        let mut bus = Markers(Vec::new());
        for _ in 0..100 {
            if !cpu.is_running() {
                break;
            }
            cpu.step(&mut mem, &mut bus);
        }
        assert_eq!(bus.0, vec![2]);
    }

    #[test]
    fn service_loop_read_write_continue() {
        use edb_mcu::{Cpu, Memory, PortBus};
        // Drive the service loop through a scripted "debugger" that
        // reads 0x6000, writes 0x6002, then continues.
        let src = wrap_program(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r1, 0x6000
                movi r0, 0x1234
                st   [r1], r0
                call __edb_service_loop
                halt
            .org 0xFFFE
            .word main
            "#,
        );
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);

        #[derive(Default)]
        struct Host {
            to_target: std::collections::VecDeque<u8>,
            from_target: Vec<u8>,
        }
        impl PortBus for Host {
            fn port_in(&mut self, port: u8) -> u16 {
                match port {
                    p if p == edb_device::ports::DBG_UART_STATUS => {
                        (!self.to_target.is_empty()) as u16
                    }
                    p if p == edb_device::ports::DBG_UART_RX => {
                        self.to_target.pop_front().map_or(0, u16::from)
                    }
                    _ => 0,
                }
            }
            fn port_out(&mut self, port: u8, value: u16) {
                if port == edb_device::ports::DBG_UART_TX {
                    self.from_target.push((value & 0xFF) as u8);
                }
            }
        }

        use crate::protocol::{encode_reply, HostCommand, ACK, CMD_READ, CMD_WRITE};
        let mut host = Host::default();
        host.to_target
            .extend(HostCommand::Read { addr: 0x6000 }.encode());
        host.to_target.extend(
            HostCommand::Write {
                addr: 0x6002,
                value: 0xBEEF,
            }
            .encode(),
        );
        host.to_target.extend(HostCommand::Continue.encode());

        for _ in 0..20_000 {
            if !cpu.is_running() {
                break;
            }
            cpu.step(&mut mem, &mut host);
        }
        assert!(!cpu.is_running(), "program must reach halt");
        let mut expected = encode_reply(CMD_READ, &[0x34, 0x12]);
        expected.extend(encode_reply(CMD_WRITE, &[ACK]));
        assert_eq!(host.from_target, expected);
        assert_eq!(mem.peek_word(0x6002), 0xBEEF);
    }

    /// Framing edge cases on the debug UART: an empty payload (no bytes
    /// at all) parks the target in the service loop without emitting
    /// anything; a corrupted command byte is skipped and the *next*
    /// valid frame is still served; the longest frame (`CMD_WRITE`,
    /// five bytes) carries an all-ones payload intact.
    #[test]
    fn service_loop_framing_edge_cases() {
        use edb_mcu::{Cpu, Memory, PortBus};
        let src = wrap_program(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r1, 0x6000
                movi r0, 0x1234
                st   [r1], r0
                call __edb_service_loop
                halt
            .org 0xFFFE
            .word main
            "#,
        );
        let image = assemble(&src).expect("assembles");

        #[derive(Default)]
        struct Host {
            to_target: std::collections::VecDeque<u8>,
            from_target: Vec<u8>,
        }
        impl PortBus for Host {
            fn port_in(&mut self, port: u8) -> u16 {
                match port {
                    p if p == edb_device::ports::DBG_UART_STATUS => {
                        (!self.to_target.is_empty()) as u16
                    }
                    p if p == edb_device::ports::DBG_UART_RX => {
                        self.to_target.pop_front().map_or(0, u16::from)
                    }
                    _ => 0,
                }
            }
            fn port_out(&mut self, port: u8, value: u16) {
                if port == edb_device::ports::DBG_UART_TX {
                    self.from_target.push((value & 0xFF) as u8);
                }
            }
        }

        let fresh = |host: &mut Host| {
            let mut mem = Memory::new();
            image.load_into(&mut mem);
            let mut cpu = Cpu::new();
            cpu.reset(&mem);
            for _ in 0..20_000 {
                if !cpu.is_running() {
                    break;
                }
                cpu.step(&mut mem, host);
            }
            (cpu, mem)
        };

        use crate::protocol::{encode_reply, HostCommand, ACK, CMD_READ, CMD_WRITE};

        // Empty payload: the target waits in the service loop forever,
        // sending nothing — no spurious ACKs, no garbage replies.
        let mut host = Host::default();
        let (cpu, _) = fresh(&mut host);
        assert!(cpu.is_running(), "no bytes -> still parked in the loop");
        assert!(host.from_target.is_empty(), "nothing to say unprompted");

        // Leading junk: bytes that are no frame header (0x7F, 0xFF,
        // 0x00) must be discarded while header-hunting, and the
        // following valid frames still complete the session.
        let mut host = Host::default();
        host.to_target.extend([0x7F, 0xFF, 0x00]);
        host.to_target
            .extend(HostCommand::Read { addr: 0x6000 }.encode());
        host.to_target.extend(HostCommand::Continue.encode());
        let (cpu, _) = fresh(&mut host);
        assert!(!cpu.is_running(), "valid frame after junk must be served");
        assert_eq!(host.from_target, encode_reply(CMD_READ, &[0x34, 0x12]));

        // Corrupted checksum on a CMD_WRITE: the frame is rejected
        // BEFORE the store happens (no torn write, no ACK), and a
        // retried clean frame is still served after resync.
        let mut host = Host::default();
        let mut torn = HostCommand::Write {
            addr: 0x6002,
            value: 0xBEEF,
        }
        .encode();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        host.to_target.extend(torn);
        host.to_target.extend(
            HostCommand::Write {
                addr: 0x6002,
                value: 0xBEEF,
            }
            .encode(),
        );
        host.to_target.extend(HostCommand::Continue.encode());
        let (cpu, mem) = fresh(&mut host);
        assert!(!cpu.is_running());
        assert_eq!(
            host.from_target,
            encode_reply(CMD_WRITE, &[ACK]),
            "exactly one ACK: the corrupt frame must not be applied"
        );
        assert_eq!(mem.peek_word(0x6002), 0xBEEF);

        // Max-length frame: CMD_WRITE is the longest (nine bytes framed);
        // an all-ones payload survives byte-exact.
        let mut host = Host::default();
        host.to_target.extend(
            HostCommand::Write {
                addr: 0x6002,
                value: 0xFFFF,
            }
            .encode(),
        );
        host.to_target.extend(HostCommand::Continue.encode());
        let (cpu, mem) = fresh(&mut host);
        assert!(!cpu.is_running());
        assert_eq!(host.from_target, encode_reply(CMD_WRITE, &[ACK]));
        assert_eq!(mem.peek_word(0x6002), 0xFFFF);
    }
}
