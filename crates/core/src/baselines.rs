//! The debugging tools EDB is compared against in §2.2: a JTAG-style
//! tethered debugger (which masks intermittence) and a mixed-signal
//! oscilloscope (which sees energy but not program state).
//!
//! These exist so the experiment harnesses can *demonstrate* the paper's
//! motivating claims rather than assert them: the same buggy image that
//! corrupts memory on harvested power runs forever under
//! [`JtagDebugger`]; the [`Oscilloscope`] records a beautiful `Vcap`
//! trace that says nothing about *why* the main loop stopped.

use edb_device::{Device, DeviceConfig};
use edb_energy::{SimTime, TheveninSource, Trace};
use edb_mcu::Image;

/// A conventional JTAG debugger: full visibility into target memory, but
/// it **continuously powers the device under test**, so no intermittent
/// behaviour can ever be observed.
#[derive(Debug)]
pub struct JtagDebugger {
    device: Device,
    supply: TheveninSource,
}

impl JtagDebugger {
    /// Attaches the JTAG debugger to a fresh device flashed with `image`.
    pub fn attach(config: DeviceConfig, image: &Image) -> Self {
        let mut device = Device::new(config);
        device.flash(image);
        JtagDebugger {
            device,
            // A stiff 3 V bench supply: the defining energy interference.
            supply: TheveninSource::new(3.0, 10.0),
        }
    }

    /// Runs the target under continuous power for `duration`.
    pub fn run_for(&mut self, duration: SimTime) {
        let end = self.device.now() + duration;
        while self.device.now() < end {
            self.device.step(&mut self.supply, 0.0);
        }
    }

    /// The target (full memory/register visibility — JTAG's strength).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Reads a word of target memory (JTAG's strength: free access).
    pub fn read_word(&self, addr: u16) -> u16 {
        self.device.mem().peek_word(addr)
    }
}

/// A mixed-signal oscilloscope probing `Vcap` and one GPIO pin: perfect
/// analog visibility, zero program visibility.
#[derive(Debug)]
pub struct Oscilloscope {
    v_cap: Trace,
    gpio: Trace,
    period: SimTime,
    next_sample: SimTime,
}

impl Oscilloscope {
    /// Creates a scope sampling every `period`.
    pub fn new(period: SimTime) -> Self {
        Oscilloscope {
            v_cap: Trace::new("Vcap", period),
            gpio: Trace::new("gpio", period),
            period,
            next_sample: SimTime::ZERO,
        }
    }

    /// Samples the probes (call once per simulation step; the scope
    /// decimates internally).
    pub fn sample(&mut self, device: &Device) {
        let now = device.now();
        if now < self.next_sample {
            return;
        }
        self.next_sample = now + self.period;
        self.v_cap.record(now, device.v_cap());
        self.gpio.record(now, device.peripherals.gpio.read() as f64);
    }

    /// The captured `Vcap` channel.
    pub fn v_cap(&self) -> &Trace {
        &self.v_cap
    }

    /// The captured GPIO channel.
    pub fn gpio(&self) -> &Trace {
        &self.gpio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    #[test]
    fn jtag_masks_intermittence() {
        let image = assemble(
            r#"
            .org 0x4400
            main:
                add r0, 1
                jmp main
            .org 0xFFFE
            .word main
            "#,
        )
        .expect("assembles");
        let mut jtag = JtagDebugger::attach(DeviceConfig::wisp5(), &image);
        jtag.run_for(SimTime::from_ms(200));
        assert_eq!(jtag.device().reboots(), 0, "JTAG never lets power fail");
        assert!(jtag.device().total_instructions() > 100_000);
    }

    #[test]
    fn jtag_reads_memory_freely() {
        let image = assemble(
            r#"
            .org 0x4400
            main:
                movi r1, 0x6000
                movi r0, 42
                st   [r1], r0
                halt
            .org 0xFFFE
            .word main
            "#,
        )
        .expect("assembles");
        let mut jtag = JtagDebugger::attach(DeviceConfig::wisp5(), &image);
        jtag.run_for(SimTime::from_ms(10));
        assert_eq!(jtag.read_word(0x6000), 42);
    }

    #[test]
    fn scope_sees_energy_but_not_state() {
        let image = assemble(
            r#"
            .org 0x4400
            main:
                add r0, 1
                jmp main
            .org 0xFFFE
            .word main
            "#,
        )
        .expect("assembles");
        let mut device = Device::new(DeviceConfig::wisp5());
        device.flash(&image);
        let mut src = TheveninSource::new(3.2, 1500.0);
        let mut scope = Oscilloscope::new(SimTime::from_us(100));
        let end = SimTime::from_ms(200);
        while device.now() < end {
            device.step(&mut src, 0.0);
            scope.sample(&device);
        }
        assert!(scope.v_cap().len() > 100, "scope captured the waveform");
        let min = scope.v_cap().min().expect("samples");
        let max = scope.v_cap().max().expect("samples");
        assert!(max > 2.3 && min < 2.0, "sawtooth visible: {min}..{max}");
    }
}
