//! EDB's on-board 12-bit ADC.
//!
//! The sense lines (`Vcap`, `Vreg`) pass through high-impedance unity-gain
//! instrumentation amplifiers into this converter (§4.1). It is the only
//! way the debugger learns the target's energy level — the debugger never
//! sees the simulation's ground-truth voltage — which is exactly why
//! Table 3 can compare "o-scope" (ground truth) against "ADC" (this
//! converter) measurements of the same save/restore operation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 12-bit sampling ADC with gaussian conversion noise.
///
/// With the default 3.3 V reference the LSB is ≈0.81 mV, matching the
/// paper's "12-bit ADC with effective resolution of approximately 1 mV".
///
/// # Example
///
/// ```
/// use edb_core::adc::Adc;
/// let mut adc = Adc::new(7);
/// let code = adc.sample(2.4);
/// let v = adc.to_volts(code);
/// assert!((v - 2.4).abs() < 0.005, "reading {v} too far from 2.4");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adc {
    v_ref: f64,
    noise_sigma_lsb: f64,
    rng: StdRng,
    samples_taken: u64,
}

impl Adc {
    /// Creates the converter with a 3.3 V reference and 0.7 LSB of noise.
    pub fn new(seed: u64) -> Self {
        Adc {
            v_ref: 3.3,
            noise_sigma_lsb: 0.7,
            rng: StdRng::seed_from_u64(seed),
            samples_taken: 0,
        }
    }

    /// The reference voltage.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Volts per code step.
    pub fn lsb(&self) -> f64 {
        self.v_ref / 4096.0
    }

    /// Converts `volts` to a 12-bit code, including conversion noise.
    pub fn sample(&mut self, volts: f64) -> u16 {
        self.samples_taken += 1;
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let noise = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let code = volts / self.lsb() + noise * self.noise_sigma_lsb;
        code.round().clamp(0.0, 4095.0) as u16
    }

    /// Converts a code back to volts (code-center convention).
    pub fn to_volts(&self, code: u16) -> f64 {
        code as f64 * self.lsb()
    }

    /// Convenience: sample and convert back, i.e. what EDB's firmware
    /// believes the voltage to be.
    pub fn read_volts(&mut self, volts: f64) -> f64 {
        let code = self.sample(volts);
        self.to_volts(code)
    }

    /// Number of conversions performed.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_is_about_point_eight_mv() {
        let adc = Adc::new(0);
        assert!((adc.lsb() - 0.000805664).abs() < 1e-6);
    }

    #[test]
    fn readings_are_unbiased() {
        let mut adc = Adc::new(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| adc.read_volts(2.3)).sum::<f64>() / n as f64;
        assert!((mean - 2.3).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn noise_is_about_one_lsb() {
        let mut adc = Adc::new(2);
        let readings: Vec<f64> = (0..5000).map(|_| adc.read_volts(2.0)).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let sd = (readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
            / (readings.len() - 1) as f64)
            .sqrt();
        let lsb = adc.lsb();
        assert!(sd > 0.3 * lsb && sd < 2.0 * lsb, "sd {sd} vs lsb {lsb}");
    }

    #[test]
    fn codes_clamp_at_rails() {
        let mut adc = Adc::new(3);
        assert_eq!(adc.sample(-1.0), 0);
        assert_eq!(adc.sample(10.0), 4095);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Adc::new(9);
        let mut b = Adc::new(9);
        for _ in 0..100 {
            assert_eq!(a.sample(2.2), b.sample(2.2));
        }
    }
}
