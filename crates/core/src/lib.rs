//! **EDB** — the Energy-interference-free Debugger of Colin, Harvey,
//! Lucia & Sample (ASPLOS 2016), reproduced end-to-end in simulation.
//!
//! Energy-harvesting devices execute *intermittently*: power fails tens
//! of times a second, erasing volatile state and restarting the program.
//! Conventional debuggers power the target and therefore *mask* every
//! intermittence bug; ad-hoc instrumentation (LEDs, UART logging)
//! *changes* the energy state and therefore the bug. EDB's thesis is that
//! a debugger for such devices must be **energy-interference-free**, and
//! this crate reproduces its whole design:
//!
//! * **Passive mode** — monitor the energy level (through a 12-bit
//!   [`adc`]), I/O buses, RFID traffic, and program events (code-marker
//!   watchpoints), all over high-impedance [`wiring`] whose worst-case
//!   leakage is under a microamp (Table 2).
//! * **Active mode** — manipulate the target's stored energy with a
//!   [`charge`] circuit: charge, discharge, tether, and *compensate* so
//!   debugging work is invisible to the application (Table 3).
//! * **Primitives** — intermittence-aware assertions with keep-alive,
//!   code/energy/combined breakpoints, energy guards, and
//!   energy-interference-free `printf` ([`debugger`], [`libedb`]).
//! * **Interfaces** — the `libEDB` target library and the debug
//!   [`console`] (Table 1).
//!
//! # Quickstart
//!
//! ```
//! use edb_core::{libedb, System};
//! use edb_device::DeviceConfig;
//! use edb_mcu::asm::assemble;
//!
//! // An instrumented program: one watchpoint per main-loop iteration.
//! let image = assemble(&libedb::wrap_program(r#"
//!     .org 0x4400
//! main:
//!     movi sp, 0x2400
//! loop:
//!     movi r0, 1
//!     out  CODE_MARKER, r0
//!     add  r1, 1
//!     jmp  loop
//!     .org 0xFFFE
//!     .word main
//! "#))?;
//!
//! // The bench: WISP-like target, RF-like harvester, EDB attached.
//! let mut sys = System::builder(DeviceConfig::wisp5())
//!     .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
//!     .build();
//! sys.flash(&image);
//! sys.run_for(edb_energy::SimTime::from_ms(200));
//!
//! // The program ran intermittently, and EDB watched it happen.
//! assert!(sys.device().reboots() > 0);
//! assert!(sys.edb().unwrap().log().with_tag("watchpoint").count() > 0);
//! # Ok::<(), edb_mcu::asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod baselines;
pub mod charge;
pub mod console;
pub mod debugger;
pub mod error;
pub mod events;
pub mod fleet;
pub mod libedb;
pub mod protocol;
pub mod replay;
pub mod session;
pub mod system;
pub mod wiring;

pub use adc::Adc;
pub use charge::{ChargeCircuit, ChargeMode, LevelController};
pub use console::{Console, ConsoleError};
pub use debugger::{
    DebugRequest, DebugResponse, Edb, EdbConfig, RequestId, SessionKind, SessionOutcome,
    SessionPoll,
};
pub use error::EdbError;
pub use events::{DebugEvent, EventLog, LoggedEvent};
pub use fleet::{FleetCellStats, FleetConfig, FleetEvent, FleetSim, TagStatus};
pub use protocol::{FrameError, HostCommand};
pub use replay::{
    Divergence, Firmware, FleetOp, FleetSpec, FleetTape, HarvesterSpec, SessionOp, SessionSpec,
    VerifyReport, WorldSpec,
};
pub use session::{DebugSession, SessionBuilder, SessionStatus};
pub use system::{System, SystemBuilder};
pub use wiring::{ChannelFault, ChannelFaultConfig, ConnectionKind, LineStates, Wiring};
