//! The charge/discharge circuit and its software level controller.
//!
//! §4.1.1: "EDB has a custom circuit consisting of a low pass filter,
//! keeper diode, and GPIO pins that can charge and discharge the target's
//! energy storage capacitor. ... A basic iterative control loop in EDB's
//! software ensures that the voltage converges to the desired level."
//!
//! The circuit here is the analog part: in `Charge`/`Tether` mode it
//! sources current through a drive resistor and keeper diode; in
//! `Discharge` mode it sinks current through a bleed resistor; `Idle` is
//! high-impedance (its residual leakage lives in [`crate::wiring`], not
//! here). The [`LevelController`] is the software part: it samples the
//! ADC on a fixed period and flips the circuit off when the reading
//! crosses the target. Its finite control period is what produces the
//! save/restore discrepancy that Table 3 measures — the error is
//! *mechanistic*, not injected.

use edb_energy::SimTime;
use serde::{Deserialize, Serialize};

/// What the charge/discharge pins are doing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChargeMode {
    /// High impedance: no intentional current.
    Idle,
    /// Sourcing current to raise the capacitor voltage.
    Charge,
    /// Sinking current through the bleed resistor.
    Discharge,
    /// Sinking gently (the discharge pin PWMed at low duty) for precise
    /// convergence near the target level.
    DischargeFine,
    /// Continuously powering the target ("tethered power").
    Tether,
}

/// The analog charge/discharge network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeCircuit {
    /// Drive rail voltage, volts.
    pub v_drive: f64,
    /// Series resistance of the charge path, ohms.
    pub r_charge: f64,
    /// Keeper-diode forward drop, volts.
    pub diode_drop: f64,
    /// Bleed resistance of the discharge path, ohms.
    pub r_discharge: f64,
    /// Effective bleed resistance in fine (PWM) discharge, ohms.
    pub r_discharge_fine: f64,
    mode: ChargeMode,
}

impl ChargeCircuit {
    /// The prototype's values: 3.3 V drive through 100 Ω and a 0.2 V
    /// keeper diode; 220 Ω discharge bleed.
    pub fn new() -> Self {
        ChargeCircuit {
            v_drive: 3.3,
            r_charge: 100.0,
            diode_drop: 0.2,
            r_discharge: 220.0,
            r_discharge_fine: 2200.0,
            mode: ChargeMode::Idle,
        }
    }

    /// The present mode.
    pub fn mode(&self) -> ChargeMode {
        self.mode
    }

    /// Sets the mode (the debugger firmware's GPIO writes).
    pub fn set_mode(&mut self, mode: ChargeMode) {
        self.mode = mode;
    }

    /// The voltage the tether settles at with no load (drive minus diode).
    pub fn tether_level(&self) -> f64 {
        self.v_drive - self.diode_drop
    }

    /// Current delivered *into* the target capacitor at `v_cap`, amps
    /// (negative while discharging).
    pub fn current_into(&self, v_cap: f64) -> f64 {
        match self.mode {
            ChargeMode::Idle => 0.0,
            ChargeMode::Charge | ChargeMode::Tether => {
                ((self.v_drive - self.diode_drop - v_cap) / self.r_charge).max(0.0)
            }
            ChargeMode::Discharge => -(v_cap / self.r_discharge).max(0.0),
            ChargeMode::DischargeFine => -(v_cap / self.r_discharge_fine).max(0.0),
        }
    }
}

impl Default for ChargeCircuit {
    fn default() -> Self {
        ChargeCircuit::new()
    }
}

/// Which way the controller is moving the voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Charging up to the target.
    Raise,
    /// Discharging down to the target.
    Lower,
}

/// The iterative software control loop that converges the capacitor to a
/// target level.
///
/// Every `period`, the debugger samples its ADC; once the reading crosses
/// `target` (± `guard_band`), the circuit is switched off. A positive
/// guard band stops *early*: the restore path uses one so that a resumed
/// target is left with slightly **more** energy than saved rather than
/// less — the conservative choice behind Table 3's positive mean ΔV.
///
/// A lowering controller normally finishes its approach in the gentle
/// fine-discharge mode, but the gentle bleed can be weaker than what the
/// harvester is simultaneously delivering (e.g. a strongly-lit target
/// whose session drifted the capacitor upward): the voltage then parks at
/// an equilibrium *above* the stop level and never converges. The
/// controller watches for that stall — several consecutive control
/// periods without a new minimum reading — and escalates back to the
/// coarse bleed for the rest of the operation, trading a little landing
/// precision for guaranteed convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelController {
    /// Target voltage, volts.
    pub target: f64,
    /// Early-stop margin, volts (≥ 0).
    pub guard_band: f64,
    /// Within this margin of the stop level, discharge switches to the
    /// gentle fine mode so the final step lands precisely.
    pub fine_band: f64,
    direction: Direction,
    period: SimTime,
    next_check: SimTime,
    last_reading: Option<f64>,
    best_reading: Option<f64>,
    stalled_checks: u32,
    boost: bool,
    done: bool,
}

/// A reading must undershoot the best seen so far by this much (volts) to
/// count as downward progress — a bit over one ADC LSB, so conversion
/// noise alone cannot sustain the appearance of progress.
const STALL_EPSILON: f64 = 1e-3;

/// Consecutive no-progress control periods before a lowering controller
/// escalates from the fine bleed back to the coarse one. Genuine fine
/// convergence moves several millivolts per period, so a real approach
/// practically never strings this many flat checks together.
const STALL_CHECKS: u32 = 4;

impl LevelController {
    /// A controller that charges up to `target`, checking every `period`.
    pub fn raise(target: f64, period: SimTime, guard_band: f64, now: SimTime) -> Self {
        LevelController {
            target,
            guard_band,
            fine_band: 0.06,
            direction: Direction::Raise,
            period,
            next_check: now,
            last_reading: None,
            best_reading: None,
            stalled_checks: 0,
            boost: false,
            done: false,
        }
    }

    /// A controller that discharges down to `target`.
    pub fn lower(target: f64, period: SimTime, guard_band: f64, now: SimTime) -> Self {
        LevelController {
            target,
            guard_band,
            fine_band: 0.06,
            direction: Direction::Lower,
            period,
            next_check: now,
            last_reading: None,
            best_reading: None,
            stalled_checks: 0,
            boost: false,
            done: false,
        }
    }

    /// The movement direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether the target has been reached.
    pub fn done(&self) -> bool {
        self.done
    }

    /// The circuit mode this controller wants right now.
    pub fn desired_mode(&self) -> ChargeMode {
        if self.done {
            return ChargeMode::Idle;
        }
        match self.direction {
            Direction::Raise => ChargeMode::Charge,
            Direction::Lower => {
                let stop_at = self.target + self.guard_band;
                match self.last_reading {
                    Some(v) if v <= stop_at + self.fine_band && !self.boost => {
                        ChargeMode::DischargeFine
                    }
                    _ => ChargeMode::Discharge,
                }
            }
        }
    }

    /// Feeds the controller the time; when a control period elapses it
    /// consumes one ADC reading via `read` and decides whether to stop.
    /// Returns `true` if this call completed the operation.
    pub fn update(&mut self, now: SimTime, read: &mut dyn FnMut() -> f64) -> bool {
        if self.done || now < self.next_check {
            return false;
        }
        self.next_check = now + self.period;
        let v = read();
        self.last_reading = Some(v);
        let reached = match self.direction {
            Direction::Raise => v >= self.target - self.guard_band,
            Direction::Lower => v <= self.target + self.guard_band,
        };
        if reached {
            self.done = true;
            return true;
        }
        if self.direction == Direction::Lower && !self.boost {
            match self.best_reading {
                Some(best) if v < best - STALL_EPSILON => {
                    self.best_reading = Some(v);
                    self.stalled_checks = 0;
                }
                Some(_) => {
                    self.stalled_checks += 1;
                    if self.stalled_checks >= STALL_CHECKS {
                        self.boost = true;
                    }
                }
                None => self.best_reading = Some(v),
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::Adc;
    use edb_energy::Capacitor;

    /// Integrates circuit + controller against a bare capacitor, the way
    /// the debugger does against the live device.
    fn converge(start_v: f64, controller: &mut LevelController, adc: &mut Adc) -> (f64, SimTime) {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(start_v);
        let mut circuit = ChargeCircuit::new();
        let mut now = SimTime::ZERO;
        let dt = 2e-6;
        while !controller.done() {
            circuit.set_mode(controller.desired_mode());
            cap.apply_current(circuit.current_into(cap.voltage()), dt);
            now = now.advance_secs(dt);
            let v = cap.voltage();
            controller.update(now, &mut || adc.read_volts(v));
            assert!(now < SimTime::from_secs(1), "did not converge");
        }
        (cap.voltage(), now)
    }

    #[test]
    fn charges_to_target_within_control_error() {
        let mut adc = Adc::new(1);
        let mut ctl = LevelController::raise(2.4, SimTime::from_us(50), 0.0, SimTime::ZERO);
        let (v, _) = converge(1.8, &mut ctl, &mut adc);
        assert!((2.39..2.48).contains(&v), "converged to {v}");
    }

    #[test]
    fn discharges_to_target_within_control_error() {
        let mut adc = Adc::new(2);
        let mut ctl = LevelController::lower(2.0, SimTime::from_us(50), 0.0, SimTime::ZERO);
        let (v, _) = converge(3.1, &mut ctl, &mut adc);
        assert!(v <= 2.01 && v > 1.93, "converged to {v}");
    }

    #[test]
    fn guard_band_stops_early() {
        let mut adc = Adc::new(3);
        let mut tight = LevelController::lower(2.3, SimTime::from_us(50), 0.0, SimTime::ZERO);
        let (v_tight, _) = converge(3.1, &mut tight, &mut adc);
        let mut guarded = LevelController::lower(2.3, SimTime::from_us(50), 0.05, SimTime::ZERO);
        let (v_guarded, _) = converge(3.1, &mut guarded, &mut adc);
        assert!(
            v_guarded > v_tight,
            "guard band must leave more charge: {v_guarded} vs {v_tight}"
        );
    }

    #[test]
    fn longer_control_period_means_more_overshoot() {
        let overshoot = |period_us: u64| {
            let mut adc = Adc::new(4);
            let mut ctl =
                LevelController::lower(2.3, SimTime::from_us(period_us), 0.0, SimTime::ZERO);
            let (v, _) = converge(3.1, &mut ctl, &mut adc);
            (2.3 - v).abs()
        };
        assert!(overshoot(400) > overshoot(20));
    }

    #[test]
    fn stalled_fine_discharge_escalates_to_coarse() {
        // A harvester-like source feeds the cap harder than the fine
        // bleed can sink near the stop level; without escalation the
        // voltage parks above target forever (the resume-after-session
        // hang this guards against).
        let mut adc = Adc::new(5);
        let mut ctl = LevelController::lower(2.4, SimTime::from_us(150), 0.055, SimTime::ZERO);
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(2.48);
        let mut circuit = ChargeCircuit::new();
        let mut now = SimTime::ZERO;
        let dt = 2e-6;
        while !ctl.done() {
            circuit.set_mode(ctl.desired_mode());
            let v = cap.voltage();
            // Thevenin source: 3.2 V behind 220 Ω, stronger than the
            // ~1.1 mA fine bleed everywhere in the fine band.
            let source = (3.2 - v) / 220.0;
            cap.apply_current(circuit.current_into(v) + source, dt);
            now = now.advance_secs(dt);
            let v = cap.voltage();
            ctl.update(now, &mut || adc.read_volts(v));
            assert!(
                now < SimTime::from_ms(100),
                "stalled at {v} without escalating"
            );
        }
        assert!(cap.voltage() <= 2.46, "stopped at {}", cap.voltage());
    }

    #[test]
    fn tether_holds_near_drive_level() {
        let mut cap = Capacitor::new(47e-6);
        cap.set_voltage(2.0);
        let mut circuit = ChargeCircuit::new();
        circuit.set_mode(ChargeMode::Tether);
        for _ in 0..500_000 {
            // A hungry 3 mA load hangs off the cap.
            let i = circuit.current_into(cap.voltage()) - 3e-3;
            cap.apply_current(i, 1e-6);
        }
        let v = cap.voltage();
        let expected = circuit.tether_level() - 3e-3 * circuit.r_charge;
        assert!(
            (v - expected).abs() < 0.02,
            "tether sits at {v}, expected {expected}"
        );
    }

    #[test]
    fn idle_is_high_impedance() {
        let c = ChargeCircuit::new();
        assert_eq!(c.current_into(1.0), 0.0);
        assert_eq!(c.current_into(3.0), 0.0);
    }
}
