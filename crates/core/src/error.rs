//! The workspace-wide error taxonomy for debugger operations.
//!
//! Every fallible path between the console, the debugger state machine,
//! and the target — attach state, session state, the framed wire
//! protocol, and the energy manipulation loops — reports one of these
//! variants instead of panicking. The taxonomy deliberately separates
//! *why* an operation failed (no session vs. corrupt reply vs. the
//! target browning out mid-command), because the recovery action differs
//! for each: re-open the session, retry the command, or wait for the
//! target's next service-loop entry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed debugger failure.
///
/// The taxonomy serializes (externally tagged) so transports — the
/// `edb-serve` JSON-RPC server in particular — can carry the exact
/// variant across the wire instead of flattening it to a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EdbError {
    /// The operation needs a debugger, but none is attached to the bench.
    NotAttached {
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The operation needs an open interactive session (the target parked
    /// in its `libEDB` service loop), but none is open.
    NoSession {
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A framed command exhausted its retries without a complete,
    /// checksum-valid reply arriving before the sim-time deadline.
    CommandTimeout {
        /// The command that timed out (`READ`, `WRITE`, `GET_PC`).
        cmd: &'static str,
        /// Send attempts made (first try plus retries).
        attempts: u32,
    },
    /// A reply arrived but failed its checksum (or carried an impossible
    /// value) on the final attempt.
    CorruptReply {
        /// The command whose reply was corrupt.
        cmd: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// The target browned out mid-command and never re-entered its
    /// service loop within the command's deadline.
    AbortedByBrownout {
        /// The command that was torn.
        cmd: &'static str,
    },
    /// A command is already in flight; the protocol layer runs one
    /// exchange at a time.
    Busy {
        /// The in-flight command.
        cmd: &'static str,
    },
    /// A charge/discharge operation did not converge to its target level.
    LevelNotReached {
        /// The requested level, volts.
        target_v: f64,
    },
    /// No interactive session opened within the allotted sim time.
    SessionDidNotOpen,
    /// The session did not close after a resume (energy restore or the
    /// release handshake never completed).
    SessionDidNotClose,
    /// A device-layer failure surfaced through the debugger.
    Device {
        /// Description.
        detail: String,
    },
    /// An RFID-layer failure surfaced through the debugger.
    Rfid {
        /// Description.
        detail: String,
    },
    /// A record/replay operation failed: a snapshot could not restore,
    /// a replayed run diverged from its recording, or a rewind target
    /// precedes what the tape covers.
    Replay {
        /// Description.
        detail: String,
    },
    /// A time-travel operation (`step_back`, `goto_time`,
    /// `reverse_continue`) was issued against a session that never
    /// started a recording, so there is nothing to rewind into.
    NoRecording {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for EdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdbError::NotAttached { op } => write!(f, "{op}: EDB not attached"),
            EdbError::NoSession { op } => {
                write!(f, "{op}: requires an active session")
            }
            EdbError::CommandTimeout { cmd, attempts } => {
                write!(f, "{cmd}: no valid reply after {attempts} attempt(s)")
            }
            EdbError::CorruptReply { cmd, detail } => {
                write!(f, "{cmd}: corrupt reply ({detail})")
            }
            EdbError::AbortedByBrownout { cmd } => {
                write!(f, "{cmd}: aborted, target browned out mid-command")
            }
            EdbError::Busy { cmd } => {
                write!(f, "command {cmd} already in flight")
            }
            EdbError::LevelNotReached { target_v } => {
                write!(f, "level operation to {target_v:.3} V did not converge")
            }
            EdbError::SessionDidNotOpen => write!(f, "no session opened in time"),
            EdbError::SessionDidNotClose => {
                write!(f, "session did not close on resume")
            }
            EdbError::Device { detail } => write!(f, "device: {detail}"),
            EdbError::Rfid { detail } => write!(f, "rfid: {detail}"),
            EdbError::Replay { detail } => write!(f, "replay: {detail}"),
            EdbError::NoRecording { op } => {
                write!(
                    f,
                    "{op}: session has no recording (enable recording when creating it)"
                )
            }
        }
    }
}

impl std::error::Error for EdbError {}

impl From<edb_rfid::DecodeFailure> for EdbError {
    fn from(e: edb_rfid::DecodeFailure) -> Self {
        EdbError::Rfid {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_command_and_cause() {
        let e = EdbError::CommandTimeout {
            cmd: "READ",
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("READ") && s.contains("4"), "{s}");
        let e = EdbError::AbortedByBrownout { cmd: "WRITE" };
        assert!(e.to_string().contains("browned out"));
    }

    #[test]
    fn no_recording_names_the_operation_and_the_remedy() {
        let e = EdbError::NoRecording { op: "step_back" };
        let s = e.to_string();
        assert!(s.contains("step_back") && s.contains("no recording"), "{s}");
        // It must round-trip the wire like every other variant.
        let v = e.to_value();
        let back = EdbError::from_value(&v).expect("round-trip");
        assert_eq!(back, e);
    }

    #[test]
    fn rfid_decode_failures_convert_with_detail() {
        let e: EdbError = edb_rfid::DecodeFailure::BadCrc.into();
        match &e {
            EdbError::Rfid { detail } => assert!(detail.contains("crc")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
