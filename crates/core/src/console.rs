//! The debug console: Table 1's command-line interface.
//!
//! > "The debug console is a command-line interface for interacting
//! > directly with EDB and indirectly with the target ... During
//! > interactive debugging in active mode, the console reports assert
//! > failures and breakpoints hits and provides commands to inspect
//! > target memory. During passive mode debugging, the console delivers
//! > traces of energy state, watchpoint hits, monitored I/O events, and
//! > the output of printf calls."
//!
//! Commands:
//!
//! ```text
//! charge <volts>                     discharge <volts>
//! break en <id> [<volts>]            break dis <id>
//! ebreak en <volts>                  ebreak dis <volts>
//! watch en <id>                      watch dis <id>
//! trace energy|iobus|rfid|watchpoints|printf
//! read <addr> [<n>]                  write <addr> <value>
//! run <ms>                           resume
//! status                             help
//! ```

use crate::events::DebugEvent;
use crate::system::System;
use edb_energy::SimTime;
use std::fmt;
use std::fmt::Write as _;

/// A console command failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsoleError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ConsoleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ConsoleError {}

impl From<crate::EdbError> for ConsoleError {
    fn from(e: crate::EdbError) -> Self {
        ConsoleError {
            message: e.to_string(),
        }
    }
}

fn cerr<T>(message: impl Into<String>) -> Result<T, ConsoleError> {
    Err(ConsoleError {
        message: message.into(),
    })
}

/// The interactive console, operating on a [`System`].
///
/// # Example
///
/// ```no_run
/// use edb_core::{Console, System};
/// use edb_device::DeviceConfig;
/// let mut sys = System::builder(DeviceConfig::wisp5())
///     .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
///     .build();
/// let mut console = Console::new();
/// let out = console.execute("charge 2.4", &mut sys)?;
/// println!("{out}");
/// # Ok::<(), edb_core::ConsoleError>(())
/// ```
#[derive(Debug, Default)]
pub struct Console {
    /// Index into the event log up to which traces have been printed.
    trace_cursor: usize,
}

impl Console {
    /// Creates a console.
    pub fn new() -> Self {
        Console::default()
    }

    /// Parses and executes one command line, returning its output text.
    ///
    /// # Errors
    ///
    /// Returns a [`ConsoleError`] for unknown commands, bad arguments, or
    /// operations that require state the system is not in (e.g. `read`
    /// without an active session).
    pub fn execute(&mut self, line: &str, sys: &mut System) -> Result<String, ConsoleError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = tokens.split_first() else {
            return Ok(String::new());
        };
        match cmd {
            "help" => Ok(HELP.to_string()),
            "charge" => {
                let v = parse_volts(args.first())?;
                let got = sys.try_charge_to(v)?;
                Ok(format!("charged to {got:.3} V (target {v:.3} V)"))
            }
            "discharge" => {
                let v = parse_volts(args.first())?;
                let got = sys.try_discharge_to(v)?;
                Ok(format!("discharged to {got:.3} V (target {v:.3} V)"))
            }
            "break" => match args {
                ["en", id, rest @ ..] => {
                    let id = parse_u8(id)?;
                    let energy = match rest.first() {
                        Some(v) => Some(parse_volts(Some(v))?),
                        None => None,
                    };
                    let System { .. } = sys;
                    let now = sys.now();
                    let _ = now;
                    // Split borrows via the accessor pair:
                    let (edb, dev) = split_edb_device(sys)?;
                    edb.enable_breakpoint(dev, id, energy);
                    Ok(match energy {
                        Some(e) => format!("breakpoint {id} enabled below {e:.2} V (combined)"),
                        None => format!("breakpoint {id} enabled"),
                    })
                }
                ["dis", id] => {
                    let id = parse_u8(id)?;
                    let (edb, dev) = split_edb_device(sys)?;
                    edb.disable_breakpoint(dev, id);
                    Ok(format!("breakpoint {id} disabled"))
                }
                _ => cerr("usage: break en <id> [<volts>] | break dis <id>"),
            },
            "ebreak" => match args {
                ["en", v] => {
                    let v = parse_volts(Some(v))?;
                    sys.edb_mut().arm_energy_breakpoint(v);
                    Ok(format!("energy breakpoint armed at {v:.2} V"))
                }
                ["dis", v] => {
                    let v = parse_volts(Some(v))?;
                    sys.edb_mut().disarm_energy_breakpoint(v);
                    Ok(format!("energy breakpoint at {v:.2} V disarmed"))
                }
                _ => cerr("usage: ebreak en|dis <volts>"),
            },
            "watch" => match args {
                ["en", id] => {
                    let id = parse_u8(id)?;
                    sys.edb_mut().enable_watchpoint(id);
                    Ok(format!("watchpoint {id} enabled"))
                }
                ["dis", id] => {
                    let id = parse_u8(id)?;
                    sys.edb_mut().disable_watchpoint(id);
                    Ok(format!("watchpoint {id} disabled"))
                }
                _ => cerr("usage: watch en|dis <id>"),
            },
            "trace" => {
                let stream = args.first().copied().unwrap_or("energy");
                let tag = match stream {
                    "energy" => "energy",
                    "iobus" => "io",
                    "rfid" => "rfid",
                    "watchpoints" => "watchpoint",
                    "printf" => "printf",
                    other => return cerr(format!("unknown trace stream `{other}`")),
                };
                Ok(self.render_trace(sys, tag))
            }
            "read" => {
                let addr = parse_addr(args.first(), sys)?;
                let count = match args.get(1) {
                    Some(n) => parse_u16(Some(n))? as usize,
                    None => 1,
                };
                if sys.edb().is_none_or(|e| !e.session_active()) {
                    return cerr(
                        "read requires an active session (hit a breakpoint or assert first)",
                    );
                }
                let mut out = String::new();
                for k in 0..count.min(64) {
                    let a = addr.wrapping_add((k * 2) as u16);
                    match sys.read_word(a) {
                        Ok(v) => {
                            let _ = writeln!(out, "{a:#06x}: {v:#06x}");
                        }
                        Err(e) => return cerr(format!("read of {a:#06x} failed: {e}")),
                    }
                }
                Ok(out)
            }
            "write" => {
                let addr = parse_addr(args.first(), sys)?;
                let value = parse_u16(args.get(1))?;
                if sys.edb().is_none_or(|e| !e.session_active()) {
                    return cerr("write requires an active session");
                }
                match sys.write_word(addr, value) {
                    Ok(()) => Ok(format!("{addr:#06x} <- {value:#06x}")),
                    Err(e) => cerr(format!("write failed: {e}")),
                }
            }
            "run" => {
                let ms = parse_u16(args.first())? as u64;
                sys.run_for(SimTime::from_ms(ms));
                Ok(format!("ran {ms} ms (now {})", sys.now()))
            }
            "sym" => match args.first() {
                Some(name) => match sys.symbol(name) {
                    Some(addr) => Ok(format!("{name} = {addr:#06x}")),
                    None => cerr(format!("no symbol `{name}` in the flashed image")),
                },
                None => {
                    // No argument: list the application-level symbols.
                    let mut out = String::new();
                    for (name, addr) in sys.symbols() {
                        if !name.starts_with("__") && addr >= 0x4400 {
                            let _ = writeln!(out, "{addr:#06x} {name}");
                        }
                    }
                    Ok(out)
                }
            },
            "disasm" => {
                let addr = parse_addr(args.first(), sys)?;
                let count = match args.get(1) {
                    Some(n) => parse_u16(Some(n))? as usize,
                    None => 8,
                };
                // Disassemble from the device's *actual* memory (through
                // the debugger's image view), so corruption is visible.
                let mut bytes = Vec::with_capacity(count * 4);
                for k in 0..(count * 4) as u16 {
                    bytes.push(sys.device().mem().peek_byte(addr.wrapping_add(k)));
                }
                let listing = edb_mcu::asm::disassemble(&bytes, addr);
                let mut out = String::new();
                for (at, text) in listing.into_iter().take(count) {
                    let label = sys
                        .symbols()
                        .find(|&(_, a)| a == at)
                        .map(|(n, _)| format!("{n}:"))
                        .unwrap_or_default();
                    let _ = writeln!(out, "{at:#06x}  {text:<24} {label}");
                }
                Ok(out)
            }
            "where" => {
                if sys.edb().is_none_or(|e| !e.session_active()) {
                    return cerr("where requires an active session");
                }
                match sys.resume_pc() {
                    Ok(pc) => {
                        // Annotate with the nearest preceding symbol.
                        let nearest = sys
                            .symbols()
                            .filter(|&(n, a)| a <= pc && !n.starts_with('.') && a >= 0x4400)
                            .max_by_key(|&(_, a)| a);
                        Ok(match nearest {
                            Some((name, addr)) => {
                                format!("resume at {pc:#06x} ({name}+{:#x})", pc - addr)
                            }
                            None => format!("resume at {pc:#06x}"),
                        })
                    }
                    Err(e) => cerr(format!("target did not answer: {e}")),
                }
            }
            "resume" => {
                if sys.edb().is_none_or(|e| !e.session_active()) {
                    return cerr("no active session to resume from");
                }
                sys.try_resume()?;
                Ok("target resumed".to_string())
            }
            "status" => {
                let dev = sys.device();
                let mut out = String::new();
                let _ = writeln!(out, "time        : {}", dev.now());
                let _ = writeln!(out, "Vcap        : {:.3} V", dev.v_cap());
                let _ = writeln!(out, "Vreg        : {:.3} V", dev.v_reg());
                let _ = writeln!(out, "powered     : {}", dev.powered());
                let _ = writeln!(out, "reboots     : {}", dev.reboots());
                let _ = writeln!(out, "instructions: {}", dev.total_instructions());
                if let Some(edb) = sys.edb() {
                    let _ = writeln!(out, "session     : {}", edb.session_active());
                    let _ = writeln!(out, "events      : {}", edb.log().len());
                }
                Ok(out)
            }
            other => cerr(format!("unknown command `{other}` (try `help`)")),
        }
    }

    fn render_trace(&mut self, sys: &System, tag: &str) -> String {
        let Some(edb) = sys.edb() else {
            return "EDB not attached".to_string();
        };
        let events = edb.log().events();
        let mut out = String::new();
        for e in events.iter().skip(self.trace_cursor) {
            let matches = match tag {
                "io" => matches!(
                    e.event,
                    DebugEvent::Gpio { .. } | DebugEvent::UartByte { .. } | DebugEvent::I2c { .. }
                ),
                t => e.event.tag() == t,
            };
            if matches {
                let _ = writeln!(out, "{e}");
            }
        }
        self.trace_cursor = events.len();
        if out.is_empty() {
            out.push_str("(no new events)\n");
        }
        out
    }
}

fn split_edb_device(
    sys: &mut System,
) -> Result<(&mut crate::debugger::Edb, &mut edb_device::Device), ConsoleError> {
    // SAFETY-free split: go through the System's two accessors one at a
    // time is impossible with the borrow checker, so expose a combined
    // accessor on System instead.
    sys.edb_and_device().ok_or_else(|| ConsoleError {
        message: "EDB not attached".to_string(),
    })
}

fn parse_volts(tok: Option<&&str>) -> Result<f64, ConsoleError> {
    let Some(tok) = tok else {
        return cerr("missing voltage argument");
    };
    match tok.parse::<f64>() {
        Ok(v) if (0.0..=5.5).contains(&v) => Ok(v),
        Ok(v) => cerr(format!("voltage {v} out of range (0–5.5)")),
        Err(_) => cerr(format!("bad voltage `{tok}`")),
    }
}

fn parse_u8(tok: &str) -> Result<u8, ConsoleError> {
    tok.parse::<u8>().map_err(|_| ConsoleError {
        message: format!("bad id `{tok}`"),
    })
}

/// Parses an address argument: hex/decimal, or a symbol from the
/// flashed image.
fn parse_addr(tok: Option<&&str>, sys: &System) -> Result<u16, ConsoleError> {
    let Some(tok) = tok else {
        return cerr("missing address argument");
    };
    if let Some(addr) = sys.symbol(tok) {
        return Ok(addr);
    }
    parse_u16(Some(tok))
}

fn parse_u16(tok: Option<&&str>) -> Result<u16, ConsoleError> {
    let Some(tok) = tok else {
        return cerr("missing argument");
    };
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u16::from_str_radix(hex, 16)
    } else {
        tok.parse::<u16>()
    };
    parsed.map_err(|_| ConsoleError {
        message: format!("bad value `{tok}`"),
    })
}

const HELP: &str = "\
commands:
  charge <volts>          charge the target capacitor to a level
  discharge <volts>       discharge the target capacitor to a level
  break en <id> [<volts>] enable a code (or combined) breakpoint
  break dis <id>          disable a code breakpoint
  ebreak en|dis <volts>   arm/disarm an energy breakpoint
  watch en|dis <id>       enable/disable a watchpoint id
  trace <stream>          print new events: energy|iobus|rfid|watchpoints|printf
  read <addr> [<n>]       read target memory (active session only)
  write <addr> <value>    write target memory (active session only)
  sym [<name>]            resolve a symbol / list application symbols
  where                   show where execution will resume (active session)
  disasm <addr> [<n>]     disassemble target memory (addresses or symbols)
  run <ms>                advance the simulation
  resume                  restore energy and resume from a session
  status                  bench status
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libedb;
    use edb_device::DeviceConfig;
    use edb_mcu::asm::assemble;

    fn bench(app: &str) -> System {
        let image = assemble(&libedb::wrap_program(app)).expect("assembles");
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(edb_energy::TheveninSource::new(3.2, 1500.0))
            .build();
        sys.flash(&image);
        sys
    }

    const SPIN: &str = r#"
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            add r0, 1
            jmp loop
        .org 0xFFFE
        .word main
    "#;

    #[test]
    fn charge_discharge_round_trip() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let out = console.execute("charge 2.45", &mut sys).expect("charges");
        assert!(out.contains("charged to"), "{out}");
        let out = console
            .execute("discharge 2.0", &mut sys)
            .expect("discharges");
        assert!(out.contains("discharged to"), "{out}");
    }

    #[test]
    fn unknown_command_is_an_error() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let err = console.execute("frobnicate", &mut sys).unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn read_without_session_is_refused() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let err = console.execute("read 0x6000", &mut sys).unwrap_err();
        assert!(err.message.contains("session"));
    }

    #[test]
    fn status_reports_bench_state() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let out = console.execute("status", &mut sys).expect("status");
        assert!(out.contains("Vcap"));
        assert!(out.contains("powered"));
    }

    #[test]
    fn trace_prints_only_new_events() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        console.execute("charge 2.45", &mut sys).expect("charge");
        console.execute("run 10", &mut sys).expect("run");
        let first = console.execute("trace energy", &mut sys).expect("trace");
        assert!(first.contains("EnergySample"), "{first}");
        let second = console.execute("trace energy", &mut sys).expect("trace");
        assert!(second.contains("no new events"));
    }

    #[test]
    fn watch_and_break_commands_parse() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        assert!(console.execute("watch en 2", &mut sys).is_ok());
        assert!(console.execute("watch dis 2", &mut sys).is_ok());
        assert!(console.execute("break en 1", &mut sys).is_ok());
        assert!(console.execute("break en 2 2.3", &mut sys).is_ok());
        assert!(console.execute("break dis 1", &mut sys).is_ok());
        assert!(console.execute("ebreak en 2.2", &mut sys).is_ok());
        assert!(console.execute("ebreak dis 2.2", &mut sys).is_ok());
    }

    #[test]
    fn sym_resolves_and_lists() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let out = console.execute("sym main", &mut sys).expect("sym");
        assert!(out.contains("0x4400"), "{out}");
        let err = console.execute("sym nonsense", &mut sys).unwrap_err();
        assert!(err.message.contains("nonsense"));
        let listing = console.execute("sym", &mut sys).expect("list");
        assert!(listing.contains("main"));
        assert!(!listing.contains("__edb_service_loop"), "internals hidden");
    }

    #[test]
    fn disasm_shows_target_memory() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let out = console.execute("disasm main 4", &mut sys).expect("disasm");
        assert!(out.contains("movi sp, 0x2400"), "{out}");
        assert!(out.contains("main:"), "label annotation: {out}");
        let out = console
            .execute("disasm 0x4400 2", &mut sys)
            .expect("hex ok");
        assert!(out.contains("0x4400"));
    }

    #[test]
    fn where_requires_session_and_reports_resume_point() {
        // An app that asserts immediately so a session opens.
        let mut sys = bench(
            r#"
            .org 0x4400
            main:
                movi sp, 0x2400
                movi r0, 1
                call __edb_assert_fail
                halt
            .org 0xFFFE
            .word main
            "#,
        );
        let mut console = Console::new();
        let err = console.execute("where", &mut sys).unwrap_err();
        assert!(err.message.contains("session"));
        console.execute("charge 2.45", &mut sys).expect("charge");
        assert!(sys.run_until(edb_energy::SimTime::from_ms(200), |s| s
            .edb()
            .is_some_and(|e| e.session_active())));
        let out = console.execute("where", &mut sys).expect("where");
        assert!(out.contains("resume at"), "{out}");
        // The immediate resume point is inside the assert shim (which
        // then returns into main).
        assert!(out.contains("__edb_assert_fail+"), "symbolized: {out}");
    }

    #[test]
    fn help_lists_table_one_commands() {
        let mut sys = bench(SPIN);
        let mut console = Console::new();
        let out = console.execute("help", &mut sys).expect("help");
        for cmd in [
            "charge",
            "discharge",
            "break",
            "watch",
            "trace",
            "read",
            "write",
        ] {
            assert!(out.contains(cmd), "help missing {cmd}");
        }
    }
}
