//! The debugger's time-stamped event log.
//!
//! Everything EDB observes or does lands here: energy samples, watchpoint
//! hits, I/O activity, RFID messages, assert/breakpoint sessions, energy
//! guard entries and exits, printf lines. The experiment harnesses read
//! this log to regenerate the paper's figures; the console prints from it
//! in "trace" mode.

use edb_energy::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One observation or action, without its timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DebugEvent {
    /// A passive energy sample (the `Vcap` stream).
    EnergySample {
        /// ADC reading converted to volts.
        v_cap: f64,
        /// Regulated-rail reading, volts.
        v_reg: f64,
    },
    /// A watchpoint (code-marker pulse) decoded from the marker lines.
    Watchpoint {
        /// Watchpoint ID, 1–3 with two marker lines.
        id: u8,
        /// Energy snapshot taken with the pulse, volts.
        v_cap: f64,
    },
    /// The target reported a failed assertion and was tethered alive.
    AssertFailed {
        /// Assertion site ID.
        id: u8,
    },
    /// An internal breakpoint triggered and opened a session.
    BreakpointHit {
        /// Breakpoint ID.
        id: u8,
        /// Energy at the hit, volts.
        v_cap: f64,
    },
    /// An energy breakpoint (threshold crossing) fired.
    EnergyBreakpoint {
        /// The armed threshold, volts.
        threshold: f64,
        /// The reading that crossed it, volts.
        v_cap: f64,
    },
    /// The target entered an energy-guarded region; EDB tethered it.
    GuardEnter {
        /// Saved (pre-guard) level, volts, as measured by EDB's ADC.
        saved_v: f64,
    },
    /// The target left the guarded region; EDB restored the saved level.
    GuardExit {
        /// The level EDB restored to (ADC reading after discharge).
        restored_v: f64,
    },
    /// A complete `printf` line arrived over the debug UART.
    Printf {
        /// The line, without the trailing newline.
        line: String,
    },
    /// A byte was observed on the target-powered user UART.
    UartByte {
        /// The byte.
        byte: u8,
    },
    /// An I²C transaction was observed on the monitored bus.
    I2c {
        /// Transaction summary (sample values).
        x: i16,
        /// Y axis.
        y: i16,
        /// Z axis.
        z: i16,
    },
    /// A GPIO pin change was observed.
    Gpio {
        /// Previous latch.
        old: u16,
        /// New latch.
        new: u16,
    },
    /// An RFID message crossed the monitored RF lines.
    Rfid {
        /// The paper-style label (`CMD_QUERY`, `RSP_GENERIC`, ...), or
        /// `CORRUPT` when EDB's decoder rejects the frame.
        label: String,
        /// `true` for reader→tag.
        downlink: bool,
        /// Whether EDB's decoder validated the frame.
        valid: bool,
    },
    /// An interactive session opened (assert, breakpoint, or console).
    SessionOpened {
        /// Why the session opened.
        reason: String,
    },
    /// The interactive session closed and the target resumed.
    SessionClosed {
        /// The level EDB restored to before releasing the target (ADC
        /// reading), volts.
        restored_v: f64,
    },
    /// A charge/discharge operation completed.
    LevelReached {
        /// The requested target, volts.
        target: f64,
        /// The ADC reading at completion, volts.
        v_cap: f64,
    },
    /// The target CPU faulted (observable as the device wedging).
    TargetFault {
        /// Description of the fault.
        description: String,
    },
    /// The device browned out.
    BrownOut,
    /// The device turned on.
    TurnOn,
    /// A framed debug command was re-sent (timeout or corrupt reply).
    CommandRetry {
        /// The command (`READ`, `WRITE`, `GET_PC`).
        cmd: String,
        /// Which send attempt this is (2 = first retry).
        attempt: u32,
    },
    /// A framed debug command gave up and surfaced a typed error.
    CommandAborted {
        /// The command.
        cmd: String,
        /// The rendered [`crate::EdbError`].
        error: String,
    },
    /// An interactive session was torn down without a clean resume (the
    /// target browned out mid-session).
    SessionAborted {
        /// Why the session could not continue.
        reason: String,
    },
}

impl DebugEvent {
    /// A short stable tag for filtering (`energy`, `watchpoint`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            DebugEvent::EnergySample { .. } => "energy",
            DebugEvent::Watchpoint { .. } => "watchpoint",
            DebugEvent::AssertFailed { .. } => "assert",
            DebugEvent::BreakpointHit { .. } => "breakpoint",
            DebugEvent::EnergyBreakpoint { .. } => "energy-breakpoint",
            DebugEvent::GuardEnter { .. } => "guard-enter",
            DebugEvent::GuardExit { .. } => "guard-exit",
            DebugEvent::Printf { .. } => "printf",
            DebugEvent::UartByte { .. } => "uart",
            DebugEvent::I2c { .. } => "i2c",
            DebugEvent::Gpio { .. } => "gpio",
            DebugEvent::Rfid { .. } => "rfid",
            DebugEvent::SessionOpened { .. } => "session-open",
            DebugEvent::SessionClosed { .. } => "session-close",
            DebugEvent::LevelReached { .. } => "level",
            DebugEvent::TargetFault { .. } => "fault",
            DebugEvent::BrownOut => "brown-out",
            DebugEvent::TurnOn => "turn-on",
            DebugEvent::CommandRetry { .. } => "cmd-retry",
            DebugEvent::CommandAborted { .. } => "cmd-abort",
            DebugEvent::SessionAborted { .. } => "session-abort",
        }
    }

    /// A one-line human-readable label — what the observability
    /// exporters show as the event name on a timeline track.
    pub fn label(&self) -> String {
        match self {
            DebugEvent::EnergySample { v_cap, .. } => format!("energy {v_cap:.3} V"),
            DebugEvent::Watchpoint { id, v_cap } => format!("watchpoint {id} @ {v_cap:.3} V"),
            DebugEvent::AssertFailed { id } => format!("assert {id}"),
            DebugEvent::BreakpointHit { id, v_cap } => format!("breakpoint {id} @ {v_cap:.3} V"),
            DebugEvent::EnergyBreakpoint { threshold, v_cap } => {
                format!("energy-breakpoint {threshold:.3} V (read {v_cap:.3} V)")
            }
            DebugEvent::GuardEnter { saved_v } => format!("guard-enter {saved_v:.3} V"),
            DebugEvent::GuardExit { restored_v } => format!("guard-exit {restored_v:.3} V"),
            DebugEvent::Printf { line } => format!("printf: {line}"),
            DebugEvent::UartByte { byte } => format!("uart {byte:#04x}"),
            DebugEvent::I2c { x, y, z } => format!("i2c ({x}, {y}, {z})"),
            DebugEvent::Gpio { old, new } => format!("gpio {old:#06x} -> {new:#06x}"),
            DebugEvent::Rfid {
                label,
                downlink,
                valid,
            } => format!(
                "{} {label}{}",
                if *downlink { "rfid-down" } else { "rfid-up" },
                if *valid { "" } else { " (invalid)" }
            ),
            DebugEvent::SessionOpened { reason } => format!("session open: {reason}"),
            DebugEvent::SessionClosed { restored_v } => {
                format!("session close ({restored_v:.3} V)")
            }
            DebugEvent::LevelReached { target, v_cap } => {
                format!("level {target:.3} V (read {v_cap:.3} V)")
            }
            DebugEvent::TargetFault { description } => format!("fault: {description}"),
            DebugEvent::BrownOut => "brown-out".to_string(),
            DebugEvent::TurnOn => "turn-on".to_string(),
            DebugEvent::CommandRetry { cmd, attempt } => format!("{cmd} retry #{attempt}"),
            DebugEvent::CommandAborted { cmd, error } => format!("{cmd} aborted: {error}"),
            DebugEvent::SessionAborted { reason } => format!("session abort: {reason}"),
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: DebugEvent,
}

impl fmt::Display for LoggedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:?}", self.at.to_string(), self.event)
    }
}

// A logged debugger event *is* a trace event mark; the conversions let
// harnesses pin log entries directly onto energy traces (and the
// observability exporters reuse the same type, re-exported as
// `edb_obs::EventMark`).
impl From<&LoggedEvent> for edb_obs::EventMark {
    fn from(e: &LoggedEvent) -> Self {
        edb_obs::EventMark {
            at: e.at,
            label: e.event.label(),
        }
    }
}

impl From<LoggedEvent> for edb_obs::EventMark {
    fn from(e: LoggedEvent) -> Self {
        (&e).into()
    }
}

/// The append-only event log.
///
/// # Example
///
/// ```
/// use edb_core::events::{DebugEvent, EventLog};
/// use edb_energy::SimTime;
/// let mut log = EventLog::new();
/// log.push(SimTime::from_ms(1), DebugEvent::Watchpoint { id: 1, v_cap: 2.2 });
/// log.push(SimTime::from_ms(2), DebugEvent::BrownOut);
/// assert_eq!(log.with_tag("watchpoint").count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<LoggedEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event at `at`.
    pub fn push(&mut self, at: SimTime, event: DebugEvent) {
        self.events.push(LoggedEvent { at, event });
    }

    /// All events in arrival order.
    pub fn events(&self) -> &[LoggedEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a tag (see [`DebugEvent::tag`]).
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a LoggedEvent> + 'a {
        self.events.iter().filter(move |e| e.event.tag() == tag)
    }

    /// Events within the half-open time window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &LoggedEvent> {
        self.events
            .iter()
            .filter(move |e| e.at >= from && e.at < to)
    }

    /// All printf lines in order.
    pub fn printf_lines(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match &e.event {
                DebugEvent::Printf { line } => Some(line.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Timestamps of watchpoint hits for a given ID, with their energy
    /// snapshots — the raw material of the paper's Figure 11 profile.
    pub fn watchpoint_hits(&self, id: u8) -> Vec<(SimTime, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e.event {
                DebugEvent::Watchpoint { id: got, v_cap } if got == id => Some((e.at, v_cap)),
                _ => None,
            })
            .collect()
    }

    /// Drops all events (the console's implicit behaviour when switching
    /// trace streams).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_filter() {
        let mut log = EventLog::new();
        log.push(SimTime::from_ms(1), DebugEvent::TurnOn);
        log.push(
            SimTime::from_ms(2),
            DebugEvent::Watchpoint { id: 2, v_cap: 2.0 },
        );
        log.push(SimTime::from_ms(3), DebugEvent::BrownOut);
        assert_eq!(log.len(), 3);
        assert_eq!(log.with_tag("watchpoint").count(), 1);
        assert_eq!(log.with_tag("brown-out").count(), 1);
    }

    #[test]
    fn window_is_half_open() {
        let mut log = EventLog::new();
        for ms in [1u64, 2, 3, 4] {
            log.push(SimTime::from_ms(ms), DebugEvent::BrownOut);
        }
        let n = log.window(SimTime::from_ms(2), SimTime::from_ms(4)).count();
        assert_eq!(n, 2);
    }

    #[test]
    fn printf_lines_extracted_in_order() {
        let mut log = EventLog::new();
        log.push(
            SimTime::from_ms(1),
            DebugEvent::Printf { line: "a=1".into() },
        );
        log.push(
            SimTime::from_ms(2),
            DebugEvent::Printf { line: "a=2".into() },
        );
        assert_eq!(log.printf_lines(), vec!["a=1", "a=2"]);
    }

    #[test]
    fn watchpoint_hits_capture_energy() {
        let mut log = EventLog::new();
        log.push(
            SimTime::from_ms(5),
            DebugEvent::Watchpoint { id: 1, v_cap: 2.3 },
        );
        log.push(
            SimTime::from_ms(6),
            DebugEvent::Watchpoint { id: 2, v_cap: 2.1 },
        );
        let hits = log.watchpoint_hits(1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 2.3);
    }

    #[test]
    fn every_event_has_a_tag() {
        // Compile-time-ish exhaustiveness: a few spot checks.
        assert_eq!(
            DebugEvent::SessionClosed { restored_v: 2.3 }.tag(),
            "session-close"
        );
        assert_eq!(
            DebugEvent::Rfid {
                label: "CMD_QUERY".into(),
                downlink: true,
                valid: true
            }
            .tag(),
            "rfid"
        );
    }
}
