//! Fleet simulation: N reduced-order tags under one Gen2 reader cell.
//!
//! [`System`](crate::System) wires *one* full device to one reader for
//! instruction-level debugging. `FleetSim` is its population-scale
//! sibling: a [`Fleet`] of analytic tags (struct-of-arrays, closed-form
//! RC spans) driven slot-by-slot by a [`Gen2Reader`] with Q-slot
//! collision arbitration. Collided slots yield no EPC and push `q` up;
//! empty slots pull it down; a clean single completes the RN16 → Ack →
//! EPC handshake and sets the tag's inventoried flag (until brown-out
//! clears it, as volatile state loss must).
//!
//! Determinism contract: all randomness — slot draws, placement jitter,
//! reply corruption — comes from per-tag SplitMix64 streams keyed by
//! `(cell seed, global tag index)`, and a *cell* is a fixed unit of
//! `ceil(N / cell_size)` derived only from N. Executing cells in any
//! order on any number of threads and merging [`FleetCellStats`] in
//! cell order reproduces a serial run bit-for-bit.

use edb_device::fleet::splitmix64;
use edb_device::fleet::{Fleet, TagMode, TagParams};
use edb_energy::SimTime;
use edb_rfid::gen2::{Gen2Reader, Gen2Stats, Gen2Timing, QParams, SlotOutcome};
use edb_rfid::message::Command;
use serde::{Deserialize, Serialize};

/// Air bytes of an RN16 backscatter (the slot-claiming handshake half).
const RN16_BYTES: usize = 2;
/// Air bytes of the reader's Ack.
const ACK_BYTES: usize = 3;
/// Air bytes of the EPC reply (PC + EPC-96 + CRC-16).
const EPC_BYTES: usize = 12;

/// Configuration of a fleet trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Total tags across the whole fleet (all cells).
    pub n_tags: usize,
    /// Per-tag electrical parameters.
    pub tag: TagParams,
    /// Q algorithm parameters.
    pub q: QParams,
    /// Air-interface timing.
    pub timing: Gen2Timing,
    /// Gen2 session number carried in commands.
    pub session: u8,
    /// Nearest tag distance (m).
    pub d_min: f64,
    /// Farthest tag distance (m).
    pub d_max: f64,
    /// Seeded placement jitter amplitude (m, peak-to-peak).
    pub jitter_m: f64,
    /// Per-bit error rate of the backscatter link at the reference
    /// distance; a reply corrupts with probability
    /// `min(0.9, ber · bits · (d/d_ref)²)`.
    pub ber_ref: f64,
    /// Simulated carrier time per cell.
    pub duration: SimTime,
    /// Record a [`FleetEvent`] per round and slot (tests and
    /// interactive sessions; benchmarks leave it off).
    pub record_events: bool,
}

impl FleetConfig {
    /// A warehouse-shelf default: tags spread over 0.4–1.35 m with a
    /// little placement jitter, adaptive Q, dense-reader timing, 2 s of
    /// carrier per cell.
    pub fn standard(n_tags: usize) -> Self {
        FleetConfig {
            n_tags,
            tag: TagParams::wisp5(),
            q: QParams::adaptive(),
            timing: Gen2Timing::dense_reader(),
            session: 0,
            d_min: 0.4,
            d_max: 1.35,
            jitter_m: 0.05,
            ber_ref: 2e-4,
            duration: SimTime::from_secs(2),
            record_events: false,
        }
    }

    /// Distance of global tag `g` — a pure function of the trial seed
    /// and the fleet geometry, independent of sharding. Tags are spread
    /// evenly over `[d_min, d_max]` with a seeded jitter.
    pub fn distance_of(&self, seed: u64, g: usize) -> f64 {
        let base = if self.n_tags <= 1 {
            0.5 * (self.d_min + self.d_max)
        } else {
            self.d_min + (self.d_max - self.d_min) * g as f64 / (self.n_tags - 1) as f64
        };
        let mut s = seed ^ (g as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        (base + (u - 0.5) * self.jitter_m).max(0.05)
    }

    /// Probability a reply from distance `d` arrives corrupt.
    pub fn corrupt_probability(&self, d: f64) -> f64 {
        let bits = (8 * EPC_BYTES) as f64;
        let scale = (d / self.tag.d_ref) * (d / self.tag.d_ref);
        (self.ber_ref * bits * scale).min(0.9)
    }
}

/// One entry of the (optional) per-slot event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A round opened (`Query`, or `QueryAdjust` when `adjust`).
    Round {
        /// Carrier time at the opening command.
        t: SimTime,
        /// Slot-count exponent of the round.
        q: u8,
        /// True when the round was opened by a mid-round `QueryAdjust`.
        adjust: bool,
    },
    /// A slot was arbitrated.
    Slot {
        /// Carrier time at slot end.
        t: SimTime,
        /// What the reader heard.
        outcome: SlotOutcome,
        /// Global index of the tag read (singles only).
        tag: Option<usize>,
    },
}

/// Mergeable per-cell results. Merging in cell order is associative
/// and reproduces the serial totals exactly (integer counts, and f64
/// sums taken in fixed cell order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetCellStats {
    /// Protocol counters from the cell's reader.
    pub gen2: Gen2Stats,
    /// Tags simulated in the cell.
    pub tags: u64,
    /// Distinct tags read at least once.
    pub unique_tags_read: u64,
    /// Σ powered-time × clock across the cell's tags.
    pub tag_cycles: f64,
    /// Brown-out → turn-on cycles across the cell.
    pub power_cycles: u64,
    /// Tags powered when the cell's run ended.
    pub powered_at_end: u64,
    /// Simulated carrier seconds the cell consumed.
    pub sim_seconds: f64,
    /// Lowest `q` any cell's reader used.
    pub q_lo: u8,
    /// Highest `q` any cell's reader used.
    pub q_hi: u8,
}

impl FleetCellStats {
    /// Folds `other` (the next cell in order) into this.
    pub fn merge(&mut self, other: &FleetCellStats) {
        self.gen2.merge(&other.gen2);
        // A default (zero-tag) accumulator adopts the first real range.
        if self.tags == 0 {
            self.q_lo = other.q_lo;
            self.q_hi = other.q_hi;
        } else {
            self.q_lo = self.q_lo.min(other.q_lo);
            self.q_hi = self.q_hi.max(other.q_hi);
        }
        self.tags += other.tags;
        self.unique_tags_read += other.unique_tags_read;
        self.tag_cycles += other.tag_cycles;
        self.power_cycles += other.power_cycles;
        self.powered_at_end += other.powered_at_end;
        self.sim_seconds += other.sim_seconds;
    }
}

/// Point-in-time view of one tag, for interactive inspection
/// (`fleet_status` over the debug-service RPC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagStatus {
    /// Global tag index.
    pub index: usize,
    /// Reader distance (m).
    pub distance_m: f64,
    /// Capacitor voltage (V).
    pub v_cap: f64,
    /// True when powered.
    pub powered: bool,
    /// Session inventoried flag.
    pub inventoried: bool,
    /// Ever read during this run (survives brown-out).
    pub ever_read: bool,
    /// Brown-out cycles survived.
    pub power_cycles: u32,
    /// Powered seconds accumulated.
    pub active_secs: f64,
}

/// One reader cell: a contiguous range of the fleet under its own
/// Gen2 reader, simulated slot-by-slot.
#[derive(Debug, Clone)]
pub struct FleetSim {
    config: FleetConfig,
    fleet: Fleet,
    reader: Gen2Reader,
    global_base: usize,
    distances: Vec<f64>,
    ever_read: Vec<bool>,
    now: SimTime,
    round_open: bool,
    slots_left: u32,
    events: Vec<FleetEvent>,
}

impl FleetSim {
    /// Builds the cell covering global tags
    /// `global_base .. global_base + n_local` with the given cell seed.
    pub fn new_cell(config: FleetConfig, global_base: usize, n_local: usize, seed: u64) -> Self {
        let distances: Vec<f64> = (0..n_local)
            .map(|i| config.distance_of(seed, global_base + i))
            .collect();
        let d = distances.clone();
        let fleet = Fleet::new(config.tag, global_base, n_local, seed, move |g| {
            d[g - global_base]
        });
        FleetSim {
            config,
            fleet,
            reader: Gen2Reader::new(config.timing, config.session, config.q),
            global_base,
            distances,
            ever_read: vec![false; n_local],
            now: SimTime::ZERO,
            round_open: false,
            slots_left: 0,
            events: Vec::new(),
        }
    }

    /// Builds the whole fleet as one cell (interactive use).
    pub fn new(config: FleetConfig, seed: u64) -> Self {
        Self::new_cell(config, 0, config.n_tags, seed)
    }

    /// Simulated carrier time elapsed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cell's reader (protocol counters, current q).
    pub fn reader(&self) -> &Gen2Reader {
        &self.reader
    }

    /// The recorded event log (empty unless `record_events`).
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Runs until at least `duration` of carrier time has elapsed
    /// (finishes the in-flight slot).
    pub fn run(&mut self) {
        let until = self.config.duration;
        while self.now < until {
            self.step_slot();
        }
    }

    /// Advances the simulation by exactly one arbitrated slot,
    /// opening/reopening rounds as the reader demands.
    pub fn step_slot(&mut self) {
        if !self.round_open || self.slots_left == 0 {
            self.open_round();
        }
        // A QueryRep separates every slot after the round's first.
        let opening = self.slots_left == (1u32 << self.reader.q());
        if !opening {
            let cmd = self.reader.next_slot();
            self.put_on_air(&cmd);
        }
        self.slots_left -= 1;

        let responders = self.fleet.slot_responders();
        let outcome = match responders.len() {
            0 => {
                self.advance(self.config.timing.empty_slot_timeout);
                SlotOutcome::Empty
            }
            1 => {
                let i = responders[0];
                // RN16 → Ack → EPC: the full handshake rides the air
                // whether or not the EPC survives the channel.
                let air = self
                    .config
                    .timing
                    .air_time(RN16_BYTES + ACK_BYTES + EPC_BYTES);
                self.advance(air);
                let p = self.config.corrupt_probability(self.distances[i]);
                let corrupt = self.fleet.draw_unit(i) < p;
                self.fleet.complete_reply(i, air, !corrupt);
                if corrupt {
                    SlotOutcome::Corrupt
                } else {
                    self.ever_read[i] = true;
                    SlotOutcome::Single
                }
            }
            _ => {
                // Overlapping RN16s, then silence: the reader cannot
                // ACK what it cannot decode.
                let air = self.config.timing.air_time(RN16_BYTES);
                self.advance(air);
                self.advance(self.config.timing.empty_slot_timeout);
                let q = self.reader.q();
                for &i in &responders {
                    self.fleet.complete_reply(i, air, false);
                    if self.fleet.mode(i) == TagMode::On {
                        self.fleet.redraw_after_collision(i, q);
                    }
                }
                SlotOutcome::Collision
            }
        };
        self.fleet.advance_slot();
        let restart = self.reader.report_slot(outcome);
        if self.config.record_events {
            self.events.push(FleetEvent::Slot {
                t: self.now,
                outcome,
                tag: match (outcome, responders.as_slice()) {
                    (SlotOutcome::Single, [i]) => Some(self.global_base + i),
                    _ => None,
                },
            });
        }
        if restart {
            self.slots_left = 0;
        }
    }

    fn open_round(&mut self) {
        let (cmd, slots) = self.reader.open_round();
        let adjust = matches!(cmd, Command::QueryAdjust { .. });
        self.put_on_air(&cmd);
        self.fleet.begin_round(self.reader.q());
        self.round_open = true;
        self.slots_left = slots;
        if self.config.record_events {
            self.events.push(FleetEvent::Round {
                t: self.now,
                q: self.reader.q(),
                adjust,
            });
        }
    }

    fn put_on_air(&mut self, cmd: &Command) {
        let air = self.config.timing.air_time(cmd.encode().len());
        self.advance(air);
    }

    fn advance(&mut self, span: SimTime) {
        self.fleet.advance_span(span);
        self.now = SimTime::from_ns(self.now.as_ns() + span.as_ns());
    }

    /// Snapshot of one tag by *global* index (None when the tag lives
    /// in another cell).
    pub fn tag_status(&self, global: usize) -> Option<TagStatus> {
        let i = global.checked_sub(self.global_base)?;
        if i >= self.fleet.len() {
            return None;
        }
        Some(TagStatus {
            index: global,
            distance_m: self.distances[i],
            v_cap: self.fleet.v_cap(i),
            powered: self.fleet.mode(i) == TagMode::On,
            inventoried: self.fleet.inventoried(i),
            ever_read: self.ever_read[i],
            power_cycles: self.fleet.power_cycles(i),
            active_secs: self.fleet.active_secs(i),
        })
    }

    /// The cell's mergeable results so far.
    pub fn stats(&self) -> FleetCellStats {
        let (q_lo, q_hi) = self.reader.q_range_seen();
        FleetCellStats {
            gen2: self.reader.stats(),
            tags: self.fleet.len() as u64,
            unique_tags_read: self.ever_read.iter().filter(|b| **b).count() as u64,
            tag_cycles: self.fleet.tag_cycles(),
            power_cycles: (0..self.fleet.len())
                .map(|i| u64::from(self.fleet.power_cycles(i)))
                .sum(),
            powered_at_end: self.fleet.powered_count() as u64,
            sim_seconds: self.now.as_secs_f64(),
            q_lo,
            q_hi,
        }
    }
}

/// An independently written scalar single-tag simulation of the same
/// spec — plain locals, no struct-of-arrays, no [`Fleet`].
///
/// The fleet equivalence proptest holds `FleetSim` with `n_tags = 1`
/// to this function's event stream: any drift between the vectorized
/// span-advance path and a straightforward scalar implementation shows
/// up as a diverging event.
pub fn single_tag_reference(config: FleetConfig, seed: u64) -> Vec<FleetEvent> {
    use edb_energy::{rc_advance, rc_time_to};
    assert_eq!(config.n_tags, 1, "reference models exactly one tag");
    let p = config.tag;
    let tau = p.r_src * p.capacitance;
    let d = config.distance_of(seed, 0);
    let v_oc = p.v_oc_ref * p.d_ref / d;
    let p_corrupt = config.corrupt_probability(d);

    // Tag state: scalar mirror of the SoA vectors.
    let mut v = p.v_off;
    let mut on = false;
    let mut slot: Option<u32> = None;
    let mut inventoried = false;
    let mut rng = {
        let mut s = seed ^ 0u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s);
        s
    };

    let mut reader = Gen2Reader::new(config.timing, config.session, config.q);
    let mut events = Vec::new();
    let mut now = SimTime::ZERO;
    let mut slots_left = 0u32;

    // Scalar span advance with threshold crossings.
    let advance = |v: &mut f64,
                   on: &mut bool,
                   slot: &mut Option<u32>,
                   inventoried: &mut bool,
                   now: &mut SimTime,
                   span: SimTime| {
        let mut remaining = span.as_secs_f64();
        while remaining > 0.0 {
            if *on {
                let v_inf = v_oc - p.i_listen * p.r_src;
                match rc_time_to(*v, v_inf, tau, p.v_off) {
                    Some(t) if t <= remaining => {
                        *v = p.v_off;
                        *on = false;
                        *slot = None;
                        *inventoried = false;
                        remaining -= t;
                    }
                    _ => {
                        *v = rc_advance(*v, v_inf, tau, remaining);
                        remaining = 0.0;
                    }
                }
            } else {
                match rc_time_to(*v, v_oc, tau, p.v_on) {
                    Some(t) if t <= remaining => {
                        *v = p.v_on;
                        *on = true;
                        *slot = None;
                        remaining -= t;
                    }
                    _ => {
                        *v = rc_advance(*v, v_oc, tau, remaining);
                        remaining = 0.0;
                    }
                }
            }
        }
        *now = SimTime::from_ns(now.as_ns() + span.as_ns());
    };

    while now < config.duration {
        if slots_left == 0 {
            let (cmd, slots) = reader.open_round();
            let adjust = matches!(cmd, Command::QueryAdjust { .. });
            let air = config.timing.air_time(cmd.encode().len());
            advance(&mut v, &mut on, &mut slot, &mut inventoried, &mut now, air);
            slot = if on && !inventoried {
                let mask = (1u64 << reader.q()) - 1;
                Some((splitmix64(&mut rng) & mask) as u32)
            } else {
                None
            };
            slots_left = slots;
            events.push(FleetEvent::Round {
                t: now,
                q: reader.q(),
                adjust,
            });
        }
        let opening = slots_left == (1u32 << reader.q());
        if !opening {
            let cmd = reader.next_slot();
            let air = config.timing.air_time(cmd.encode().len());
            advance(&mut v, &mut on, &mut slot, &mut inventoried, &mut now, air);
        }
        slots_left -= 1;

        let outcome = if slot == Some(0) {
            let air = config.timing.air_time(RN16_BYTES + ACK_BYTES + EPC_BYTES);
            advance(&mut v, &mut on, &mut slot, &mut inventoried, &mut now, air);
            let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            let corrupt = u < p_corrupt;
            v = (v - p.i_tx * air.as_secs_f64() / p.capacitance).max(0.0);
            if !corrupt {
                inventoried = true;
            }
            slot = None;
            if v < p.v_off {
                on = false;
                slot = None;
                inventoried = false;
            }
            if corrupt {
                SlotOutcome::Corrupt
            } else {
                SlotOutcome::Single
            }
        } else {
            advance(
                &mut v,
                &mut on,
                &mut slot,
                &mut inventoried,
                &mut now,
                config.timing.empty_slot_timeout,
            );
            SlotOutcome::Empty
        };
        slot = match slot {
            Some(0) | None => None,
            Some(n) => Some(n - 1),
        };
        let restart = reader.report_slot(outcome);
        events.push(FleetEvent::Slot {
            t: now,
            outcome,
            tag: (outcome == SlotOutcome::Single).then_some(0),
        });
        if restart {
            slots_left = 0;
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_inventories_most_of_a_small_population() {
        let mut cfg = FleetConfig::standard(50);
        cfg.duration = SimTime::from_secs(3);
        let mut sim = FleetSim::new(cfg, 42);
        sim.run();
        let stats = sim.stats();
        assert_eq!(stats.tags, 50);
        assert!(
            stats.unique_tags_read >= 25,
            "expected most near tags read: {stats:?}"
        );
        assert!(stats.gen2.epcs_read >= stats.unique_tags_read);
        assert!(stats.tag_cycles > 0.0);
        assert!(stats.sim_seconds >= 3.0);
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let cfg = FleetConfig::standard(30);
        let mut a = FleetSim::new(cfg, 7);
        let mut b = FleetSim::new(cfg, 7);
        a.run();
        b.run();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.stats().tag_cycles.to_bits(),
            b.stats().tag_cycles.to_bits()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FleetConfig::standard(30);
        let mut a = FleetSim::new(cfg, 7);
        let mut b = FleetSim::new(cfg, 8);
        a.run();
        b.run();
        assert_ne!(a.stats(), b.stats());
    }

    #[test]
    fn cell_split_matches_monolithic_run() {
        // Two cells of 25 must together equal... nothing directly —
        // each cell has its own reader. What must hold: running cell 1
        // alone equals running cell 1 after cell 0 (no cross-cell
        // state), and tag streams key off global indices.
        let cfg = FleetConfig::standard(50);
        let mut alone = FleetSim::new_cell(cfg, 25, 25, 99);
        alone.run();
        let mut after = FleetSim::new_cell(cfg, 25, 25, 99);
        let mut first = FleetSim::new_cell(cfg, 0, 25, 31);
        first.run();
        after.run();
        assert_eq!(alone.stats(), after.stats());
        let _ = first.stats();
    }

    #[test]
    fn tag_status_reports_by_global_index() {
        let cfg = FleetConfig::standard(10);
        let mut sim = FleetSim::new_cell(cfg, 4, 3, 5);
        sim.run();
        assert!(sim.tag_status(3).is_none());
        assert!(sim.tag_status(7).is_none());
        let s = sim.tag_status(5).expect("in range");
        assert_eq!(s.index, 5);
        assert!(s.distance_m > 0.0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let cfg = FleetConfig::standard(20);
        let mut a = FleetSim::new_cell(cfg, 0, 10, 1);
        let mut b = FleetSim::new_cell(cfg, 10, 10, 2);
        a.run();
        b.run();
        let (sa, sb) = (a.stats(), b.stats());
        let mut merged = sa;
        merged.merge(&sb);
        assert_eq!(merged.tags, 20);
        assert_eq!(merged.gen2.epcs_read, sa.gen2.epcs_read + sb.gen2.epcs_read);
        assert_eq!(
            merged.tag_cycles.to_bits(),
            (sa.tag_cycles + sb.tag_cycles).to_bits()
        );
    }

    #[test]
    fn event_log_records_rounds_and_slots() {
        let mut cfg = FleetConfig::standard(5);
        cfg.duration = SimTime::from_ms(200);
        cfg.record_events = true;
        let mut sim = FleetSim::new(cfg, 3);
        sim.run();
        let events = sim.events();
        assert!(events.iter().any(|e| matches!(e, FleetEvent::Round { .. })));
        assert!(events.iter().any(|e| matches!(e, FleetEvent::Slot { .. })));
        // Timestamps never go backwards.
        let mut last = SimTime::ZERO;
        for e in events {
            let t = match e {
                FleetEvent::Round { t, .. } | FleetEvent::Slot { t, .. } => *t,
            };
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn reference_and_fleet_agree_on_one_tag() {
        // The dedicated proptest fuzzes this; pin one case here too.
        let mut cfg = FleetConfig::standard(1);
        cfg.duration = SimTime::from_ms(500);
        cfg.record_events = true;
        let mut sim = FleetSim::new(cfg, 1234);
        sim.run();
        let reference = single_tag_reference(cfg, 1234);
        assert_eq!(sim.events(), reference.as_slice());
    }
}
