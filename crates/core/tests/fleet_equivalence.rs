//! A 1-tag fleet must behave like a single tag.
//!
//! The fleet path re-implements tag electricals (closed-form RC spans
//! over struct-of-arrays state) and inventory (Gen2 Q-slot rounds)
//! for scale. These tests pin it to the single-tag world twice over:
//!
//! 1. a proptest holding `FleetSim { n_tags: 1 }` event-identical to
//!    [`single_tag_reference`], an independently written scalar
//!    simulation of the same spec (plain locals, no SoA, no `Fleet`);
//! 2. a cadence test tying the Gen2 reader at a frozen `q` to the
//!    legacy single-tag [`Reader`]'s `CMD_QUERY` / `CMD_QUERYREP`
//!    round structure.

use edb_core::fleet::{single_tag_reference, FleetConfig, FleetSim};
use edb_energy::SimTime;
use edb_rfid::gen2::{Gen2Reader, Gen2Timing, QParams, SlotOutcome};
use edb_rfid::reader::{Reader, ReaderConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any seed, distance band, corruption level, and Q setting: the
    /// vectorized fleet and the scalar reference produce the same
    /// event stream, timestamp for timestamp.
    #[test]
    fn one_tag_fleet_matches_scalar_reference(
        seed in 0u64..u64::MAX,
        d in 0.3f64..2.0,
        ber in 0.0f64..5e-3,
        q0 in 0u8..4,
    ) {
        let mut cfg = FleetConfig::standard(1);
        cfg.d_min = d;
        cfg.d_max = d;
        cfg.jitter_m = 0.0;
        cfg.ber_ref = ber;
        cfg.q = QParams { q0, c: 0.35, q_min: 0, q_max: 15 };
        cfg.duration = SimTime::from_ms(400);
        cfg.record_events = true;

        let mut sim = FleetSim::new(cfg, seed);
        sim.run();
        let reference = single_tag_reference(cfg, seed);
        prop_assert_eq!(sim.events(), reference.as_slice());
    }

    /// The scalar reference never emits a collision for one tag — the
    /// fleet can't either, by the equivalence above.
    #[test]
    fn one_tag_never_collides(seed in 0u64..u64::MAX) {
        let mut cfg = FleetConfig::standard(1);
        cfg.duration = SimTime::from_ms(300);
        cfg.record_events = true;
        let mut sim = FleetSim::new(cfg, seed);
        sim.run();
        for e in sim.events() {
            if let edb_core::FleetEvent::Slot { outcome, .. } = e {
                prop_assert_ne!(*outcome, SlotOutcome::Collision);
            }
        }
    }
}

/// The legacy paper-setup reader emits `CMD_QUERY` then
/// `reps_per_round = 3` `CMD_QUERYREP`s per round. The Gen2 reader
/// frozen at `q = 2` (4 slots: the Query carries the first) must put
/// the identical label cadence on the air.
#[test]
fn frozen_q2_matches_legacy_round_cadence() {
    // Legacy cadence, collected from the schedule-driven reader.
    let mut legacy = Reader::new(ReaderConfig::paper_setup());
    let mut legacy_labels = Vec::new();
    let mut t = SimTime::ZERO;
    while legacy_labels.len() < 12 {
        if let Some(event) = legacy.poll(t) {
            legacy_labels.push(event.command.label());
        }
        t = t.advance_ns(1_000_000);
    }

    // Gen2 cadence at frozen q = 2, all slots empty.
    let mut gen2 = Gen2Reader::new(Gen2Timing::dense_reader(), 0, QParams::frozen(2));
    let mut gen2_labels = Vec::new();
    while gen2_labels.len() < 12 {
        let (cmd, slots) = gen2.open_round();
        gen2_labels.push(cmd.label());
        for s in 0..slots {
            if s > 0 && gen2_labels.len() < 12 {
                gen2_labels.push(gen2.next_slot().label());
            }
            gen2.report_slot(SlotOutcome::Empty);
        }
    }

    assert_eq!(legacy_labels, gen2_labels);
    assert_eq!(
        legacy_labels,
        vec![
            "CMD_QUERY",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
            "CMD_QUERY",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
            "CMD_QUERY",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
            "CMD_QUERYREP",
        ]
    );
}
