//! Robustness tests of the debugger crate: serialization of the event
//! log (scripting/export surface), console input fuzzing, and cross-
//! profile operation on a non-WISP target.

use edb_core::{libedb, Console, DebugEvent, Edb, EdbConfig, EventLog, System};
use edb_device::DeviceConfig;
use edb_energy::{Fading, SimTime, TheveninSource};
use edb_mcu::asm::assemble;
use proptest::prelude::*;

fn spin_system() -> System {
    let image = assemble(&libedb::wrap_program(
        r#"
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            add r0, 1
            jmp loop
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 1))
        .build();
    sys.flash(&image);
    sys
}

#[test]
fn event_log_round_trips_through_json() {
    // The real EDB ships a Python scripting API fed by its event stream;
    // ours exports the same data as JSON.
    let mut sys = spin_system();
    sys.run_for(SimTime::from_ms(300));
    let log = sys.edb().expect("attached").log();
    assert!(log.len() > 100);
    let json = serde_json::to_string(log).expect("serializes");
    let back: EventLog = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.len(), log.len());
    for (i, (a, b)) in log.events().iter().zip(back.events()).enumerate() {
        assert_eq!(a, b, "first mismatch at event {i}");
    }
    // Spot-check one structured event survived.
    assert!(back
        .events()
        .iter()
        .any(|e| matches!(e.event, DebugEvent::EnergySample { .. })));
}

#[test]
fn edb_serves_a_non_wisp_target_profile() {
    // §4: "Our prototype hardware board can connect to any energy-
    // harvesting device with a microcontroller and a capacitor." A
    // solar-node-like profile: 100 µF store, higher thresholds, slower
    // clock.
    // Thresholds must sit below the charge circuit's ~3.1 V ceiling.
    let config = DeviceConfig {
        capacitance: 100e-6,
        v_on: 2.8,
        v_off: 2.2,
        clock_hz: 1e6,
        i_active: 1.5e-3,
        ..DeviceConfig::wisp5()
    };
    let image = assemble(&libedb::wrap_program(
        r#"
        .equ COUNT, 0x6000
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            call __edb_guard_begin
            movi r2, 500
        burn:
            sub  r2, 1
            jnz  burn
            call __edb_guard_end
            movi r1, COUNT
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0
            jmp  loop
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(config)
        .harvester(Fading::new(TheveninSource::new(3.8, 1500.0), 0.05, 4))
        .build();
    sys.flash(&image);
    // Charge below the turn-on threshold first (deterministic, no app
    // guard traffic), then let the strong solar source carry it up.
    let v = sys.charge_to(2.7);
    assert!(v >= 2.65, "charged a 100 µF store to {v}");
    sys.run_until(SimTime::from_secs(1), |s| s.device().powered());
    assert!(sys.device().powered());
    sys.run_for(SimTime::from_secs(2));
    assert!(
        sys.device().mem().peek_word(0x6000) > 20,
        "guarded app made progress on the solar profile"
    );
    let guards = sys.edb().unwrap().log().with_tag("guard-enter").count();
    assert!(guards > 20, "guards worked: {guards}");
}

#[test]
fn charge_delivery_accounting_tracks_the_tether() {
    let mut sys = spin_system();
    sys.charge_to(2.4);
    let before = sys.edb().unwrap().charge_delivered();
    // The harvester supplies much of the swing; EDB's circuit tops it
    // off — tens of microcoulombs at least.
    assert!(before > 1e-5, "charging delivered {before} C");
    // Further charging keeps accumulating.
    sys.discharge_to(2.0);
    sys.charge_to(2.4);
    let after = sys.edb().unwrap().charge_delivered();
    assert!(
        after > before,
        "accounting accumulates: {after} vs {before}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Garbage console input never panics: it errors or produces output.
    #[test]
    fn console_is_total_on_garbage(
        cmd in "[a-z]{1,10}",
        arg1 in "[a-zA-Z0-9._-]{0,8}",
        arg2 in "[a-zA-Z0-9._-]{0,8}",
    ) {
        // Exclude the commands that legitimately advance simulation time
        // (they are slow, not unsafe).
        prop_assume!(!["run", "charge", "discharge"].contains(&cmd.as_str()));
        let mut sys = spin_system();
        let mut console = Console::new();
        let line = format!("{cmd} {arg1} {arg2}");
        let _ = console.execute(&line, &mut sys);
    }

    /// Any sequence of breakpoint/watchpoint management commands leaves
    /// the debugger consistent (and never panics).
    #[test]
    fn breakpoint_management_is_total(
        ops in prop::collection::vec((0u8..4, 0u8..16), 1..20)
    ) {
        let mut sys = spin_system();
        let mut console = Console::new();
        for (op, id) in ops {
            let line = match op {
                0 => format!("break en {id}"),
                1 => format!("break dis {id}"),
                2 => format!("watch en {id}"),
                _ => format!("watch dis {id}"),
            };
            console.execute(&line, &mut sys).expect("management commands succeed");
        }
    }
}

#[test]
fn custom_edb_config_is_respected() {
    let mut sys = spin_system();
    sys.attach_edb(Edb::new(EdbConfig {
        energy_trace: false,
        io_trace: false,
        ..EdbConfig::prototype()
    }));
    sys.run_for(SimTime::from_ms(200));
    let edb = sys.edb().unwrap();
    assert_eq!(edb.log().with_tag("energy").count(), 0, "tracing disabled");
    assert_eq!(edb.log().with_tag("gpio").count(), 0);
}
