//! Wire-protocol fault tolerance: brown-outs injected at every byte
//! offset of a framed debug exchange, lost-frame retry, and
//! property-based checks of the frame codec under corruption.
//!
//! The target firmware refills a known FRAM window at every boot and
//! then fails an assertion, so EDB tethers it and an interactive
//! session opens — and re-opens after every injected power failure.

use edb_core::debugger::SessionOutcome;
use edb_core::{
    libedb, protocol, DebugRequest, EdbError, HarvesterSpec, HostCommand, RequestId, SessionPoll,
    SessionSpec, System, WorldSpec,
};
use edb_device::DeviceConfig;
use edb_energy::{SimTime, TheveninSource};
use edb_mcu::asm::assemble;
use proptest::prelude::*;

/// The assert-session firmware body shared by [`assert_system`] (raw
/// `System`) and [`recorded_assert_session`] (time-travel recorder).
const ASSERT_FIRMWARE: &str = r#"
        .org 0x4400
    main:
        movi sp, 0x2400
        movi r1, 0x6000
        movi r0, 0x1101
        movi r3, 32
    fill:
        st   [r1], r0
        add  r1, 2
        add  r0, 0x0101
        sub  r3, 1
        cmpi r3, 0
        jnz  fill
    again:
        movi r0, 1
        call __edb_assert_fail
        jmp  again
        .org 0xFFFE
        .word main
        "#;

/// First word of the FRAM window the firmware fills at every boot.
const WINDOW_BASE: u16 = 0x6000;

/// Fill value of the window word at `addr`: the firmware seeds 0x1101
/// at the base and adds 0x0101 per word.
fn fill_value(addr: u16) -> u16 {
    0x1101 + 0x0101 * ((addr - WINDOW_BASE) / 2)
}

fn assert_system() -> System {
    let image = assemble(&libedb::wrap_program(ASSERT_FIRMWARE)).expect("assembles");
    // A stiff source so the target reboots and re-asserts quickly after
    // an injected brown-out.
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(TheveninSource::new(3.2, 220.0))
        .build();
    sys.flash(&image);
    assert!(
        sys.wait_for_session(SimTime::from_secs(2)),
        "assert session must open"
    );
    sys
}

/// Drives the submitted exchange to its outcome (completed or aborted),
/// panicking if it gets stuck — the state machine must always resolve.
fn drive_to_outcome(sys: &mut System, id: RequestId) -> Result<u16, EdbError> {
    let deadline = sys.now() + SimTime::from_ms(200);
    loop {
        match sys.edb_mut().poll(id) {
            SessionPoll::Ready(outcome) => return outcome.map(|r| r.word()),
            SessionPoll::Superseded => panic!("request superseded with one submitter"),
            SessionPoll::Pending { .. } => {}
        }
        assert!(
            sys.now() < deadline,
            "exchange neither completed nor aborted"
        );
        sys.step();
    }
}

/// After a brown-out tore the session down, waits for the target to
/// reboot and re-assert, then checks a fresh read returns the true
/// memory value — the session is fully usable again.
fn assert_recovered(sys: &mut System) {
    if !sys.edb().is_some_and(|e| e.session_active()) {
        assert!(
            sys.wait_for_session(SimTime::from_secs(2)),
            "session must re-open after the brown-out"
        );
    }
    let probe = WINDOW_BASE + 8;
    let truth = sys.device().mem().peek_word(probe);
    let got = sys.read_word(probe).expect("post-recovery read");
    assert_eq!(got, truth, "post-recovery read must see true memory");
}

/// Runs one exchange with a brown-out injected once `trigger` says so,
/// returning the outcome. The caller then checks recovery.
fn exchange_with_cut(
    sys: &mut System,
    request: DebugRequest,
    mut trigger: impl FnMut(&System) -> bool,
) -> Result<u16, EdbError> {
    let now = sys.now();
    let id = {
        let (edb, dev) = sys.edb_and_device().expect("attached");
        edb.submit(dev, request, now)
    };
    let mut injected = false;
    let deadline = sys.now() + SimTime::from_ms(200);
    loop {
        match sys.edb_mut().poll(id) {
            SessionPoll::Ready(outcome) => return outcome.map(|r| r.word()),
            SessionPoll::Superseded => panic!("request superseded with one submitter"),
            SessionPoll::Pending { .. } => {}
        }
        assert!(
            sys.now() < deadline,
            "exchange neither completed nor aborted"
        );
        if !injected && trigger(sys) {
            sys.device_mut().set_v_cap(1.0);
            injected = true;
        }
        sys.step();
    }
}

#[test]
fn brownout_at_every_command_frame_byte_recovers_or_aborts_cleanly() {
    let read_addr = WINDOW_BASE + 0x18;
    let frame_len = HostCommand::Read { addr: read_addr }.encode().len();
    // Offset j: the cut lands once the target has consumed exactly j
    // frame bytes (the host queue holds the rest; DebugLink::reset
    // drops them at the edge — natural truncation-at-power-loss).
    for j in 0..=frame_len {
        let mut sys = assert_system();
        let outcome = exchange_with_cut(
            &mut sys,
            DebugRequest::ReadWord { addr: read_addr },
            |s: &System| s.device().peripherals.debug.rx_from_debugger.len() <= frame_len - j,
        );
        match outcome {
            // The exchange beat the cut (or the parked command re-armed
            // after the reboot): the value must be the true one.
            Ok(word) => assert_eq!(word, fill_value(read_addr), "offset {j}"),
            Err(
                EdbError::AbortedByBrownout { .. }
                | EdbError::CommandTimeout { .. }
                | EdbError::CorruptReply { .. },
            ) => {}
            Err(e) => panic!("offset {j}: untyped outcome {e}"),
        }
        assert_recovered(&mut sys);
    }
}

#[test]
fn brownout_at_every_reply_byte_recovers_or_aborts_cleanly() {
    // Reply bytes leave the target at the debug UART's ~174 µs/byte
    // pacing; cutting at k·174 µs + 87 µs after the command frame is
    // fully consumed lands between reply bytes k and k+1.
    let read_addr = WINDOW_BASE + 4;
    for k in 0..3u64 {
        let mut sys = assert_system();
        let mut armed_at = None;
        let outcome = exchange_with_cut(
            &mut sys,
            DebugRequest::ReadWord { addr: read_addr },
            |s: &System| {
                if s.device().peripherals.debug.rx_from_debugger.is_empty() {
                    let at = *armed_at.get_or_insert(s.now());
                    s.now() >= at + SimTime::from_ns(k * 174_000 + 87_000)
                } else {
                    false
                }
            },
        );
        match outcome {
            Ok(word) => assert_eq!(word, fill_value(read_addr), "reply byte {k}"),
            Err(
                EdbError::AbortedByBrownout { .. }
                | EdbError::CommandTimeout { .. }
                | EdbError::CorruptReply { .. },
            ) => {}
            Err(e) => panic!("reply byte {k}: untyped outcome {e}"),
        }
        assert_recovered(&mut sys);
    }
}

#[test]
fn brownout_never_tears_a_write() {
    let write_addr = WINDOW_BASE + 4;
    let old = fill_value(write_addr);
    let new = 0xBEEF;
    let cmd = HostCommand::Write {
        addr: write_addr,
        value: new,
    };
    let frame_len = cmd.encode().len();
    for j in 0..=frame_len {
        let mut sys = assert_system();
        assert_eq!(sys.device().mem().peek_word(write_addr), old);
        let now = sys.now();
        let id = {
            let (edb, dev) = sys.edb_and_device().expect("attached");
            edb.submit(dev, DebugRequest::from_host_command(cmd).unwrap(), now)
        };
        // Step until the target has consumed j frame bytes, then cut.
        let mut guard = 0u32;
        while sys.device().peripherals.debug.rx_from_debugger.len() > frame_len - j {
            sys.step();
            guard += 1;
            assert!(guard < 2_000_000, "offset {j}: frame never consumed");
        }
        sys.device_mut().set_v_cap(1.0);
        // Let the edge fire with the device still down, then check the
        // target word is the old value or the new one — never torn:
        // the service loop verifies the checksum before the store.
        let mut guard = 0u32;
        while sys.device().powered() {
            sys.step();
            guard += 1;
            assert!(guard < 1_000, "offset {j}: brown-out edge never fired");
        }
        let landed = sys.device().mem().peek_word(write_addr);
        assert!(
            landed == old || landed == new,
            "offset {j}: torn write — {landed:#06x} is neither {old:#06x} nor {new:#06x}"
        );
        // The command resolves one way or the other, and the session
        // comes back.
        let _ = drive_to_outcome(&mut sys, id);
        assert_recovered(&mut sys);
    }
}

/// The same bench as [`assert_system`], but expressed as a
/// [`SessionSpec`] and recorded by the time-travel layer.
fn recorded_assert_session() -> edb_core::DebugSession {
    let spec = SessionSpec {
        world: WorldSpec::Harvester {
            spec: HarvesterSpec::Thevenin {
                v_oc: 3.2,
                r_src: 220.0,
            },
        },
        ..SessionSpec::bench(ASSERT_FIRMWARE)
    };
    spec.record(64).expect("spec builds")
}

/// Records a session whose exchange is torn down by a brown-out at
/// every command-frame byte position, and asserts every one of those
/// recordings replays divergence-free: the capacitor collapse, the
/// reboot, and the typed abort or retried completion are all inside
/// the deterministic tape.
#[test]
fn brownout_recordings_at_every_frame_byte_replay_divergence_free() {
    let read_addr = WINDOW_BASE + 0x18;
    let frame_len = HostCommand::Read { addr: read_addr }.encode().len();
    for j in 0..=frame_len {
        let mut s = recorded_assert_session();
        assert!(
            s.run_until_session(SimTime::from_secs(2)),
            "offset {j}: assert session must open"
        );
        let id = s
            .submit(DebugRequest::ReadWord { addr: read_addr })
            .expect("submit");
        // Advance in 10 µs slices (well inside the ~174 µs/byte UART
        // pacing) until the target has consumed exactly j frame bytes,
        // then collapse the capacitor — all through recorded ops.
        let deadline = s.now() + SimTime::from_ms(300);
        let mut injected = false;
        let outcome = loop {
            match s.poll(id) {
                SessionPoll::Ready(outcome) => break outcome.map(|r| r.word()),
                SessionPoll::Superseded => panic!("offset {j}: superseded"),
                SessionPoll::Pending { .. } => {}
            }
            assert!(s.now() < deadline, "offset {j}: exchange never resolved");
            if !injected
                && s.system().device().peripherals.debug.rx_from_debugger.len() <= frame_len - j
            {
                let _ = s.discharge_to(1.0);
                injected = true;
            }
            s.advance(SimTime::from_us(10));
        };
        match outcome {
            Ok(word) => assert_eq!(word, fill_value(read_addr), "offset {j}"),
            Err(
                EdbError::AbortedByBrownout { .. }
                | EdbError::CommandTimeout { .. }
                | EdbError::CorruptReply { .. },
            ) => {}
            Err(e) => panic!("offset {j}: untyped outcome {e}"),
        }
        let recording = s.stop_recording().expect("was recording");
        assert!(
            recording.op_count() > 2,
            "offset {j}: tape captured the drive"
        );
        let report = edb_core::replay::verify(&recording)
            .unwrap_or_else(|d| panic!("offset {j}: replay diverged: {d}"));
        assert_eq!(report.ops, recording.op_count(), "offset {j}");
    }
}

#[test]
fn lost_command_frame_is_retried_and_reported() {
    let mut sys = assert_system();
    let addr = WINDOW_BASE + 2;
    let now = sys.now();
    let id = {
        let (edb, dev) = sys.edb_and_device().expect("attached");
        edb.submit(dev, DebugRequest::ReadWord { addr }, now)
    };
    // Drop the whole command frame before the target consumes a byte:
    // attempt 1 can never be answered, so the sim-time deadline must
    // fire and the re-send must complete the exchange.
    sys.device_mut().peripherals.debug.rx_from_debugger.clear();
    let word = drive_to_outcome(&mut sys, id).expect("retry completes the exchange");
    assert_eq!(word, fill_value(addr));
    assert_eq!(
        sys.edb().unwrap().last_outcome(),
        Some(&SessionOutcome::Retried { retries: 1 })
    );
    assert_eq!(
        sys.edb().unwrap().log().with_tag("cmd-retry").count(),
        1,
        "exactly one retry event logged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single bit flip anywhere in a command frame is detected.
    #[test]
    fn command_frame_survives_no_single_bit_flip(
        addr in any::<u16>(),
        value in any::<u16>(),
        which in 0usize..3,
        byte_ix in any::<u16>(),
        bit in 0u8..8,
    ) {
        let cmd = match which {
            0 => HostCommand::Read { addr },
            1 => HostCommand::Write { addr, value },
            _ => HostCommand::GetPc,
        };
        let frame = cmd.encode();
        prop_assert_eq!(protocol::decode_command(&frame), Ok(cmd));
        let mut bad = frame.clone();
        let i = byte_ix as usize % bad.len();
        bad[i] ^= 1 << bit;
        prop_assert!(protocol::decode_command(&bad).is_err());
    }

    /// The decoder is total: arbitrary byte soup never panics.
    #[test]
    fn command_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..16)) {
        let _ = protocol::decode_command(&bytes);
    }

    /// Reply round-trip: the reference encoding decodes to the payload
    /// word, and any single bit flip is rejected.
    #[test]
    fn reply_round_trips_and_rejects_single_bit_flips(
        word in any::<u16>(),
        byte_ix in any::<u16>(),
        bit in 0u8..8,
    ) {
        let cmd = HostCommand::Read { addr: 0x6000 };
        let payload = [(word & 0xFF) as u8, (word >> 8) as u8];
        let reply = protocol::encode_reply(cmd.cmd_byte(), &payload);

        let mut dec = protocol::ReplyDecoder::new(cmd).expect("has reply");
        let mut out = None;
        for &b in &reply {
            out = dec.push(b);
        }
        prop_assert_eq!(out, Some(Ok(word)));

        let mut bad = reply.clone();
        let i = byte_ix as usize % bad.len();
        bad[i] ^= 1 << bit;
        let mut dec = protocol::ReplyDecoder::new(cmd).expect("has reply");
        let mut out = None;
        for &b in &bad {
            out = dec.push(b);
        }
        prop_assert_eq!(out, Some(Err(protocol::FrameError::BadChecksum)));
    }
}
