//! **edb-suite** — the facade crate of the EDB reproduction.
//!
//! This workspace reproduces *"An Energy-interference-free
//! Hardware-Software Debugger for Intermittent Energy-harvesting
//! Systems"* (Colin, Harvey, Lucia & Sample, ASPLOS 2016) as a pure-Rust
//! simulation, from the electrons up:
//!
//! * [`energy`] — capacitors, harvesters, supervisors, traces;
//! * [`mcu`] — a 16-bit MSP430-class CPU, its assembler, and the
//!   volatile-SRAM/non-volatile-FRAM memory split;
//! * [`device`] — the WISP-like intermittent target, stepped one
//!   instruction at a time with per-instruction energy integration;
//! * [`rfid`] — the Gen2-style reader that powers and talks to the tag;
//! * [`core`] — **EDB itself**: passive monitoring, active energy
//!   manipulation, keep-alive assertions, energy guards, breakpoints,
//!   energy-interference-free printf, and the debug console;
//! * [`runtime`] — a Mementos-style checkpointing runtime;
//! * [`apps`] — the paper's workloads, written in the target's assembly;
//! * [`obs`] — the observability bus: recorder, metrics registry,
//!   Perfetto/VCD exporters, and the sampling energy profiler.
//!
//! See `examples/` for runnable walkthroughs of the paper's §5 case
//! studies and `crates/bench` for the table/figure reproductions.

pub use edb_apps as apps;
pub use edb_core as core;
pub use edb_device as device;
pub use edb_energy as energy;
pub use edb_mcu as mcu;
pub use edb_obs as obs;
pub use edb_rfid as rfid;
pub use edb_runtime as runtime;
