//! `edb-analyze`: static WCEC analysis of an IVM-16 firmware image,
//! emitting a JSON report.
//!
//! Usage:
//!
//! ```text
//! edb-analyze <source.s>            analyze an assembly file
//! edb-analyze --app <name>          analyze a bundled app
//!                                   (fib|linked-list|activity|rfid)
//! edb-analyze --list-apps           list bundled app names
//!
//! Options:
//!   --v-start <volts>   starting capacitor voltage (default 3.0)
//!   --pretty            pretty-print the JSON report
//!   --out <path>        write the report to a file instead of stdout
//! ```
//!
//! The device/capacitor spec is the WISP5 reference configuration; the
//! cost model is regressed from the simulator at startup, so reports
//! track whatever the simulator's energy accounting says.

use std::process::ExitCode;

use edb_analyze::analyze_image;
use edb_device::DeviceConfig;
use edb_mcu::asm::assemble;
use edb_mcu::Image;

const APPS: &[&str] = &["fib", "linked-list", "activity", "rfid"];

fn app_image(name: &str) -> Option<Image> {
    use edb_apps::{activity, fib, linked_list, rfid_fw};
    match name {
        "fib" => Some(fib::image(fib::Variant::Release)),
        "linked-list" => Some(linked_list::image(linked_list::Variant::Plain)),
        "activity" => Some(activity::image(activity::Variant::NoPrint)),
        "rfid" => Some(rfid_fw::image()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut app: Option<String> = None;
    let mut v_start = 3.0f64;
    let mut pretty = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list-apps" => {
                for name in APPS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--app" => {
                i += 1;
                app = args.get(i).cloned();
            }
            "--v-start" => {
                i += 1;
                v_start = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("edb-analyze: --v-start needs a voltage");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--pretty" => pretty = true,
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other if !other.starts_with('-') => target = Some(other.to_string()),
            other => {
                eprintln!("edb-analyze: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let (name, image) = if let Some(app_name) = app {
        match app_image(&app_name) {
            Some(image) => (app_name, image),
            None => {
                eprintln!(
                    "edb-analyze: unknown app {app_name:?} (try one of: {})",
                    APPS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(path) = target {
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("edb-analyze: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match assemble(&source) {
            Ok(image) => (path, image),
            Err(e) => {
                eprintln!("edb-analyze: assembly of {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("edb-analyze: nothing to analyze (pass a source file or --app <name>)");
        return ExitCode::FAILURE;
    };

    let config = DeviceConfig::wisp5();
    let report = analyze_image(&name, &image, &config, v_start);
    let json = if pretty {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    };
    let json = match json {
        Ok(j) => j,
        Err(e) => {
            eprintln!("edb-analyze: serialization failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("edb-analyze: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("edb-analyze: report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
