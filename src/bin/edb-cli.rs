//! `edb-cli` — the interactive debug console against a simulated bench.
//!
//! The closest thing this reproduction has to plugging the real EDB
//! board into a WISP and opening the Python console: pick a bundled
//! target application, get a prompt, and drive the Table 1 command set
//! (plus `sym`/`disasm`) against a live intermittent device.
//!
//! ```sh
//! cargo run --release --bin edb-cli -- --app linked-list-assert
//! cargo run --release --bin edb-cli -- --app activity --script "charge 2.4; run 500; trace printf"
//! ```

use edb_suite::apps::{activity, fib, linked_list, rfid_fw};
use edb_suite::core::{libedb, Console, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};
use edb_suite::mcu::asm::assemble;
use edb_suite::rfid::ReaderConfig;
use std::io::{BufRead, Write};

const APPS: &[(&str, &str)] = &[
    ("spin", "a bare counting loop (default)"),
    (
        "linked-list",
        "the Figure 6 intermittence bug, uninstrumented",
    ),
    (
        "linked-list-assert",
        "the same bug with the keep-alive assert",
    ),
    ("linked-list-atomic", "the DINO-style task-atomic fix"),
    (
        "fib-checked",
        "Fibonacci list with the O(n) consistency check",
    ),
    ("fib-guarded", "the same check inside energy guards"),
    ("activity", "activity recognition with EDB printf"),
    ("rfid", "the WISP RFID firmware under a reader (RF world)"),
];

fn spin_image() -> edb_suite::mcu::Image {
    assemble(&libedb::wrap_program(
        r#"
        .equ COUNTER, 0x6000
        .org 0x4400
        main:
            movi sp, 0x2400
            ei
        loop:
            movi r1, COUNTER
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0
            jmp  loop
        .org 0xFFFC
        .word __edb_isr
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("spin app assembles")
}

fn build_system(app: &str, seed: u64) -> Option<System> {
    let harvested = || -> Box<dyn edb_suite::energy::Harvester> {
        Box::new(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed))
    };
    let mut sys = match app {
        "rfid" => {
            let device = DeviceConfig {
                i_active: 0.95e-3,
                ..DeviceConfig::wisp5()
            };
            let reader = ReaderConfig {
                query_period: SimTime::from_ms(260),
                rep_gap: SimTime::from_ms(65),
                reps_per_round: 3,
                ..ReaderConfig::paper_setup()
            };
            let mut sys = System::builder(device)
                .rfid(1.0)
                .reader_config(reader)
                .seed(seed)
                .build();
            sys.flash(&rfid_fw::image());
            return Some(sys);
        }
        _ => System::builder(DeviceConfig::wisp5())
            .harvester(harvested())
            .build(),
    };
    let image = match app {
        "spin" => spin_image(),
        "linked-list" => linked_list::image(linked_list::Variant::Plain),
        "linked-list-assert" => linked_list::image(linked_list::Variant::Assert),
        "linked-list-atomic" => linked_list::image(linked_list::Variant::TaskAtomic),
        "fib-checked" => fib::image(fib::Variant::Checked),
        "fib-guarded" => fib::image(fib::Variant::Guarded),
        "activity" => activity::image(activity::Variant::EdbPrintf),
        _ => return None,
    };
    sys.flash(&image);
    Some(sys)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app = "spin".to_string();
    let mut script: Option<String> = None;
    let mut seed = 1u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" if i + 1 < args.len() => {
                app = args[i + 1].clone();
                i += 2;
            }
            "--script" if i + 1 < args.len() => {
                script = Some(args[i + 1].clone());
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(1);
                i += 2;
            }
            "--list" => {
                println!("bundled target applications:");
                for (name, what) in APPS {
                    println!("  {name:<20} {what}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list)");
                std::process::exit(2);
            }
        }
    }

    let Some(mut sys) = build_system(&app, seed) else {
        eprintln!("unknown app `{app}`; options:");
        for (name, what) in APPS {
            eprintln!("  {name:<20} {what}");
        }
        std::process::exit(2);
    };
    let mut console = Console::new();

    println!("edb-cli — energy-interference-free debugging of a simulated intermittent device");
    println!("target: {app}   (type `help` for commands, `quit` to exit)");
    println!("tip: `run 500` advances simulated time; nothing happens until you run.");

    let handle_line = |line: &str, sys: &mut System, console: &mut Console| -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        if line == "quit" || line == "exit" {
            return false;
        }
        match console.execute(line, sys) {
            Ok(out) if out.is_empty() => {}
            Ok(out) if out.ends_with('\n') => print!("{out}"),
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
        true
    };

    if let Some(script) = script {
        for cmd in script.split(';') {
            println!("(edb) {}", cmd.trim());
            if !handle_line(cmd, &mut sys, &mut console) {
                break;
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    loop {
        print!("(edb) ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !handle_line(&line, &mut sys, &mut console) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
